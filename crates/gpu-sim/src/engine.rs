//! Launch-level simulation: block sampling, wave execution, and the DRAM
//! bandwidth bound.
//!
//! A kernel launch executes in *waves*: each wave fills every SM with its
//! resident-block quota. The engine simulates one representative resident set
//! in cycle detail ([`crate::sm`]), then:
//!
//! * wave time = max(SM compute/latency time, wave DRAM bytes / bandwidth) —
//!   the classic roofline coupling that makes the reduction kernels
//!   bandwidth-bound at large sizes;
//! * launch time = wave time x effective waves + launch overhead;
//! * raw event counts scale by `grid_blocks / sampled_blocks`.
//!
//! Sampled block ids are spread evenly across the grid so address-dependent
//! behaviour (cache sets, alignment) is representative.

use crate::arch::GpuConfig;
use crate::cache::Cache;
use crate::counters::RawEvents;
use crate::occupancy::{occupancy, Occupancy};
use crate::trace::{BlockTrace, KernelTrace, LaunchConfig};
use crate::{soa, steady, Result};

/// Fixed kernel-launch overhead (driver + dispatch), in seconds. Matters for
/// applications issuing many small launches (multi-pass reduction, NW's
/// per-diagonal kernels).
pub const LAUNCH_OVERHEAD_S: f64 = 3.5e-6;

/// Result of simulating one kernel launch.
#[derive(Debug, Clone)]
pub struct LaunchResult {
    /// Elapsed time of the launch in seconds (including launch overhead).
    pub time_seconds: f64,
    /// Raw events scaled to the full grid.
    pub events: RawEvents,
    /// Occupancy achieved by the launch.
    pub occupancy: Occupancy,
    /// Number of full waves (ceil).
    pub waves: usize,
    /// Blocks simulated in detail.
    pub sampled_blocks: usize,
}

/// Picks `count` representative block ids spread across `grid` blocks.
/// An empty grid has no blocks to sample, so it yields no ids (rather than a
/// phantom block 0 that no kernel ever launched).
pub fn sample_block_ids(grid: usize, count: usize) -> Vec<usize> {
    if grid == 0 {
        return Vec::new();
    }
    let count = count.min(grid).max(1);
    let mut ids: Vec<usize> = (0..count).map(|k| k * grid / count).collect();
    ids.dedup();
    ids
}

/// Engine tuning knobs, resolved once per launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// Steady-state loop extrapolation (see [`crate::steady`]): highly
    /// periodic warp streams simulate a few representative iterations and
    /// extrapolate the tail. Exact for the statically derived counters;
    /// makespan agreement is guarded by delta stabilisation.
    pub loop_extrapolation: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            loop_extrapolation: loop_extrapolation_enabled(),
        }
    }
}

/// Whether the stock profiling paths extrapolate steady-state loops: true
/// unless `BF_SIM_LOOP_EXTRAP` is set to `0` or `off`.
pub fn loop_extrapolation_enabled() -> bool {
    !matches!(
        std::env::var("BF_SIM_LOOP_EXTRAP").as_deref(),
        Ok("0") | Ok("off")
    )
}

/// The cold cache state every launch simulation starts from: fresh L1 plus
/// this SM's 1/num_sms slice of the shared L2 (standard approximation for
/// single-SM sampling).
fn fresh_caches(gpu: &GpuConfig) -> (Cache, Cache) {
    let l2_slice = (gpu.l2_size / gpu.num_sms).max(gpu.l2_line * gpu.l2_assoc);
    (
        // Sector-tagged L1s (Pascal/Volta) track 32-byte sectors in their
        // tag store; line-tagged L1s track whole lines.
        Cache::new(gpu.l1_size, gpu.l1_tag_line(), gpu.l1_assoc),
        Cache::new(l2_slice, gpu.l2_line.max(32), gpu.l2_assoc),
    )
}

/// Simulates one kernel launch on the GPU.
pub fn simulate_launch(gpu: &GpuConfig, kernel: &dyn KernelTrace) -> Result<LaunchResult> {
    let lc = kernel.launch_config();
    let occ = occupancy(gpu, &lc)?;
    let ids = sample_block_ids(lc.grid_blocks, occ.blocks_per_sm);
    let traces: Vec<BlockTrace> = ids.iter().map(|&b| kernel.block_trace(b, gpu)).collect();
    simulate_sampled_launch(gpu, &lc, occ, &traces)
}

/// Simulates a launch from pre-built sampled block traces with the
/// environment-default [`EngineOptions`]. `occ` must be the occupancy of
/// `lc` on `gpu` and `traces` the representative blocks picked by
/// [`sample_block_ids`] — [`simulate_launch`] wires these together; the
/// memoization layer ([`crate::memo`]) calls this directly after hashing the
/// traces, so a cache miss does not rebuild them.
pub fn simulate_sampled_launch(
    gpu: &GpuConfig,
    lc: &LaunchConfig,
    occ: Occupancy,
    traces: &[BlockTrace],
) -> Result<LaunchResult> {
    simulate_sampled_launch_with(gpu, lc, occ, traces, &EngineOptions::default())
}

/// [`simulate_sampled_launch`] with explicit [`EngineOptions`] (tests pass
/// options directly instead of racing on environment variables).
pub fn simulate_sampled_launch_with(
    gpu: &GpuConfig,
    lc: &LaunchConfig,
    occ: Occupancy,
    traces: &[BlockTrace],
    opts: &EngineOptions,
) -> Result<LaunchResult> {
    let blocks_per_wave = occ.blocks_per_sm * gpu.num_sms;
    let waves = lc.grid_blocks.div_ceil(blocks_per_wave);

    // Detailed simulation of one SM's resident set, through the SoA batch
    // engine; sufficiently periodic sets short-circuit through steady-state
    // extrapolation instead of simulating every iteration.
    let extrapolated = if opts.loop_extrapolation {
        steady::try_extrapolate(gpu, traces, || fresh_caches(gpu))
    } else {
        None
    };
    let sm = match extrapolated {
        Some(sm) => sm,
        None => {
            let (mut l1, mut l2) = fresh_caches(gpu);
            soa::simulate_resident_set(gpu, traces, &mut l1, &mut l2)?
        }
    };

    // Wave timing: compute/latency vs bandwidth.
    let sm_seconds = sm.cycles / (gpu.clock_ghz * 1e9);
    let wave_dram_bytes = sm.dram_bytes * gpu.num_sms as f64;
    let bw_seconds = wave_dram_bytes / (gpu.mem_bandwidth_gbps * 1e9);
    let wave_seconds = sm_seconds.max(bw_seconds);
    let effective_waves = (lc.grid_blocks as f64 / blocks_per_wave as f64).max(1.0);
    let time_seconds = wave_seconds * effective_waves + LAUNCH_OVERHEAD_S;

    // Scale events to the full grid.
    let factor = lc.grid_blocks as f64 / traces.len() as f64;
    let mut events = sm.events.scaled_counts(factor);
    let elapsed_cycles = time_seconds * gpu.clock_ghz * 1e9;
    events.elapsed_cycles = elapsed_cycles;
    events.active_cycles = elapsed_cycles;
    events.issue_slots = elapsed_cycles * gpu.issue_width() as f64;
    events.time_seconds = time_seconds;

    Ok(LaunchResult {
        time_seconds,
        events,
        occupancy: occ,
        waves,
        sampled_blocks: traces.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{LaunchConfig, WarpInstruction, FULL_MASK};

    /// A synthetic homogeneous kernel: each block's warps stream `loads`
    /// coalesced loads and `alus` ALU bursts over a private address range.
    struct Synthetic {
        blocks: usize,
        threads: usize,
        loads: usize,
        alus: u32,
        array_bytes: u64,
    }

    impl KernelTrace for Synthetic {
        fn name(&self) -> String {
            "synthetic".into()
        }

        fn launch_config(&self) -> LaunchConfig {
            LaunchConfig {
                grid_blocks: self.blocks,
                threads_per_block: self.threads,
                regs_per_thread: 16,
                shared_mem_per_block: 0,
            }
        }

        fn block_trace(&self, block_id: usize, gpu: &GpuConfig) -> BlockTrace {
            let warps = self.threads.div_ceil(gpu.warp_size);
            let mut t = BlockTrace::with_warps(warps);
            for (w, stream) in t.warps.iter_mut().enumerate() {
                for l in 0..self.loads {
                    let base =
                        ((block_id * warps + w) * self.loads + l) as u64 * 128 % self.array_bytes;
                    stream.push(WarpInstruction::LoadGlobal {
                        addrs: (0..32).map(|i| base + i * 4).collect(),
                        width: 4,
                        mask: FULL_MASK,
                    });
                }
                if self.alus > 0 {
                    stream.push(WarpInstruction::Alu {
                        count: self.alus,
                        mask: FULL_MASK,
                    });
                }
            }
            t
        }
    }

    #[test]
    fn more_blocks_take_more_time() {
        let gpu = GpuConfig::gtx580();
        let small = Synthetic {
            blocks: 96,
            threads: 256,
            loads: 8,
            alus: 16,
            array_bytes: 1 << 24,
        };
        let large = Synthetic {
            blocks: 960,
            threads: 256,
            loads: 8,
            alus: 16,
            array_bytes: 1 << 24,
        };
        let rs = simulate_launch(&gpu, &small).unwrap();
        let rl = simulate_launch(&gpu, &large).unwrap();
        // 10x the blocks -> 10x the waves; launch overhead compresses the
        // observable ratio somewhat.
        assert!(rl.time_seconds > rs.time_seconds * 4.0);
    }

    #[test]
    fn events_scale_with_grid() {
        let gpu = GpuConfig::gtx580();
        let k = Synthetic {
            blocks: 960,
            threads: 256,
            loads: 4,
            alus: 0,
            array_bytes: 1 << 24,
        };
        let r = simulate_launch(&gpu, &k).unwrap();
        // 960 blocks x 8 warps x 4 loads.
        assert!((r.events.gld_request - 960.0 * 8.0 * 4.0).abs() < 1e-6);
    }

    #[test]
    fn wave_count_matches_occupancy() {
        let gpu = GpuConfig::gtx580();
        let k = Synthetic {
            blocks: 960,
            threads: 256,
            loads: 1,
            alus: 1,
            array_bytes: 1 << 20,
        };
        let r = simulate_launch(&gpu, &k).unwrap();
        let expected_waves = 960usize.div_ceil(r.occupancy.blocks_per_sm * gpu.num_sms);
        assert_eq!(r.waves, expected_waves);
    }

    #[test]
    fn bandwidth_bound_workload_is_limited_by_dram() {
        let gpu = GpuConfig::gtx580();
        // Huge streaming loads, no compute: time should be close to
        // bytes / bandwidth.
        let blocks = 2048;
        let k = Synthetic {
            blocks,
            threads: 256,
            loads: 32,
            alus: 0,
            array_bytes: 1 << 30,
        };
        let r = simulate_launch(&gpu, &k).unwrap();
        let bytes = r.events.dram_read_transactions * 32.0;
        let bw_time = bytes / (gpu.mem_bandwidth_gbps * 1e9);
        assert!(
            r.time_seconds >= bw_time * 0.9,
            "time {} below bandwidth floor {}",
            r.time_seconds,
            bw_time
        );
    }

    #[test]
    fn sample_ids_spread_and_dedup() {
        assert_eq!(sample_block_ids(100, 4), vec![0, 25, 50, 75]);
        assert_eq!(sample_block_ids(2, 8), vec![0, 1]);
        assert_eq!(sample_block_ids(1, 1), vec![0]);
    }

    #[test]
    fn empty_grid_samples_no_blocks() {
        assert!(sample_block_ids(0, 4).is_empty());
        assert!(sample_block_ids(0, 0).is_empty());
    }

    #[test]
    fn launch_overhead_floors_tiny_kernels() {
        let gpu = GpuConfig::gtx580();
        let k = Synthetic {
            blocks: 1,
            threads: 32,
            loads: 1,
            alus: 1,
            array_bytes: 4096,
        };
        let r = simulate_launch(&gpu, &k).unwrap();
        assert!(r.time_seconds >= LAUNCH_OVERHEAD_S);
    }

    #[test]
    fn kepler_and_fermi_produce_different_counter_profiles() {
        let fermi = GpuConfig::gtx580();
        let kepler = GpuConfig::k20m();
        let k = Synthetic {
            blocks: 208,
            threads: 256,
            loads: 8,
            alus: 8,
            array_bytes: 1 << 22,
        };
        let rf = simulate_launch(&fermi, &k).unwrap();
        let rk = simulate_launch(&kepler, &k).unwrap();
        assert!(rf.events.l1_global_load_miss > 0.0);
        assert_eq!(rk.events.l1_global_load_miss, 0.0);
        assert!(rk.events.l2_read_transactions > 0.0);
    }
}
