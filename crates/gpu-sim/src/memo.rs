//! Launch memoization: a content-addressed cache over pure launch
//! simulations.
//!
//! [`crate::engine::simulate_launch`] is a pure function — every launch
//! builds fresh L1/L2 state and shares nothing with its neighbours — so two
//! launches with identical sampled block traces, launch geometry, and GPU
//! configuration produce identical [`LaunchResult`]s *by construction*.
//! Multi-pass reductions, multi-sweep stencils, and repeated-grid sweep jobs
//! re-simulate exactly such structurally identical launches; [`SimCache`]
//! recognises them by hashing the trace content and replays the stored
//! result instead.
//!
//! The cache key is a 128-bit digest of (GPU fingerprint, launch config,
//! sampled block traces) — see [`GpuConfig::fingerprint`] — computed from
//! two independently salted 64-bit hashes so accidental collisions are
//! vanishingly unlikely at sweep scale (tens of thousands of launches).
//! Trace construction still runs on every call (it is needed to compute the
//! key); only the expensive cycle-detailed SM simulation is skipped.
//!
//! A `SimCache` is `Sync` and intended to be shared across the launches of
//! one application or a whole collection sweep. Process-wide hit/miss
//! totals are additionally tracked so drivers like `bench_sim` can report a
//! hit rate without threading cache handles through every collection API.
//! Set `BF_SIM_CACHE=0` (or `off`) to disable memoization in the stock
//! profiling paths; results are bit-identical either way.

use crate::arch::GpuConfig;
use crate::engine::{sample_block_ids, simulate_sampled_launch, LaunchResult};
use crate::occupancy::occupancy;
use crate::trace::{BlockTrace, KernelTrace, LaunchConfig};
use crate::Result;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Cache hit/miss totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Launches answered from the cache.
    pub hits: u64,
    /// Launches that had to be simulated.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Process-wide totals, aggregated over every [`SimCache`] instance.
static GLOBAL_HITS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_MISSES: AtomicU64 = AtomicU64::new(0);

/// Returns the process-wide cache totals accumulated since the last
/// [`reset_global_cache_stats`].
pub fn global_cache_stats() -> CacheStats {
    CacheStats {
        hits: GLOBAL_HITS.load(Ordering::Relaxed),
        misses: GLOBAL_MISSES.load(Ordering::Relaxed),
    }
}

/// Zeroes the process-wide cache totals (bench harnesses call this between
/// scenarios).
pub fn reset_global_cache_stats() {
    GLOBAL_HITS.store(0, Ordering::Relaxed);
    GLOBAL_MISSES.store(0, Ordering::Relaxed);
}

/// Whether the stock profiling paths should memoize launches: true unless
/// `BF_SIM_CACHE` is set to `0` or `off`.
pub fn cache_enabled() -> bool {
    !matches!(
        std::env::var("BF_SIM_CACHE").as_deref(),
        Ok("0") | Ok("off")
    )
}

/// A shared, thread-safe launch-result cache.
pub struct SimCache {
    map: Mutex<HashMap<u128, LaunchResult>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for SimCache {
    fn default() -> Self {
        SimCache::new()
    }
}

impl SimCache {
    /// Creates an empty cache.
    pub fn new() -> SimCache {
        SimCache {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Hit/miss counts for this cache instance.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct launches stored.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn get(&self, key: u128) -> Option<LaunchResult> {
        let found = self.map.lock().unwrap().get(&key).cloned();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            GLOBAL_HITS.fetch_add(1, Ordering::Relaxed);
            bf_trace::counter!("sim_cache.hits");
        }
        found
    }

    fn put(&self, key: u128, value: LaunchResult) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        GLOBAL_MISSES.fetch_add(1, Ordering::Relaxed);
        bf_trace::counter!("sim_cache.misses");
        self.map.lock().unwrap().insert(key, value);
    }
}

/// The 128-bit content key of one launch: two differently salted SipHash
/// digests over (GPU fingerprint, launch config, sampled traces).
fn launch_key(gpu_fp: u64, lc: &LaunchConfig, traces: &[BlockTrace]) -> u128 {
    let digest = |salt: u64| {
        let mut h = DefaultHasher::new();
        salt.hash(&mut h);
        gpu_fp.hash(&mut h);
        lc.hash(&mut h);
        traces.hash(&mut h);
        h.finish()
    };
    ((digest(0x9E37_79B9_7F4A_7C15) as u128) << 64) | digest(0xD1B5_4A32_D192_ED03) as u128
}

/// Simulates one launch through the cache: identical (traces, config, GPU)
/// triples replay the stored result, everything else simulates and stores.
pub fn simulate_launch_cached(
    gpu: &GpuConfig,
    kernel: &dyn KernelTrace,
    cache: &SimCache,
) -> Result<LaunchResult> {
    let lc = kernel.launch_config();
    let occ = occupancy(gpu, &lc)?;
    let ids = sample_block_ids(lc.grid_blocks, occ.blocks_per_sm);
    let traces: Vec<BlockTrace> = ids.iter().map(|&b| kernel.block_trace(b, gpu)).collect();
    let key = launch_key(gpu.fingerprint(), &lc, &traces);
    if let Some(result) = cache.get(key) {
        return Ok(result);
    }
    let result = simulate_sampled_launch(gpu, &lc, occ, &traces)?;
    cache.put(key, result.clone());
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate_launch;
    use crate::trace::{WarpInstruction, FULL_MASK};

    /// A trivially homogeneous kernel parameterised by a base address, so
    /// tests can mint identical and distinct launches at will.
    struct Streamer {
        base: u64,
        blocks: usize,
    }

    impl KernelTrace for Streamer {
        fn name(&self) -> String {
            "streamer".into()
        }

        fn launch_config(&self) -> LaunchConfig {
            LaunchConfig {
                grid_blocks: self.blocks,
                threads_per_block: 128,
                regs_per_thread: 16,
                shared_mem_per_block: 0,
            }
        }

        fn block_trace(&self, block_id: usize, gpu: &GpuConfig) -> BlockTrace {
            let warps = 128 / gpu.warp_size;
            let mut t = BlockTrace::with_warps(warps);
            for (w, stream) in t.warps.iter_mut().enumerate() {
                let base = self.base + (block_id * warps + w) as u64 * 128;
                stream.push(WarpInstruction::LoadGlobal {
                    addrs: (0..32).map(|i| base + i * 4).collect(),
                    width: 4,
                    mask: FULL_MASK,
                });
                stream.push(WarpInstruction::Alu {
                    count: 8,
                    mask: FULL_MASK,
                });
            }
            t
        }
    }

    #[test]
    fn identical_launches_hit_and_replay_bit_identical_results() {
        let gpu = GpuConfig::gtx580();
        let cache = SimCache::new();
        let k = Streamer {
            base: 0x1000_0000,
            blocks: 64,
        };
        let fresh = simulate_launch(&gpu, &k).unwrap();
        let miss = simulate_launch_cached(&gpu, &k, &cache).unwrap();
        let hit = simulate_launch_cached(&gpu, &k, &cache).unwrap();
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        for r in [&miss, &hit] {
            assert_eq!(r.time_seconds.to_bits(), fresh.time_seconds.to_bits());
            assert_eq!(
                r.events.inst_executed.to_bits(),
                fresh.events.inst_executed.to_bits()
            );
            assert_eq!(
                r.events.dram_read_transactions.to_bits(),
                fresh.events.dram_read_transactions.to_bits()
            );
            assert_eq!(r.waves, fresh.waves);
            assert_eq!(r.sampled_blocks, fresh.sampled_blocks);
        }
    }

    #[test]
    fn different_traces_do_not_alias() {
        let gpu = GpuConfig::gtx580();
        let cache = SimCache::new();
        let a = simulate_launch_cached(
            &gpu,
            &Streamer {
                base: 0x1000_0000,
                blocks: 64,
            },
            &cache,
        )
        .unwrap();
        let b = simulate_launch_cached(
            &gpu,
            &Streamer {
                base: 0x2000_0000,
                blocks: 64,
            },
            &cache,
        )
        .unwrap();
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.len(), 2);
        // Same structure, different addresses: both simulated, same timing.
        assert_eq!(a.time_seconds.to_bits(), b.time_seconds.to_bits());
    }

    #[test]
    fn different_gpus_do_not_alias() {
        let cache = SimCache::new();
        let k = Streamer {
            base: 0x1000_0000,
            blocks: 64,
        };
        let f = simulate_launch_cached(&GpuConfig::gtx580(), &k, &cache).unwrap();
        let kep = simulate_launch_cached(&GpuConfig::k20m(), &k, &cache).unwrap();
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 2 });
        assert_ne!(f.time_seconds.to_bits(), kep.time_seconds.to_bits());
    }

    #[test]
    fn preset_fingerprints_are_distinct() {
        let fps: Vec<u64> = GpuConfig::presets()
            .iter()
            .map(|g| g.fingerprint())
            .collect();
        for i in 0..fps.len() {
            for j in 0..i {
                assert_ne!(fps[i], fps[j], "presets {i} and {j} collide");
            }
        }
        // Any field change must change the fingerprint.
        let mut g = GpuConfig::gtx580();
        let before = g.fingerprint();
        g.mem_bandwidth_gbps += 1.0;
        assert_ne!(before, g.fingerprint());
    }

    #[test]
    fn cache_env_gate_matches_environment() {
        let disabled = matches!(
            std::env::var("BF_SIM_CACHE").as_deref(),
            Ok("0") | Ok("off")
        );
        assert_eq!(cache_enabled(), !disabled);
    }
}
