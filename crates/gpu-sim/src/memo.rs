//! Launch memoization: a content-addressed cache over pure launch
//! simulations.
//!
//! [`crate::engine::simulate_launch`] is a pure function — every launch
//! builds fresh L1/L2 state and shares nothing with its neighbours — so two
//! launches with identical sampled block traces, launch geometry, and GPU
//! configuration produce identical [`LaunchResult`]s *by construction*.
//! Multi-pass reductions, multi-sweep stencils, and repeated-grid sweep jobs
//! re-simulate exactly such structurally identical launches; [`SimCache`]
//! recognises them by hashing the trace content and replays the stored
//! result instead.
//!
//! The cache key is a 128-bit digest of (content version, extrapolation
//! mode, GPU fingerprint, launch config, sampled block traces) computed in a
//! **single pass** by [`Bf128Hasher`] — two independently mixed 64-bit lanes
//! over the same byte stream, so accidental collisions are vanishingly
//! unlikely at sweep scale (tens of thousands of launches) without paying
//! for two full SipHash walks over the traces. The hasher is deliberately
//! *not* `DefaultHasher`: its output is stable across processes and
//! executions, which is what lets the key double as the on-disk identity.
//! Trace construction still runs on every call (it is needed to compute the
//! key); only the expensive cycle-detailed SM simulation is skipped.
//!
//! ## Disk tier
//!
//! A `SimCache` optionally layers over a persistent, cross-process
//! [`crate::diskcache::DiskCache`] ([`SimCache::with_disk`] /
//! [`SimCache::from_env`]). Memory misses then fall through to the disk
//! index; disk hits are promoted into memory and new results are appended
//! to the log, so repeated `train`/`bench`/serve runs against the same
//! `BF_SIM_CACHE_DIR` skip simulation entirely for launches any previous
//! run has seen. [`SIM_CONTENT_VERSION`] is folded into every key: bump it
//! whenever simulator semantics change and all stale disk entries
//! self-invalidate.
//!
//! A `SimCache` is `Sync` and intended to be shared across the launches of
//! one application or a whole collection sweep. Process-wide hit/miss
//! totals are additionally tracked so drivers like `bench_sim` can report a
//! hit rate without threading cache handles through every collection API.
//! Set `BF_SIM_CACHE=0` (or `off`) to disable memoization in the stock
//! profiling paths; results are bit-identical either way.

use crate::arch::GpuConfig;
use crate::diskcache::{self, DiskCache};
use crate::engine::{sample_block_ids, simulate_sampled_launch_with, EngineOptions, LaunchResult};
use crate::occupancy::occupancy;
use crate::trace::{BlockTrace, KernelTrace, LaunchConfig};
use crate::Result;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Version of the simulator's *observable semantics*. Folded into every
/// cache key (memory and disk), so bumping it orphans all previously stored
/// results. Bump whenever any change alters the counters or timing a launch
/// produces.
pub const SIM_CONTENT_VERSION: u64 = 1;

/// Cache hit/miss totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Launches answered from the cache.
    pub hits: u64,
    /// Launches that had to be simulated.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Process-wide totals, aggregated over every [`SimCache`] instance.
static GLOBAL_HITS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_MISSES: AtomicU64 = AtomicU64::new(0);
/// Disk-tier totals: a disk hit also counts as a cache hit above; a disk
/// miss means the launch was absent from both tiers of a disk-backed cache.
static GLOBAL_DISK_HITS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_DISK_MISSES: AtomicU64 = AtomicU64::new(0);

/// Returns the process-wide cache totals accumulated since the last
/// [`reset_global_cache_stats`].
pub fn global_cache_stats() -> CacheStats {
    CacheStats {
        hits: GLOBAL_HITS.load(Ordering::Relaxed),
        misses: GLOBAL_MISSES.load(Ordering::Relaxed),
    }
}

/// Process-wide disk-tier totals (zero unless a disk-backed cache is in
/// use). A disk hit is a launch that a *previous process* already paid for.
pub fn global_disk_cache_stats() -> CacheStats {
    CacheStats {
        hits: GLOBAL_DISK_HITS.load(Ordering::Relaxed),
        misses: GLOBAL_DISK_MISSES.load(Ordering::Relaxed),
    }
}

/// Zeroes the process-wide cache totals (bench harnesses call this between
/// scenarios).
pub fn reset_global_cache_stats() {
    GLOBAL_HITS.store(0, Ordering::Relaxed);
    GLOBAL_MISSES.store(0, Ordering::Relaxed);
    GLOBAL_DISK_HITS.store(0, Ordering::Relaxed);
    GLOBAL_DISK_MISSES.store(0, Ordering::Relaxed);
}

/// Whether the stock profiling paths should memoize launches: true unless
/// `BF_SIM_CACHE` is set to `0` or `off`.
pub fn cache_enabled() -> bool {
    !matches!(
        std::env::var("BF_SIM_CACHE").as_deref(),
        Ok("0") | Ok("off")
    )
}

/// A streaming 128-bit hasher: two 64-bit lanes fed the same byte stream
/// with different seeds and a Murmur3-style finalizer mix per word. Unlike
/// `DefaultHasher` (randomly seeded SipHash in practice), its output is a
/// pure function of the input bytes — stable across processes, runs, and
/// toolchains on the same endianness — which makes digests usable as
/// on-disk identities. One pass over the traces replaces the previous
/// two-pass double-SipHash scheme.
pub struct Bf128Hasher {
    lane_a: u64,
    lane_b: u64,
    /// Bytes absorbed so far; folded into `finish128` so prefixes of a
    /// stream never alias the full stream.
    len: u64,
}

#[inline]
fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    k ^= k >> 33;
    k = k.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    k ^= k >> 33;
    k
}

impl Default for Bf128Hasher {
    fn default() -> Self {
        Bf128Hasher::new()
    }
}

impl Bf128Hasher {
    /// Creates a hasher with the fixed lane seeds.
    pub fn new() -> Bf128Hasher {
        Bf128Hasher {
            lane_a: 0x9E37_79B9_7F4A_7C15,
            lane_b: 0xD1B5_4A32_D192_ED03,
            len: 0,
        }
    }

    /// Per-word mixing is deliberately light — xor, multiply, rotate per
    /// lane (~5 cycles, lanes independent) — because trace hashing streams
    /// megabytes of addresses; all the heavy avalanche work happens once,
    /// in `finish128`. Content addressing needs collision resistance
    /// against *accidents*, not adversaries, and two independently seeded
    /// multiplicative lanes plus a final fmix64 give that.
    #[inline]
    fn absorb(&mut self, word: u64) {
        self.lane_a = (self.lane_a ^ word)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(26);
        self.lane_b = (self.lane_b ^ word.rotate_left(32))
            .wrapping_mul(0xC4CE_B9FE_1A85_EC53)
            .rotate_left(26);
    }

    /// Finalizes both lanes into the 128-bit digest.
    pub fn finish128(&self) -> u128 {
        let a = fmix64(self.lane_a ^ self.len);
        let b = fmix64(self.lane_b ^ self.len.rotate_left(32) ^ a);
        ((a as u128) << 64) | b as u128
    }
}

impl Hasher for Bf128Hasher {
    fn finish(&self) -> u64 {
        fmix64(self.lane_a ^ self.len)
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.absorb(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.absorb(u64::from_le_bytes(tail));
        }
        self.len = self.len.wrapping_add(bytes.len() as u64);
    }

    // Integer fast paths: one absorb each instead of the chunked byte walk.
    // Trace hashing is dominated by u64 addresses and u32 offsets/masks, so
    // these are the hot calls.
    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.absorb(i as u64);
        self.len = self.len.wrapping_add(1);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.absorb(i as u64);
        self.len = self.len.wrapping_add(4);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.absorb(i);
        self.len = self.len.wrapping_add(8);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.absorb(i as u64);
        self.len = self.len.wrapping_add(8);
    }
}

/// A shared, thread-safe launch-result cache: an in-memory map, optionally
/// layered over a persistent cross-process [`DiskCache`].
pub struct SimCache {
    map: Mutex<HashMap<u128, LaunchResult>>,
    hits: AtomicU64,
    misses: AtomicU64,
    disk: Option<Arc<DiskCache>>,
}

impl Default for SimCache {
    fn default() -> Self {
        SimCache::new()
    }
}

impl SimCache {
    /// Creates an empty, memory-only cache.
    pub fn new() -> SimCache {
        SimCache {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            disk: None,
        }
    }

    /// Creates a cache layered over a shared disk tier.
    pub fn with_disk(disk: Arc<DiskCache>) -> SimCache {
        SimCache {
            disk: Some(disk),
            ..SimCache::new()
        }
    }

    /// Creates the cache the environment asks for: disk-backed when
    /// `BF_SIM_CACHE_DIR` resolves to a usable directory, memory-only
    /// otherwise.
    pub fn from_env() -> SimCache {
        match diskcache::from_env() {
            Some(disk) => SimCache::with_disk(disk),
            None => SimCache::new(),
        }
    }

    /// The disk tier, if this cache has one.
    pub fn disk(&self) -> Option<&Arc<DiskCache>> {
        self.disk.as_ref()
    }

    /// Hit/miss counts for this cache instance (disk hits included in
    /// `hits`).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct launches stored in memory.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// Whether the in-memory tier holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn get(&self, key: u128) -> Option<LaunchResult> {
        if let Some(found) = self.map.lock().unwrap().get(&key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            GLOBAL_HITS.fetch_add(1, Ordering::Relaxed);
            bf_trace::counter!("sim_cache.hits");
            return Some(found);
        }
        let disk = self.disk.as_ref()?;
        match disk.get(key) {
            Some(found) => {
                // Promote, and count as both a cache hit and a disk hit.
                self.map.lock().unwrap().insert(key, found.clone());
                self.hits.fetch_add(1, Ordering::Relaxed);
                GLOBAL_HITS.fetch_add(1, Ordering::Relaxed);
                GLOBAL_DISK_HITS.fetch_add(1, Ordering::Relaxed);
                bf_trace::counter!("sim_cache.hits");
                bf_trace::counter!("sim_cache.disk_hits");
                Some(found)
            }
            None => {
                GLOBAL_DISK_MISSES.fetch_add(1, Ordering::Relaxed);
                bf_trace::counter!("sim_cache.disk_misses");
                None
            }
        }
    }

    fn put(&self, key: u128, value: LaunchResult) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        GLOBAL_MISSES.fetch_add(1, Ordering::Relaxed);
        bf_trace::counter!("sim_cache.misses");
        if let Some(disk) = &self.disk {
            // I/O failure degrades to memory-only; the result is still good.
            if let Err(e) = disk.put(key, &value) {
                bf_trace::counter!("sim_cache.disk_put_errors");
                let _ = e;
            }
        }
        self.map.lock().unwrap().insert(key, value);
    }
}

/// The 128-bit content key of one launch: a single [`Bf128Hasher`] pass
/// over (content version, extrapolation mode, GPU fingerprint, launch
/// config, sampled traces). Stable across processes — the same key indexes
/// the in-memory map and the on-disk log. The leading domain byte keeps
/// full-trace keys and [`launch_key_tagged`] keys from ever aliasing.
fn launch_key(gpu_fp: u64, lc: &LaunchConfig, traces: &[BlockTrace], extrapolate: bool) -> u128 {
    let mut h = Bf128Hasher::new();
    SIM_CONTENT_VERSION.hash(&mut h);
    0u8.hash(&mut h);
    extrapolate.hash(&mut h);
    gpu_fp.hash(&mut h);
    lc.hash(&mut h);
    traces.hash(&mut h);
    h.finish128()
}

/// [`launch_key`] for kernels with a compact content tag
/// ([`KernelTrace::content_tag`]): the tag stands in for the full trace
/// walk, making the key O(1) instead of O(trace bytes) — cheap enough that
/// a 0%-hit-rate sweep pays no measurable memoization overhead.
fn launch_key_tagged(gpu_fp: u64, lc: &LaunchConfig, tag: u128, extrapolate: bool) -> u128 {
    let mut h = Bf128Hasher::new();
    SIM_CONTENT_VERSION.hash(&mut h);
    1u8.hash(&mut h);
    extrapolate.hash(&mut h);
    gpu_fp.hash(&mut h);
    lc.hash(&mut h);
    tag.hash(&mut h);
    h.finish128()
}

/// Simulates one launch through the cache: identical (traces, config, GPU)
/// triples replay the stored result, everything else simulates and stores.
pub fn simulate_launch_cached(
    gpu: &GpuConfig,
    kernel: &dyn KernelTrace,
    cache: &SimCache,
) -> Result<LaunchResult> {
    simulate_launch_cached_fp(gpu, gpu.fingerprint(), kernel, cache)
}

/// [`simulate_launch_cached`] with the GPU fingerprint precomputed, so
/// batch drivers hash the `GpuConfig` once per sweep instead of once per
/// launch.
pub fn simulate_launch_cached_fp(
    gpu: &GpuConfig,
    gpu_fp: u64,
    kernel: &dyn KernelTrace,
    cache: &SimCache,
) -> Result<LaunchResult> {
    let lc = kernel.launch_config();
    let occ = occupancy(gpu, &lc)?;
    let opts = EngineOptions::default();
    // Tagged kernels are keyed without materialising their traces, so a hit
    // skips both trace construction and the content walk.
    let (key, mut traces) = match kernel.content_tag() {
        Some(tag) => (
            launch_key_tagged(gpu_fp, &lc, tag, opts.loop_extrapolation),
            None,
        ),
        None => {
            let ids = sample_block_ids(lc.grid_blocks, occ.blocks_per_sm);
            let traces: Vec<BlockTrace> = ids.iter().map(|&b| kernel.block_trace(b, gpu)).collect();
            (
                launch_key(gpu_fp, &lc, &traces, opts.loop_extrapolation),
                Some(traces),
            )
        }
    };
    if let Some(result) = cache.get(key) {
        return Ok(result);
    }
    let traces = traces.take().unwrap_or_else(|| {
        let ids = sample_block_ids(lc.grid_blocks, occ.blocks_per_sm);
        ids.iter().map(|&b| kernel.block_trace(b, gpu)).collect()
    });
    let result = simulate_sampled_launch_with(gpu, &lc, occ, &traces, &opts)?;
    cache.put(key, result.clone());
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate_launch;
    use crate::trace::{WarpInstruction, FULL_MASK};

    /// A trivially homogeneous kernel parameterised by a base address, so
    /// tests can mint identical and distinct launches at will.
    struct Streamer {
        base: u64,
        blocks: usize,
    }

    impl KernelTrace for Streamer {
        fn name(&self) -> String {
            "streamer".into()
        }

        fn launch_config(&self) -> LaunchConfig {
            LaunchConfig {
                grid_blocks: self.blocks,
                threads_per_block: 128,
                regs_per_thread: 16,
                shared_mem_per_block: 0,
            }
        }

        fn block_trace(&self, block_id: usize, gpu: &GpuConfig) -> BlockTrace {
            let warps = 128 / gpu.warp_size;
            let mut t = BlockTrace::with_warps(warps);
            for (w, stream) in t.warps.iter_mut().enumerate() {
                let base = self.base + (block_id * warps + w) as u64 * 128;
                stream.push(WarpInstruction::LoadGlobal {
                    addrs: (0..32).map(|i| base + i * 4).collect(),
                    width: 4,
                    mask: FULL_MASK,
                });
                stream.push(WarpInstruction::Alu {
                    count: 8,
                    mask: FULL_MASK,
                });
            }
            t
        }
    }

    #[test]
    fn identical_launches_hit_and_replay_bit_identical_results() {
        let gpu = GpuConfig::gtx580();
        let cache = SimCache::new();
        let k = Streamer {
            base: 0x1000_0000,
            blocks: 64,
        };
        let fresh = simulate_launch(&gpu, &k).unwrap();
        let miss = simulate_launch_cached(&gpu, &k, &cache).unwrap();
        let hit = simulate_launch_cached(&gpu, &k, &cache).unwrap();
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        for r in [&miss, &hit] {
            assert_eq!(r.time_seconds.to_bits(), fresh.time_seconds.to_bits());
            assert_eq!(
                r.events.inst_executed.to_bits(),
                fresh.events.inst_executed.to_bits()
            );
            assert_eq!(
                r.events.dram_read_transactions.to_bits(),
                fresh.events.dram_read_transactions.to_bits()
            );
            assert_eq!(r.waves, fresh.waves);
            assert_eq!(r.sampled_blocks, fresh.sampled_blocks);
        }
    }

    #[test]
    fn different_traces_do_not_alias() {
        let gpu = GpuConfig::gtx580();
        let cache = SimCache::new();
        let a = simulate_launch_cached(
            &gpu,
            &Streamer {
                base: 0x1000_0000,
                blocks: 64,
            },
            &cache,
        )
        .unwrap();
        let b = simulate_launch_cached(
            &gpu,
            &Streamer {
                base: 0x2000_0000,
                blocks: 64,
            },
            &cache,
        )
        .unwrap();
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.len(), 2);
        // Same structure, different addresses: both simulated, same timing.
        assert_eq!(a.time_seconds.to_bits(), b.time_seconds.to_bits());
    }

    #[test]
    fn different_gpus_do_not_alias() {
        let cache = SimCache::new();
        let k = Streamer {
            base: 0x1000_0000,
            blocks: 64,
        };
        let f = simulate_launch_cached(&GpuConfig::gtx580(), &k, &cache).unwrap();
        let kep = simulate_launch_cached(&GpuConfig::k20m(), &k, &cache).unwrap();
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 2 });
        assert_ne!(f.time_seconds.to_bits(), kep.time_seconds.to_bits());
    }

    #[test]
    fn preset_fingerprints_are_distinct() {
        let fps: Vec<u64> = GpuConfig::presets()
            .iter()
            .map(|g| g.fingerprint())
            .collect();
        for i in 0..fps.len() {
            for j in 0..i {
                assert_ne!(fps[i], fps[j], "presets {i} and {j} collide");
            }
        }
        // Any field change must change the fingerprint.
        let mut g = GpuConfig::gtx580();
        let before = g.fingerprint();
        g.mem_bandwidth_gbps += 1.0;
        assert_ne!(before, g.fingerprint());
    }

    #[test]
    fn cache_env_gate_matches_environment() {
        let disabled = matches!(
            std::env::var("BF_SIM_CACHE").as_deref(),
            Ok("0") | Ok("off")
        );
        assert_eq!(cache_enabled(), !disabled);
    }

    #[test]
    fn bf128_hasher_is_deterministic_and_collision_averse() {
        let digest = |bytes: &[u8]| {
            let mut h = Bf128Hasher::new();
            h.write(bytes);
            h.finish128()
        };
        // Stable: fixed input, fixed output (the value itself is free to
        // change only with SIM_CONTENT_VERSION, which orphans old keys).
        assert_eq!(digest(b"blackforest"), digest(b"blackforest"));
        assert_ne!(digest(b"blackforest"), digest(b"blackforesu"));
        // Length is part of the digest: a prefix never aliases the whole.
        assert_ne!(digest(b"ab"), digest(b"ab\0\0"));
        // Streaming in pieces matches one-shot for word-aligned splits.
        let mut h = Bf128Hasher::new();
        h.write(b"01234567");
        h.write(b"89abcdef");
        assert_eq!(h.finish128(), digest(b"0123456789abcdef"));
        // Integer fast paths match their byte encodings' width behaviour.
        let mut a = Bf128Hasher::new();
        7u64.hash(&mut a);
        let mut b = Bf128Hasher::new();
        8u64.hash(&mut b);
        assert_ne!(a.finish128(), b.finish128());
    }

    #[test]
    fn launch_keys_are_stable_across_cache_instances() {
        // The same kernel must produce the same key in any process; we can
        // at least assert it is identical across independent hasher runs
        // and differs when any component changes.
        let gpu = GpuConfig::gtx580();
        let k = Streamer {
            base: 0x1000_0000,
            blocks: 64,
        };
        let lc = k.launch_config();
        let traces: Vec<BlockTrace> = vec![k.block_trace(0, &gpu)];
        let key1 = launch_key(gpu.fingerprint(), &lc, &traces, true);
        let key2 = launch_key(gpu.fingerprint(), &lc, &traces, true);
        assert_eq!(key1, key2);
        assert_ne!(key1, launch_key(gpu.fingerprint(), &lc, &traces, false));
        assert_ne!(key1, launch_key(gpu.fingerprint() ^ 1, &lc, &traces, true));
    }

    /// `Streamer` with a content tag, plus a call counter proving the hit
    /// path never builds traces.
    struct TaggedStreamer {
        inner: Streamer,
        trace_calls: std::sync::atomic::AtomicU64,
    }

    impl TaggedStreamer {
        fn new(base: u64, blocks: usize) -> TaggedStreamer {
            TaggedStreamer {
                inner: Streamer { base, blocks },
                trace_calls: std::sync::atomic::AtomicU64::new(0),
            }
        }
    }

    impl KernelTrace for TaggedStreamer {
        fn name(&self) -> String {
            self.inner.name()
        }

        fn launch_config(&self) -> LaunchConfig {
            self.inner.launch_config()
        }

        fn block_trace(&self, block_id: usize, gpu: &GpuConfig) -> BlockTrace {
            self.trace_calls
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.inner.block_trace(block_id, gpu)
        }

        fn content_tag(&self) -> Option<u128> {
            let mut h = Bf128Hasher::new();
            0x5453u64.hash(&mut h); // "TS"
            self.inner.base.hash(&mut h);
            self.inner.blocks.hash(&mut h);
            Some(h.finish128())
        }
    }

    #[test]
    fn tagged_kernels_match_untagged_bit_exactly_and_skip_traces_on_hit() {
        let gpu = GpuConfig::gtx580();
        // Same launch through the untagged (full-trace) and tagged paths:
        // the counters must be bit-identical — the tag only changes how the
        // cache key is derived, never what is simulated.
        let plain = simulate_launch_cached(
            &gpu,
            &Streamer {
                base: 0x1000_0000,
                blocks: 64,
            },
            &SimCache::new(),
        )
        .unwrap();
        let cache = SimCache::new();
        let tagged = TaggedStreamer::new(0x1000_0000, 64);
        let miss = simulate_launch_cached(&gpu, &tagged, &cache).unwrap();
        let built = tagged
            .trace_calls
            .load(std::sync::atomic::Ordering::Relaxed);
        assert!(built > 0, "the miss must build traces to simulate");
        let hit = simulate_launch_cached(&gpu, &tagged, &cache).unwrap();
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(
            tagged
                .trace_calls
                .load(std::sync::atomic::Ordering::Relaxed),
            built,
            "a tagged hit must not construct any traces"
        );
        for r in [&miss, &hit] {
            assert_eq!(r.time_seconds.to_bits(), plain.time_seconds.to_bits());
            assert_eq!(
                r.events.inst_executed.to_bits(),
                plain.events.inst_executed.to_bits()
            );
            assert_eq!(
                r.events.shared_load_replay.to_bits(),
                plain.events.shared_load_replay.to_bits()
            );
            assert_eq!(r.waves, plain.waves);
            assert_eq!(r.sampled_blocks, plain.sampled_blocks);
        }
        // Distinct tag inputs must not alias each other.
        let other = TaggedStreamer::new(0x2000_0000, 64);
        simulate_launch_cached(&gpu, &other, &cache).unwrap();
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 2 });
    }

    #[test]
    fn disk_tier_hits_across_cache_instances() {
        let dir = std::env::temp_dir().join(format!("bf-memo-disk-{}", std::process::id()));
        drop(std::fs::remove_dir_all(&dir));
        let disk = Arc::new(DiskCache::open(&dir).unwrap());
        let gpu = GpuConfig::gtx580();
        let k = Streamer {
            base: 0x1000_0000,
            blocks: 64,
        };
        let first = SimCache::with_disk(Arc::clone(&disk));
        let cold = simulate_launch_cached(&gpu, &k, &first).unwrap();
        assert_eq!(first.stats(), CacheStats { hits: 0, misses: 1 });
        // A brand-new SimCache (fresh process stand-in) over the same disk
        // tier answers from disk without simulating.
        let second = SimCache::with_disk(Arc::clone(&disk));
        let warm = simulate_launch_cached(&gpu, &k, &second).unwrap();
        assert_eq!(second.stats(), CacheStats { hits: 1, misses: 0 });
        assert_eq!(warm.time_seconds.to_bits(), cold.time_seconds.to_bits());
        assert_eq!(
            warm.events.inst_executed.to_bits(),
            cold.events.inst_executed.to_bits()
        );
        drop(std::fs::remove_dir_all(&dir));
    }
}
