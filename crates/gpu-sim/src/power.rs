//! Energy/power model for simulated launches.
//!
//! The paper's §7: "our method is not limited to predicting execution time —
//! one could use other metrics of interest, such as power, as response
//! variable. For instance, on the Kepler architecture, power draw can be
//! directly read using the system management interface." This module is the
//! simulator-side enabler: a McPAT-style event-energy model that turns the
//! raw event counts of a launch into energy and average power draw, playing
//! the role of `nvidia-smi` power sampling.
//!
//! Per-event energies are in picojoules, calibrated to the ballpark of
//! published GPU energy breakdowns (instruction control+execute tens of pJ,
//! DRAM access ~2 orders of magnitude above an ALU op). Absolute watts are
//! not the point — BlackForest only needs a response that varies credibly
//! with the counter vector.

use crate::arch::{GpuArchitecture, GpuConfig};
use crate::counters::RawEvents;
use serde::{Deserialize, Serialize};

/// Per-event energy coefficients (picojoules) plus static power (watts).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerModel {
    /// Energy per executed warp ALU instruction (per 32 lanes).
    pub alu_pj: f64,
    /// Energy per SFU warp instruction.
    pub sfu_pj: f64,
    /// Energy per issued instruction (fetch/decode/schedule overhead,
    /// charged to replays too).
    pub issue_pj: f64,
    /// Energy per shared-memory access (including each replay pass).
    pub smem_pj: f64,
    /// Energy per L1 access.
    pub l1_pj: f64,
    /// Energy per L2 transaction.
    pub l2_pj: f64,
    /// Energy per 32-byte DRAM transaction.
    pub dram_pj: f64,
    /// Idle/static power of the whole card in watts.
    pub static_w: f64,
}

impl PowerModel {
    /// The default model for an architecture. Kepler's smaller per-op
    /// energies reflect its lower clock and process shrink; its static
    /// floor is higher (bigger die).
    pub fn for_arch(arch: GpuArchitecture) -> PowerModel {
        match arch {
            GpuArchitecture::Fermi => PowerModel {
                alu_pj: 70.0,
                sfu_pj: 160.0,
                issue_pj: 25.0,
                smem_pj: 45.0,
                l1_pj: 55.0,
                l2_pj: 240.0,
                dram_pj: 2100.0,
                static_w: 62.0,
            },
            GpuArchitecture::Kepler => PowerModel {
                alu_pj: 45.0,
                sfu_pj: 110.0,
                issue_pj: 18.0,
                smem_pj: 35.0,
                l1_pj: 45.0,
                l2_pj: 200.0,
                dram_pj: 1900.0,
                static_w: 55.0,
            },
            // The younger generations follow the process-shrink trend:
            // per-op energies keep falling (28 nm → 16 nm → 12 nm), while
            // per-SM static power drops as dies pack more, smaller SMs.
            GpuArchitecture::Maxwell => PowerModel {
                alu_pj: 32.0,
                sfu_pj: 80.0,
                issue_pj: 13.0,
                smem_pj: 28.0,
                l1_pj: 38.0,
                l2_pj: 170.0,
                dram_pj: 1700.0,
                static_w: 40.0,
            },
            GpuArchitecture::Pascal => PowerModel {
                alu_pj: 22.0,
                sfu_pj: 58.0,
                issue_pj: 9.0,
                smem_pj: 21.0,
                l1_pj: 30.0,
                l2_pj: 140.0,
                dram_pj: 1400.0,
                static_w: 34.0,
            },
            GpuArchitecture::Volta => PowerModel {
                alu_pj: 18.0,
                sfu_pj: 48.0,
                issue_pj: 7.5,
                smem_pj: 18.0,
                l1_pj: 26.0,
                l2_pj: 120.0,
                dram_pj: 1150.0,
                static_w: 30.0,
            },
        }
    }
}

/// Energy and power summary of one launch or application run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PowerEstimate {
    /// Total dynamic energy in joules.
    pub dynamic_j: f64,
    /// Static energy over the run in joules.
    pub static_j: f64,
    /// Average power draw in watts (total energy / elapsed time).
    pub average_w: f64,
    /// Energy efficiency proxy: executed warp instructions per joule.
    pub inst_per_joule: f64,
}

/// Estimates energy and average power for accumulated raw events.
pub fn estimate_power(gpu: &GpuConfig, ev: &RawEvents, model: &PowerModel) -> PowerEstimate {
    let smem_accesses =
        ev.shared_load + ev.shared_store + ev.shared_load_replay + ev.shared_store_replay;
    let l1_accesses = ev.l1_global_load_hit + ev.l1_global_load_miss;
    let dynamic_pj = ev.inst_executed * model.alu_pj
        + ev.inst_issued * model.issue_pj
        + smem_accesses * model.smem_pj
        + l1_accesses * model.l1_pj
        + (ev.l2_read_transactions + ev.l2_write_transactions) * model.l2_pj
        + (ev.dram_read_transactions + ev.dram_write_transactions) * model.dram_pj;
    let dynamic_j = dynamic_pj * 1e-12;
    let time_s = ev.time_seconds.max(1e-12);
    // Static power scales with the number of SMs kept powered.
    let static_w = model.static_w * (gpu.num_sms as f64 / 16.0).max(0.5);
    let static_j = static_w * time_s;
    let total_j = dynamic_j + static_j;
    PowerEstimate {
        dynamic_j,
        static_j,
        average_w: total_j / time_s,
        inst_per_joule: if total_j > 0.0 {
            ev.inst_executed / total_j
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(scale: f64) -> RawEvents {
        RawEvents {
            inst_executed: 1e6 * scale,
            inst_issued: 1.1e6 * scale,
            shared_load: 2e5 * scale,
            shared_store: 1e5 * scale,
            l1_global_load_hit: 4e4 * scale,
            l1_global_load_miss: 6e4 * scale,
            l2_read_transactions: 2.4e5 * scale,
            l2_write_transactions: 4e4 * scale,
            dram_read_transactions: 1e5 * scale,
            dram_write_transactions: 2e4 * scale,
            time_seconds: 1e-3,
            ..RawEvents::default()
        }
    }

    #[test]
    fn power_is_positive_and_above_static_floor() {
        let gpu = GpuConfig::gtx580();
        let m = PowerModel::for_arch(gpu.arch);
        let p = estimate_power(&gpu, &events(1.0), &m);
        assert!(p.average_w > m.static_w);
        assert!(p.dynamic_j > 0.0);
        assert!(p.inst_per_joule > 0.0);
    }

    #[test]
    fn doubling_work_at_fixed_time_doubles_dynamic_energy() {
        let gpu = GpuConfig::gtx580();
        let m = PowerModel::for_arch(gpu.arch);
        let p1 = estimate_power(&gpu, &events(1.0), &m);
        let p2 = estimate_power(&gpu, &events(2.0), &m);
        assert!((p2.dynamic_j / p1.dynamic_j - 2.0).abs() < 1e-9);
        assert!(p2.average_w > p1.average_w);
    }

    #[test]
    fn idle_run_draws_static_power_only() {
        let gpu = GpuConfig::gtx580();
        let m = PowerModel::for_arch(gpu.arch);
        let ev = RawEvents {
            time_seconds: 1.0,
            ..RawEvents::default()
        };
        let p = estimate_power(&gpu, &ev, &m);
        assert_eq!(p.dynamic_j, 0.0);
        assert!((p.average_w - m.static_w * (gpu.num_sms as f64 / 16.0)).abs() < 1e-9);
    }

    #[test]
    fn dram_traffic_dominates_energy_for_memory_bound_events() {
        let gpu = GpuConfig::gtx580();
        let m = PowerModel::for_arch(gpu.arch);
        let mut ev = events(1.0);
        ev.dram_read_transactions *= 100.0;
        let p = estimate_power(&gpu, &ev, &m);
        let dram_j = ev.dram_read_transactions * m.dram_pj * 1e-12;
        assert!(dram_j / p.dynamic_j > 0.8);
    }

    #[test]
    fn kepler_per_op_energy_is_lower() {
        let f = PowerModel::for_arch(GpuArchitecture::Fermi);
        let k = PowerModel::for_arch(GpuArchitecture::Kepler);
        assert!(k.alu_pj < f.alu_pj);
        assert!(k.dram_pj < f.dram_pj);
    }

    #[test]
    fn per_op_energy_falls_monotonically_across_generations() {
        let models: Vec<PowerModel> = GpuArchitecture::all()
            .into_iter()
            .map(PowerModel::for_arch)
            .collect();
        for pair in models.windows(2) {
            assert!(pair[1].alu_pj < pair[0].alu_pj);
            assert!(pair[1].issue_pj < pair[0].issue_pj);
            assert!(pair[1].l2_pj < pair[0].l2_pj);
            assert!(pair[1].dram_pj < pair[0].dram_pj);
            assert!(pair[1].static_w < pair[0].static_w);
        }
    }
}
