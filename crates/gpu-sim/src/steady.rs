//! Steady-state loop detection and extrapolation.
//!
//! Long-running kernels dominated by a regular inner loop produce warp
//! streams that are the same iteration body repeated hundreds of times.
//! Simulating every repetition is wasted work once the machine reaches
//! steady state: each extra iteration shifts every event count and the
//! makespan by the same delta. This module detects that structure and
//! replaces the tail with linear extrapolation:
//!
//! 1. **Detection** — each warp stream's minimal period is found with the
//!    KMP prefix function; the launch's common repetition count `R` is the
//!    gcd of the per-warp repetition counts. Extrapolation is considered
//!    only when `R >= MIN_REPETITIONS`.
//! 2. **Probing** — three truncated copies of the resident set are
//!    simulated in full detail, at `W-1`, `W` and `W+1` iterations
//!    (`W = PROBE_ITERATIONS`), each from fresh caches, exactly like a real
//!    launch would start.
//! 3. **Guard** — the two consecutive deltas must agree: exactly for
//!    count-like fields (integer-valued, so equality is exact in f64), and
//!    within 1e-9 relative for time-like fields. If the machine has not
//!    reached steady state (cold caches still warming, occupancy ramping),
//!    the deltas differ and the launch falls back to full simulation.
//! 4. **Extrapolation** — the accepted delta is applied `R-(W+1)` more
//!    times. Integer event counts stay exact (products and sums of
//!    integers below 2^53); the derived cycle fields are rebuilt from the
//!    extrapolated makespan the same way the execute loop does.
//!
//! The differential oracle in bf-analyze gates this in the test suite: all
//! statically exact counters of an extrapolated launch must agree with the
//! fully simulated launch to 1e-9.

use crate::arch::GpuConfig;
use crate::cache::Cache;
use crate::counters::{RawEvents, RAW_EVENT_FIELDS};
use crate::sm::SmResult;
use crate::soa;
use crate::trace::{BlockTrace, WarpInstruction};

/// Minimum common repetition count before extrapolation is attempted.
/// Below this the probe simulations cost as much as just simulating.
pub const MIN_REPETITIONS: usize = 32;

/// Iterations simulated in detail for the middle probe.
pub const PROBE_ITERATIONS: usize = 6;

/// Relative tolerance for time-like delta agreement.
const TIME_DELTA_RTOL: f64 = 1e-9;

/// Minimal period of a stream (KMP prefix function). A stream whose length
/// is not a multiple of its smallest border-derived period is aperiodic and
/// reports its full length.
fn minimal_period(stream: &[WarpInstruction]) -> usize {
    let n = stream.len();
    if n == 0 {
        return 0;
    }
    let mut pi = vec![0usize; n];
    for i in 1..n {
        let mut j = pi[i - 1];
        while j > 0 && stream[i] != stream[j] {
            j = pi[j - 1];
        }
        if stream[i] == stream[j] {
            j += 1;
        }
        pi[i] = j;
    }
    let p = n - pi[n - 1];
    if n.is_multiple_of(p) {
        p
    } else {
        n
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// The common repetition count of a resident set: the gcd over all
/// non-empty warp streams of each stream's repetition count. Returns 0 when
/// every stream is empty.
pub fn common_repetitions(blocks: &[BlockTrace]) -> usize {
    let mut common: Option<usize> = None;
    for b in blocks {
        for stream in &b.warps {
            if stream.is_empty() {
                continue;
            }
            let reps = stream.len() / minimal_period(stream);
            common = Some(match common {
                None => reps,
                Some(g) => gcd(g, reps),
            });
            if common == Some(1) {
                return 1;
            }
        }
    }
    common.unwrap_or(0)
}

/// Truncates every warp stream to `k` of its `r_total` iteration units.
/// Barrier counts stay matched across each block's warps because every
/// unit carries `total_barriers / r_total` barriers (all warps of a block
/// have equal totals, enforced by `BlockTrace::validate`).
fn truncated(blocks: &[BlockTrace], r_total: usize, k: usize) -> Vec<BlockTrace> {
    blocks
        .iter()
        .map(|b| BlockTrace {
            warps: b
                .warps
                .iter()
                .map(|stream| {
                    let unit = stream.len() / r_total;
                    stream[..unit * k].to_vec()
                })
                .collect(),
        })
        .collect()
}

/// Flat view of an [`SmResult`]: `[cycles, dram_bytes, events...]`.
fn flatten(r: &SmResult) -> [f64; RAW_EVENT_FIELDS + 2] {
    let mut out = [0.0; RAW_EVENT_FIELDS + 2];
    out[0] = r.cycles;
    out[1] = r.dram_bytes;
    out[2..].copy_from_slice(&r.events.as_array());
    out
}

/// Whether flat-index `i` holds a time-like quantity (accumulated f64
/// arithmetic, compared with a relative tolerance) rather than an exact
/// integer count. Flat layout: 0 = cycles, 1 = dram_bytes, then the
/// `RawEvents` fields in declaration order.
fn is_time_like(i: usize) -> bool {
    const ELAPSED_CYCLES: usize = 2;
    const ACTIVE_WARP_CYCLES: usize = 2 + 23;
    const ACTIVE_CYCLES: usize = 2 + 24;
    const LDST_BUSY_CYCLES: usize = 2 + 25;
    const ISSUE_SLOTS: usize = 2 + 26;
    const TIME_SECONDS: usize = 2 + 29;
    matches!(
        i,
        0 | ELAPSED_CYCLES
            | ACTIVE_WARP_CYCLES
            | ACTIVE_CYCLES
            | LDST_BUSY_CYCLES
            | ISSUE_SLOTS
            | TIME_SECONDS
    )
}

/// Attempts steady-state extrapolation of a resident set. Returns `None`
/// when the set is not sufficiently periodic or the probe deltas have not
/// stabilised — the caller then falls back to full simulation.
/// `fresh_caches` must mint the same cold cache state a full launch
/// simulation starts from.
pub fn try_extrapolate(
    gpu: &GpuConfig,
    blocks: &[BlockTrace],
    fresh_caches: impl Fn() -> (Cache, Cache),
) -> Option<SmResult> {
    let r_total = common_repetitions(blocks);
    if r_total < MIN_REPETITIONS {
        return None;
    }
    let w = PROBE_ITERATIONS;
    let mut probes = Vec::with_capacity(3);
    for k in [w - 1, w, w + 1] {
        let t = truncated(blocks, r_total, k);
        let (mut l1, mut l2) = fresh_caches();
        // A truncation that fails to simulate (it cannot, structurally,
        // but stay corruption-tolerant) falls back to the full path.
        probes.push(soa::simulate_resident_set(gpu, &t, &mut l1, &mut l2).ok()?);
    }
    let (a1, a2, a3) = (
        flatten(&probes[0]),
        flatten(&probes[1]),
        flatten(&probes[2]),
    );

    // Guard: consecutive deltas must agree before the tail is trusted to
    // the linear model.
    for i in 0..a1.len() {
        let d12 = a2[i] - a1[i];
        let d23 = a3[i] - a2[i];
        let stable = if is_time_like(i) {
            (d12 - d23).abs() <= TIME_DELTA_RTOL * d12.abs().max(d23.abs()).max(1e-12)
        } else {
            d12 == d23
        };
        if !stable {
            return None;
        }
    }

    let rem = (r_total - (w + 1)) as f64;
    let mut out = [0.0; RAW_EVENT_FIELDS + 2];
    for i in 0..out.len() {
        out[i] = a3[i] + (a3[i] - a2[i]) * rem;
    }
    let cycles = out[0].max(1.0);
    let mut events = RawEvents::from_array(out[2..].try_into().unwrap());
    // Rebuild the derived cycle fields exactly as the execute loop does.
    events.elapsed_cycles = cycles;
    events.active_cycles = cycles;
    events.issue_slots = cycles * gpu.warp_schedulers as f64;
    events.time_seconds = cycles / (gpu.clock_ghz * 1e9);
    bf_trace::counter!("sim.loop_extrapolated");
    Some(SmResult {
        cycles,
        events,
        dram_bytes: out[1],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::FULL_MASK;

    fn repeat_unit(unit: &[WarpInstruction], reps: usize) -> Vec<WarpInstruction> {
        let mut v = Vec::with_capacity(unit.len() * reps);
        for _ in 0..reps {
            v.extend_from_slice(unit);
        }
        v
    }

    fn alu(count: u32) -> WarpInstruction {
        WarpInstruction::Alu {
            count,
            mask: FULL_MASK,
        }
    }

    #[test]
    fn minimal_period_detects_repeats() {
        let unit = vec![alu(3), WarpInstruction::Barrier];
        let stream = repeat_unit(&unit, 10);
        assert_eq!(minimal_period(&stream), 2);
        assert_eq!(minimal_period(&[alu(1), alu(2), alu(1)]), 3);
        assert_eq!(minimal_period(&[]), 0);
    }

    #[test]
    fn common_repetitions_takes_gcd_across_warps() {
        let mut b = BlockTrace::with_warps(2);
        b.warps[0] = repeat_unit(&[alu(1)], 64);
        b.warps[1] = repeat_unit(&[alu(2), alu(3)], 32); // 32 reps of a 2-op unit
        assert_eq!(common_repetitions(&[b]), 32);
    }

    #[test]
    fn aperiodic_stream_blocks_extrapolation() {
        let mut b = BlockTrace::with_warps(2);
        b.warps[0] = repeat_unit(&[alu(1)], 64);
        b.warps[1] = vec![alu(1), alu(2)]; // aperiodic pair: reps = 1
        assert_eq!(common_repetitions(&[b]), 1);
    }

    #[test]
    fn truncation_preserves_barrier_balance() {
        let unit0 = vec![alu(1), WarpInstruction::Barrier];
        let unit1 = vec![alu(2), alu(4), WarpInstruction::Barrier];
        let mut b = BlockTrace::with_warps(2);
        b.warps[0] = repeat_unit(&unit0, 40);
        b.warps[1] = repeat_unit(&unit1, 40);
        let r = common_repetitions(std::slice::from_ref(&b));
        assert_eq!(r, 40);
        for k in [5, 6, 7] {
            let t = truncated(std::slice::from_ref(&b), r, k);
            assert!(t[0].validate().is_ok());
            assert_eq!(t[0].warps[0].len(), 2 * k);
            assert_eq!(t[0].warps[1].len(), 3 * k);
        }
    }

    #[test]
    fn steady_alu_loop_extrapolates_exactly() {
        let g = GpuConfig::gtx580();
        let reps = 200;
        let mut b = BlockTrace::with_warps(4);
        for stream in &mut b.warps {
            *stream = repeat_unit(&[alu(5)], reps);
        }
        let caches = || {
            (
                Cache::new(g.l1_size, g.l1_line, g.l1_assoc),
                Cache::new(g.l2_size / g.num_sms, g.l2_line.max(32), g.l2_assoc),
            )
        };
        let extrapolated =
            try_extrapolate(&g, std::slice::from_ref(&b), caches).expect("should extrapolate");
        let (mut l1, mut l2) = caches();
        let full =
            soa::simulate_resident_set(&g, std::slice::from_ref(&b), &mut l1, &mut l2).unwrap();
        // Statically exact counters are exactly right.
        assert_eq!(extrapolated.events.inst_executed, full.events.inst_executed);
        assert_eq!(
            extrapolated.events.thread_inst_executed,
            full.events.thread_inst_executed
        );
        // Makespan agrees tightly for a perfectly regular loop.
        let rel = (extrapolated.cycles - full.cycles).abs() / full.cycles;
        assert!(rel < 1e-6, "cycles off by {rel}");
    }

    #[test]
    fn unstable_deltas_fall_back() {
        // A stream periodic in *instructions* but whose memory footprint
        // has not reached cache steady state within the probe window would
        // be rejected; emulate instability cheaply with too few reps.
        let mut b = BlockTrace::with_warps(1);
        b.warps[0] = repeat_unit(&[alu(1)], MIN_REPETITIONS - 1);
        let g = GpuConfig::gtx580();
        let caches = || {
            (
                Cache::new(g.l1_size, g.l1_line, g.l1_assoc),
                Cache::new(g.l2_size / g.num_sms, g.l2_line.max(32), g.l2_assoc),
            )
        };
        assert!(try_extrapolate(&g, std::slice::from_ref(&b), caches).is_none());
    }
}
