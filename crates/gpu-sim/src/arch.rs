//! GPU architecture descriptors.
//!
//! Two generations are modelled, matching the paper's experimental setup:
//! Fermi (GTX480/GTX580, compute capability 2.0) and Kepler (Tesla K20m,
//! CC 3.5). The fields of [`GpuConfig`] are a superset of the paper's Table 2
//! machine metrics (`wsched`, `freq`, `smp`, `rco`, `mbw`, registers, L2
//! size), which [`GpuConfig::machine_metrics`] exposes verbatim for the
//! hardware-scaling experiments.

use serde::{Deserialize, Serialize};

/// GPU micro-architecture generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuArchitecture {
    /// Compute capability 2.x (GTX480/GTX580 era). Global loads are cached
    /// in L1 (128-byte lines).
    Fermi,
    /// Compute capability 3.x (K20m era). Global loads bypass L1 and are
    /// serviced in 32-byte sectors from L2.
    Kepler,
}

/// A machine metric row of the paper's Table 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineMetric {
    /// Short metric name (`wsched`, `freq`, ...), as used in the paper.
    pub name: &'static str,
    /// Human-readable meaning.
    pub meaning: &'static str,
    /// Value on this GPU.
    pub value: f64,
}

/// Full configuration of a simulated GPU.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Marketing name, e.g. "GTX580".
    pub name: String,
    /// Architecture generation.
    pub arch: GpuArchitecture,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// CUDA cores per SM (`rco` in Table 2).
    pub cores_per_sm: usize,
    /// Warp schedulers per SM (`wsched`).
    pub warp_schedulers: usize,
    /// Core clock in GHz (`freq`).
    pub clock_ghz: f64,
    /// Peak DRAM bandwidth in GB/s (`mbw`).
    pub mem_bandwidth_gbps: f64,
    /// Warp width in threads (32 on all NVIDIA parts).
    pub warp_size: usize,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: usize,
    /// Maximum resident thread blocks per SM.
    pub max_blocks_per_sm: usize,
    /// Maximum threads per block.
    pub max_threads_per_block: usize,
    /// 32-bit registers per SM.
    pub registers_per_sm: usize,
    /// Maximum registers addressable per thread (Table 2's register row).
    pub max_registers_per_thread: usize,
    /// Shared memory per SM in bytes.
    pub shared_mem_per_sm: usize,
    /// Number of shared-memory banks.
    pub shared_banks: usize,
    /// Shared-memory bank width in bytes.
    pub bank_width: usize,
    /// L1 data cache size in bytes (per SM).
    pub l1_size: usize,
    /// L1 line size in bytes.
    pub l1_line: usize,
    /// L1 associativity.
    pub l1_assoc: usize,
    /// Whether global loads are cached in L1 (true on Fermi, false on
    /// Kepler where L1 is reserved for local/register spills).
    pub l1_caches_globals: bool,
    /// Total L2 size in bytes (`l2c` in Table 2, there reported in KB).
    pub l2_size: usize,
    /// L2 line size in bytes.
    pub l2_line: usize,
    /// L2 associativity.
    pub l2_assoc: usize,
    /// Arithmetic (ALU) dependent-issue latency in cycles.
    pub alu_latency: u64,
    /// Special-function-unit latency in cycles.
    pub sfu_latency: u64,
    /// Shared-memory access latency in cycles.
    pub smem_latency: u64,
    /// L1 hit latency in cycles.
    pub l1_latency: u64,
    /// L2 hit latency in cycles.
    pub l2_latency: u64,
    /// DRAM access latency in cycles.
    pub dram_latency: u64,
    /// Warp-instructions per cycle the ALU pipeline sustains per SM
    /// (= cores_per_sm / warp_size, precomputed for clarity).
    pub alu_throughput: f64,
    /// Memory (LDST) instructions issued per cycle per SM.
    pub ldst_units: f64,
    /// SFU instructions per cycle per SM.
    pub sfu_throughput: f64,
}

impl GpuConfig {
    /// The GTX580 (Fermi GF110) — the paper's training GPU.
    pub fn gtx580() -> GpuConfig {
        GpuConfig {
            name: "GTX580".into(),
            arch: GpuArchitecture::Fermi,
            num_sms: 16,
            cores_per_sm: 32,
            warp_schedulers: 2,
            clock_ghz: 1.544,
            mem_bandwidth_gbps: 192.4,
            warp_size: 32,
            max_warps_per_sm: 48,
            max_blocks_per_sm: 8,
            max_threads_per_block: 1024,
            registers_per_sm: 32768,
            max_registers_per_thread: 63,
            shared_mem_per_sm: 48 * 1024,
            shared_banks: 32,
            bank_width: 4,
            l1_size: 16 * 1024,
            l1_line: 128,
            l1_assoc: 4,
            l1_caches_globals: true,
            l2_size: 768 * 1024,
            // The L2 is modelled sectored at DRAM-transaction granularity
            // (32B) so miss traffic equals DRAM traffic exactly.
            l2_line: 32,
            l2_assoc: 16,
            alu_latency: 18,
            sfu_latency: 30,
            smem_latency: 26,
            l1_latency: 40,
            l2_latency: 180,
            dram_latency: 440,
            alu_throughput: 1.0,
            ldst_units: 0.5,
            sfu_throughput: 0.125,
        }
    }

    /// The GTX480 (Fermi GF100) — the card in the paper's Table 2.
    pub fn gtx480() -> GpuConfig {
        GpuConfig {
            name: "GTX480".into(),
            num_sms: 15,
            clock_ghz: 1.4,
            mem_bandwidth_gbps: 177.4,
            ..GpuConfig::gtx580()
        }
    }

    /// The Tesla K20m (Kepler GK110) — the paper's hardware-scaling target.
    pub fn k20m() -> GpuConfig {
        GpuConfig {
            name: "K20m".into(),
            arch: GpuArchitecture::Kepler,
            num_sms: 13,
            cores_per_sm: 192,
            warp_schedulers: 4,
            clock_ghz: 0.71,
            mem_bandwidth_gbps: 208.0,
            warp_size: 32,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 16,
            max_threads_per_block: 1024,
            registers_per_sm: 65536,
            max_registers_per_thread: 255,
            shared_mem_per_sm: 48 * 1024,
            shared_banks: 32,
            bank_width: 4,
            l1_size: 16 * 1024,
            l1_line: 128,
            l1_assoc: 4,
            l1_caches_globals: false,
            l2_size: 1280 * 1024,
            l2_line: 32,
            l2_assoc: 16,
            alu_latency: 10,
            sfu_latency: 20,
            smem_latency: 24,
            l1_latency: 35,
            l2_latency: 200,
            dram_latency: 460,
            alu_throughput: 4.0,
            ldst_units: 1.0,
            sfu_throughput: 1.0,
        }
    }

    /// The GTX680 (Kepler GK104) — a second Kepler part with the *same*
    /// architecture as the K20m but different resource ratios (fewer SMX,
    /// higher clock, smaller L2), for "sufficiently similar hardware"
    /// scaling experiments within one generation (§6.2's easy case).
    pub fn gtx680() -> GpuConfig {
        GpuConfig {
            name: "GTX680".into(),
            num_sms: 8,
            clock_ghz: 1.006,
            mem_bandwidth_gbps: 192.2,
            l2_size: 512 * 1024,
            ..GpuConfig::k20m()
        }
    }

    /// All built-in presets.
    pub fn presets() -> Vec<GpuConfig> {
        vec![
            GpuConfig::gtx480(),
            GpuConfig::gtx580(),
            GpuConfig::gtx680(),
            GpuConfig::k20m(),
        ]
    }

    /// Looks up a preset by (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<GpuConfig> {
        GpuConfig::presets()
            .into_iter()
            .find(|g| g.name.eq_ignore_ascii_case(name))
    }

    /// Peak DRAM bandwidth in bytes per core-clock cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        // GB/s / (Gcycles/s) = bytes/cycle.
        self.mem_bandwidth_gbps / self.clock_ghz
    }

    /// A 64-bit digest of every simulation-relevant field, used to key the
    /// launch-memoization cache ([`crate::memo`]): two configs with equal
    /// fingerprints simulate any launch identically. Every field of the
    /// struct participates (floats via their IEEE bit patterns), so editing a
    /// preset or constructing a custom config can never alias a cached entry.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.name.hash(&mut h);
        self.arch.hash(&mut h);
        self.num_sms.hash(&mut h);
        self.cores_per_sm.hash(&mut h);
        self.warp_schedulers.hash(&mut h);
        self.clock_ghz.to_bits().hash(&mut h);
        self.mem_bandwidth_gbps.to_bits().hash(&mut h);
        self.warp_size.hash(&mut h);
        self.max_warps_per_sm.hash(&mut h);
        self.max_blocks_per_sm.hash(&mut h);
        self.max_threads_per_block.hash(&mut h);
        self.registers_per_sm.hash(&mut h);
        self.max_registers_per_thread.hash(&mut h);
        self.shared_mem_per_sm.hash(&mut h);
        self.shared_banks.hash(&mut h);
        self.bank_width.hash(&mut h);
        self.l1_size.hash(&mut h);
        self.l1_line.hash(&mut h);
        self.l1_assoc.hash(&mut h);
        self.l1_caches_globals.hash(&mut h);
        self.l2_size.hash(&mut h);
        self.l2_line.hash(&mut h);
        self.l2_assoc.hash(&mut h);
        self.alu_latency.hash(&mut h);
        self.sfu_latency.hash(&mut h);
        self.smem_latency.hash(&mut h);
        self.l1_latency.hash(&mut h);
        self.l2_latency.hash(&mut h);
        self.dram_latency.hash(&mut h);
        self.alu_throughput.to_bits().hash(&mut h);
        self.ldst_units.to_bits().hash(&mut h);
        self.sfu_throughput.to_bits().hash(&mut h);
        h.finish()
    }

    /// The machine-characteristic rows of the paper's Table 2 for this GPU,
    /// injected as extra predictors in the hardware-scaling experiments.
    pub fn machine_metrics(&self) -> Vec<MachineMetric> {
        vec![
            MachineMetric {
                name: "wsched",
                meaning: "number of warp schedulers",
                value: self.warp_schedulers as f64,
            },
            MachineMetric {
                name: "freq",
                meaning: "clock rate (GHz)",
                value: self.clock_ghz,
            },
            MachineMetric {
                name: "smp",
                meaning: "number of MPs",
                value: self.num_sms as f64,
            },
            MachineMetric {
                name: "rco",
                meaning: "cores per MP",
                value: self.cores_per_sm as f64,
            },
            MachineMetric {
                name: "mbw",
                meaning: "memory bandwidth (GB/s)",
                value: self.mem_bandwidth_gbps,
            },
            MachineMetric {
                name: "l1c",
                meaning: "registers",
                value: self.max_registers_per_thread as f64,
            },
            MachineMetric {
                name: "l2c",
                meaning: "L2 size (KB)",
                value: (self.l2_size / 1024) as f64,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values_match_paper_gtx480() {
        let g = GpuConfig::gtx480();
        let m: std::collections::HashMap<_, _> = g
            .machine_metrics()
            .into_iter()
            .map(|m| (m.name, m.value))
            .collect();
        assert_eq!(m["wsched"], 2.0);
        assert!((m["freq"] - 1.4).abs() < 1e-12);
        assert_eq!(m["smp"], 15.0);
        assert_eq!(m["rco"], 32.0);
        assert!((m["mbw"] - 177.4).abs() < 1e-12);
        assert_eq!(m["l1c"], 63.0);
        assert_eq!(m["l2c"], 768.0);
    }

    #[test]
    fn table2_values_match_paper_k20m() {
        let g = GpuConfig::k20m();
        let m: std::collections::HashMap<_, _> = g
            .machine_metrics()
            .into_iter()
            .map(|m| (m.name, m.value))
            .collect();
        assert_eq!(m["wsched"], 4.0);
        assert!((m["freq"] - 0.71).abs() < 1e-12);
        assert_eq!(m["smp"], 13.0);
        assert_eq!(m["rco"], 192.0);
        assert!((m["mbw"] - 208.0).abs() < 1e-12);
        assert_eq!(m["l1c"], 255.0);
        assert_eq!(m["l2c"], 1280.0);
    }

    #[test]
    fn fermi_caches_globals_kepler_does_not() {
        assert!(GpuConfig::gtx580().l1_caches_globals);
        assert!(!GpuConfig::k20m().l1_caches_globals);
        assert!(!GpuConfig::gtx680().l1_caches_globals);
    }

    #[test]
    fn by_name_finds_all_presets_case_insensitively() {
        for g in GpuConfig::presets() {
            let found = GpuConfig::by_name(&g.name.to_lowercase()).unwrap();
            assert_eq!(found.name, g.name);
        }
        assert!(GpuConfig::by_name("rtx9090").is_none());
    }

    #[test]
    fn gtx680_is_kepler_with_smaller_l2_than_k20m() {
        let g = GpuConfig::gtx680();
        assert_eq!(g.arch, GpuArchitecture::Kepler);
        assert!(g.l2_size < GpuConfig::k20m().l2_size);
        assert!(g.clock_ghz > GpuConfig::k20m().clock_ghz);
    }

    #[test]
    fn kepler_has_bigger_l2() {
        assert!(GpuConfig::k20m().l2_size > GpuConfig::gtx580().l2_size);
    }

    #[test]
    fn bytes_per_cycle_is_bandwidth_over_clock() {
        let g = GpuConfig::gtx580();
        assert!((g.bytes_per_cycle() - 192.4 / 1.544).abs() < 1e-9);
    }

    #[test]
    fn alu_throughput_consistent_with_core_counts() {
        let fermi = GpuConfig::gtx580();
        assert!((fermi.alu_throughput - fermi.cores_per_sm as f64 / 32.0).abs() < 1e-12);
        // Kepler: 192 cores / 32 lanes = 6, but only 4 schedulers can issue,
        // so effective ALU issue throughput is capped at 4.
        let kepler = GpuConfig::k20m();
        assert!(kepler.alu_throughput <= kepler.cores_per_sm as f64 / 32.0);
    }
}
