//! GPU architecture descriptors.
//!
//! Five generations are modelled. Fermi (GTX480/GTX580, compute capability
//! 2.0) and Kepler (Tesla K20m, CC 3.5) match the paper's experimental
//! setup; Maxwell, Pascal and Volta extend the zoo for the
//! hardware-scaling scope experiments (`blackforest hwscale`). The fields
//! of [`GpuConfig`] are a superset of the paper's Table 2 machine metrics
//! (`wsched`, `freq`, `smp`, `rco`, `mbw`, registers, L2 size), which
//! [`GpuConfig::machine_metrics`] exposes verbatim for the
//! hardware-scaling experiments.
//!
//! Three global-memory paths exist, selected by `l1_caches_globals` and
//! `l1_sectored`:
//!
//! * Fermi: globals cached in L1 at full 128-byte lines; an L1 miss
//!   refills the whole line from L2 (4 × 32B sectors).
//! * Kepler/Maxwell: globals bypass L1 and are serviced in 32-byte
//!   sectors straight from L2.
//! * Pascal/Volta: globals cached in L1 again, but *sectored* — the L1
//!   tags 32-byte sectors inside its 128-byte lines, so both the
//!   coalescing granularity and the per-miss L2 refill are one sector.

use serde::{Deserialize, Serialize};

/// GPU micro-architecture generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuArchitecture {
    /// Compute capability 2.x (GTX480/GTX580 era). Global loads are cached
    /// in L1 (128-byte lines).
    Fermi,
    /// Compute capability 3.x (K20m era). Global loads bypass L1 and are
    /// serviced in 32-byte sectors from L2.
    Kepler,
    /// Compute capability 5.x (GTX750Ti/GTX980 era). Unified L1/texture
    /// cache that still bypasses global loads; dual-dispatch schedulers.
    Maxwell,
    /// Compute capability 6.x (GTX1080/P100 era). Global loads return to
    /// L1, now sector-tagged at 32 bytes.
    Pascal,
    /// Compute capability 7.0 (TitanV/V100 era). Unified L1/shared
    /// storage, sectored L1, single-dispatch schedulers again.
    Volta,
}

impl GpuArchitecture {
    /// Every modelled generation, oldest first.
    pub fn all() -> [GpuArchitecture; 5] {
        [
            GpuArchitecture::Fermi,
            GpuArchitecture::Kepler,
            GpuArchitecture::Maxwell,
            GpuArchitecture::Pascal,
            GpuArchitecture::Volta,
        ]
    }

    /// Stable lowercase name (matches the serde representation, lowered).
    pub fn name(self) -> &'static str {
        match self {
            GpuArchitecture::Fermi => "fermi",
            GpuArchitecture::Kepler => "kepler",
            GpuArchitecture::Maxwell => "maxwell",
            GpuArchitecture::Pascal => "pascal",
            GpuArchitecture::Volta => "volta",
        }
    }

    /// Release-order ordinal (Fermi = 0 … Volta = 4). The hardware-scaling
    /// "per-generation" scope pools GPUs within ordinal distance 1.
    pub fn ordinal(self) -> usize {
        match self {
            GpuArchitecture::Fermi => 0,
            GpuArchitecture::Kepler => 1,
            GpuArchitecture::Maxwell => 2,
            GpuArchitecture::Pascal => 3,
            GpuArchitecture::Volta => 4,
        }
    }

    /// This architecture's bit in a counter-availability mask
    /// (see [`crate::counters::CounterInfo::available`]).
    pub fn bit(self) -> u8 {
        1 << self.ordinal()
    }

    /// Parses a (case-insensitive) architecture name.
    pub fn by_name(name: &str) -> Option<GpuArchitecture> {
        GpuArchitecture::all()
            .into_iter()
            .find(|a| a.name().eq_ignore_ascii_case(name))
    }
}

/// A machine metric row of the paper's Table 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineMetric {
    /// Short metric name (`wsched`, `freq`, ...), as used in the paper.
    pub name: &'static str,
    /// Human-readable meaning.
    pub meaning: &'static str,
    /// Value on this GPU.
    pub value: f64,
}

/// Full configuration of a simulated GPU.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Marketing name, e.g. "GTX580".
    pub name: String,
    /// Architecture generation.
    pub arch: GpuArchitecture,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// CUDA cores per SM (`rco` in Table 2).
    pub cores_per_sm: usize,
    /// Warp schedulers per SM (`wsched`).
    pub warp_schedulers: usize,
    /// Instructions each scheduler can dispatch per cycle (1 on Fermi and
    /// Volta, 2 on the dual-dispatch Kepler-through-Pascal schedulers; the
    /// Fermi/Kepler presets keep 1 to preserve the paper's calibration).
    pub dispatch_per_scheduler: usize,
    /// Core clock in GHz (`freq`).
    pub clock_ghz: f64,
    /// Peak DRAM bandwidth in GB/s (`mbw`).
    pub mem_bandwidth_gbps: f64,
    /// Warp width in threads (32 on all NVIDIA parts).
    pub warp_size: usize,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: usize,
    /// Maximum resident thread blocks per SM.
    pub max_blocks_per_sm: usize,
    /// Maximum threads per block.
    pub max_threads_per_block: usize,
    /// 32-bit registers per SM.
    pub registers_per_sm: usize,
    /// Maximum registers addressable per thread (Table 2's register row).
    pub max_registers_per_thread: usize,
    /// Shared memory per SM in bytes.
    pub shared_mem_per_sm: usize,
    /// Number of shared-memory banks.
    pub shared_banks: usize,
    /// Shared-memory bank width in bytes.
    pub bank_width: usize,
    /// L1 data cache size in bytes (per SM).
    pub l1_size: usize,
    /// L1 line size in bytes.
    pub l1_line: usize,
    /// L1 associativity.
    pub l1_assoc: usize,
    /// Whether global loads are cached in L1 (true on Fermi and
    /// Pascal/Volta, false on Kepler/Maxwell where L1 is reserved for
    /// local/register spills).
    pub l1_caches_globals: bool,
    /// Whether the L1 tags 32-byte sectors instead of whole lines
    /// (Pascal/Volta). Only meaningful when `l1_caches_globals` is set:
    /// a sectored L1 coalesces and refills at 32 bytes.
    pub l1_sectored: bool,
    /// Total L2 size in bytes (`l2c` in Table 2, there reported in KB).
    pub l2_size: usize,
    /// L2 line size in bytes.
    pub l2_line: usize,
    /// L2 associativity.
    pub l2_assoc: usize,
    /// Arithmetic (ALU) dependent-issue latency in cycles.
    pub alu_latency: u64,
    /// Special-function-unit latency in cycles.
    pub sfu_latency: u64,
    /// Shared-memory access latency in cycles.
    pub smem_latency: u64,
    /// L1 hit latency in cycles.
    pub l1_latency: u64,
    /// L2 hit latency in cycles.
    pub l2_latency: u64,
    /// DRAM access latency in cycles.
    pub dram_latency: u64,
    /// Warp-instructions per cycle the ALU pipeline sustains per SM
    /// (= cores_per_sm / warp_size, precomputed for clarity).
    pub alu_throughput: f64,
    /// Memory (LDST) instructions issued per cycle per SM.
    pub ldst_units: f64,
    /// SFU instructions per cycle per SM.
    pub sfu_throughput: f64,
}

impl GpuConfig {
    /// The GTX580 (Fermi GF110) — the paper's training GPU.
    pub fn gtx580() -> GpuConfig {
        GpuConfig {
            name: "GTX580".into(),
            arch: GpuArchitecture::Fermi,
            num_sms: 16,
            cores_per_sm: 32,
            warp_schedulers: 2,
            dispatch_per_scheduler: 1,
            clock_ghz: 1.544,
            mem_bandwidth_gbps: 192.4,
            warp_size: 32,
            max_warps_per_sm: 48,
            max_blocks_per_sm: 8,
            max_threads_per_block: 1024,
            registers_per_sm: 32768,
            max_registers_per_thread: 63,
            shared_mem_per_sm: 48 * 1024,
            shared_banks: 32,
            bank_width: 4,
            l1_size: 16 * 1024,
            l1_line: 128,
            l1_assoc: 4,
            l1_caches_globals: true,
            l1_sectored: false,
            l2_size: 768 * 1024,
            // The L2 is modelled sectored at DRAM-transaction granularity
            // (32B) so miss traffic equals DRAM traffic exactly.
            l2_line: 32,
            l2_assoc: 16,
            alu_latency: 18,
            sfu_latency: 30,
            smem_latency: 26,
            l1_latency: 40,
            l2_latency: 180,
            dram_latency: 440,
            alu_throughput: 1.0,
            ldst_units: 0.5,
            sfu_throughput: 0.125,
        }
    }

    /// The GTX480 (Fermi GF100) — the card in the paper's Table 2.
    pub fn gtx480() -> GpuConfig {
        GpuConfig {
            name: "GTX480".into(),
            num_sms: 15,
            clock_ghz: 1.4,
            mem_bandwidth_gbps: 177.4,
            ..GpuConfig::gtx580()
        }
    }

    /// The Tesla K20m (Kepler GK110) — the paper's hardware-scaling target.
    pub fn k20m() -> GpuConfig {
        GpuConfig {
            name: "K20m".into(),
            arch: GpuArchitecture::Kepler,
            num_sms: 13,
            cores_per_sm: 192,
            warp_schedulers: 4,
            dispatch_per_scheduler: 1,
            clock_ghz: 0.71,
            mem_bandwidth_gbps: 208.0,
            warp_size: 32,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 16,
            max_threads_per_block: 1024,
            registers_per_sm: 65536,
            max_registers_per_thread: 255,
            shared_mem_per_sm: 48 * 1024,
            shared_banks: 32,
            bank_width: 4,
            l1_size: 16 * 1024,
            l1_line: 128,
            l1_assoc: 4,
            l1_caches_globals: false,
            l1_sectored: false,
            l2_size: 1280 * 1024,
            l2_line: 32,
            l2_assoc: 16,
            alu_latency: 10,
            sfu_latency: 20,
            smem_latency: 24,
            l1_latency: 35,
            l2_latency: 200,
            dram_latency: 460,
            alu_throughput: 4.0,
            ldst_units: 1.0,
            sfu_throughput: 1.0,
        }
    }

    /// The GTX680 (Kepler GK104) — a second Kepler part with the *same*
    /// architecture as the K20m but different resource ratios (fewer SMX,
    /// higher clock, smaller L2), for "sufficiently similar hardware"
    /// scaling experiments within one generation (§6.2's easy case).
    pub fn gtx680() -> GpuConfig {
        GpuConfig {
            name: "GTX680".into(),
            num_sms: 8,
            clock_ghz: 1.006,
            mem_bandwidth_gbps: 192.2,
            l2_size: 512 * 1024,
            ..GpuConfig::k20m()
        }
    }

    /// The GTX750Ti (Maxwell GM107) — the small first-generation Maxwell
    /// part. Like Kepler its L1 bypasses globals (32B sectors straight
    /// from a much larger L2), but the SMM is reorganised: 128 cores
    /// split over 4 dual-dispatch schedulers.
    pub fn gtx750ti() -> GpuConfig {
        GpuConfig {
            name: "GTX750Ti".into(),
            arch: GpuArchitecture::Maxwell,
            num_sms: 5,
            cores_per_sm: 128,
            warp_schedulers: 4,
            dispatch_per_scheduler: 2,
            clock_ghz: 1.020,
            mem_bandwidth_gbps: 86.4,
            warp_size: 32,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            registers_per_sm: 65536,
            max_registers_per_thread: 255,
            shared_mem_per_sm: 64 * 1024,
            shared_banks: 32,
            bank_width: 4,
            l1_size: 24 * 1024,
            l1_line: 128,
            l1_assoc: 4,
            l1_caches_globals: false,
            l1_sectored: false,
            l2_size: 2048 * 1024,
            l2_line: 32,
            l2_assoc: 16,
            alu_latency: 6,
            sfu_latency: 14,
            smem_latency: 23,
            l1_latency: 32,
            l2_latency: 194,
            dram_latency: 420,
            alu_throughput: 4.0,
            ldst_units: 1.0,
            sfu_throughput: 1.0,
        }
    }

    /// The GTX980 (Maxwell GM204) — big Maxwell: same SMM organisation as
    /// the GTX750Ti, scaled to 16 SMs and a 224 GB/s memory system.
    pub fn gtx980() -> GpuConfig {
        GpuConfig {
            name: "GTX980".into(),
            num_sms: 16,
            clock_ghz: 1.126,
            mem_bandwidth_gbps: 224.0,
            shared_mem_per_sm: 96 * 1024,
            ..GpuConfig::gtx750ti()
        }
    }

    /// The GTX1080 (Pascal GP104). Global loads are cached in L1 again,
    /// now sector-tagged at 32 bytes (`l1_sectored`), so coalescing and
    /// L2 refills both happen at sector granularity.
    pub fn gtx1080() -> GpuConfig {
        GpuConfig {
            name: "GTX1080".into(),
            arch: GpuArchitecture::Pascal,
            num_sms: 20,
            cores_per_sm: 128,
            warp_schedulers: 4,
            dispatch_per_scheduler: 2,
            clock_ghz: 1.607,
            mem_bandwidth_gbps: 320.0,
            warp_size: 32,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            registers_per_sm: 65536,
            max_registers_per_thread: 255,
            shared_mem_per_sm: 96 * 1024,
            shared_banks: 32,
            bank_width: 4,
            l1_size: 48 * 1024,
            l1_line: 128,
            l1_assoc: 4,
            l1_caches_globals: true,
            l1_sectored: true,
            l2_size: 2048 * 1024,
            l2_line: 32,
            l2_assoc: 16,
            alu_latency: 6,
            sfu_latency: 14,
            smem_latency: 24,
            l1_latency: 28,
            l2_latency: 216,
            dram_latency: 434,
            alu_throughput: 4.0,
            ldst_units: 1.0,
            sfu_throughput: 1.0,
        }
    }

    /// The Tesla P100 (Pascal GP100) — HBM2 Pascal: many narrow SMs
    /// (64 cores, 2 schedulers) in front of a 732 GB/s memory system.
    pub fn p100() -> GpuConfig {
        GpuConfig {
            name: "P100".into(),
            num_sms: 56,
            cores_per_sm: 64,
            warp_schedulers: 2,
            clock_ghz: 1.328,
            mem_bandwidth_gbps: 732.0,
            shared_mem_per_sm: 64 * 1024,
            l1_size: 24 * 1024,
            l2_size: 4096 * 1024,
            dram_latency: 400,
            alu_throughput: 2.0,
            ..GpuConfig::gtx1080()
        }
    }

    /// The Titan V (Volta GV100) — Volta returns to single-dispatch
    /// schedulers and unifies L1 with shared storage; the L1 stays
    /// sector-tagged.
    pub fn titanv() -> GpuConfig {
        GpuConfig {
            name: "TitanV".into(),
            arch: GpuArchitecture::Volta,
            num_sms: 80,
            cores_per_sm: 64,
            warp_schedulers: 4,
            dispatch_per_scheduler: 1,
            clock_ghz: 1.2,
            mem_bandwidth_gbps: 652.8,
            warp_size: 32,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            registers_per_sm: 65536,
            max_registers_per_thread: 255,
            shared_mem_per_sm: 96 * 1024,
            shared_banks: 32,
            bank_width: 4,
            l1_size: 32 * 1024,
            l1_line: 128,
            l1_assoc: 4,
            l1_caches_globals: true,
            l1_sectored: true,
            l2_size: 4608 * 1024,
            l2_line: 32,
            l2_assoc: 16,
            alu_latency: 4,
            sfu_latency: 12,
            smem_latency: 19,
            l1_latency: 28,
            l2_latency: 193,
            dram_latency: 400,
            alu_throughput: 2.0,
            ldst_units: 1.0,
            sfu_throughput: 0.5,
        }
    }

    /// The Tesla V100 (Volta GV100, HBM2) — same SM as the Titan V at a
    /// higher clock, in front of a 900 GB/s memory system and 6 MB L2.
    pub fn v100() -> GpuConfig {
        GpuConfig {
            name: "V100".into(),
            clock_ghz: 1.38,
            mem_bandwidth_gbps: 900.0,
            l2_size: 6144 * 1024,
            ..GpuConfig::titanv()
        }
    }

    /// All built-in presets — two parts per generation so every
    /// hardware-scaling scope (per-arch, per-generation, all-zoo) is
    /// populated for every target.
    pub fn presets() -> Vec<GpuConfig> {
        vec![
            GpuConfig::gtx480(),
            GpuConfig::gtx580(),
            GpuConfig::gtx680(),
            GpuConfig::k20m(),
            GpuConfig::gtx750ti(),
            GpuConfig::gtx980(),
            GpuConfig::gtx1080(),
            GpuConfig::p100(),
            GpuConfig::titanv(),
            GpuConfig::v100(),
        ]
    }

    /// One representative preset per generation, oldest first — the
    /// default zoo for cross-architecture sweeps where simulating every
    /// part would be redundant.
    pub fn arch_representatives() -> Vec<GpuConfig> {
        vec![
            GpuConfig::gtx580(),
            GpuConfig::k20m(),
            GpuConfig::gtx980(),
            GpuConfig::gtx1080(),
            GpuConfig::v100(),
        ]
    }

    /// Looks up a preset by (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<GpuConfig> {
        GpuConfig::presets()
            .into_iter()
            .find(|g| g.name.eq_ignore_ascii_case(name))
    }

    /// Peak DRAM bandwidth in bytes per core-clock cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        // GB/s / (Gcycles/s) = bytes/cycle.
        self.mem_bandwidth_gbps / self.clock_ghz
    }

    /// The granularity at which global loads coalesce and the L1 path is
    /// looked up: a whole L1 line on line-tagged Fermi, one 32-byte
    /// sector everywhere else (L1-bypassing Kepler/Maxwell and the
    /// sector-tagged Pascal/Volta L1s).
    pub fn load_segment_bytes(&self) -> u32 {
        if self.l1_caches_globals && !self.l1_sectored {
            self.l1_line as u32
        } else {
            32
        }
    }

    /// Warp instructions the SM front end can issue per cycle
    /// (schedulers × dispatch ports per scheduler).
    pub fn issue_width(&self) -> usize {
        self.warp_schedulers * self.dispatch_per_scheduler
    }

    /// Tag granularity of the L1 data cache: 32-byte sectors on the
    /// sector-tagged Pascal/Volta L1s, whole lines everywhere else. This
    /// is the line size the simulator's L1 tag store is built with.
    pub fn l1_tag_line(&self) -> usize {
        if self.l1_sectored {
            32
        } else {
            self.l1_line
        }
    }

    /// A 64-bit digest of every simulation-relevant field, used to key the
    /// launch-memoization cache ([`crate::memo`]): two configs with equal
    /// fingerprints simulate any launch identically. Every field of the
    /// struct participates (floats via their IEEE bit patterns), so editing a
    /// preset or constructing a custom config can never alias a cached entry.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.name.hash(&mut h);
        self.arch.hash(&mut h);
        self.num_sms.hash(&mut h);
        self.cores_per_sm.hash(&mut h);
        self.warp_schedulers.hash(&mut h);
        self.dispatch_per_scheduler.hash(&mut h);
        self.clock_ghz.to_bits().hash(&mut h);
        self.mem_bandwidth_gbps.to_bits().hash(&mut h);
        self.warp_size.hash(&mut h);
        self.max_warps_per_sm.hash(&mut h);
        self.max_blocks_per_sm.hash(&mut h);
        self.max_threads_per_block.hash(&mut h);
        self.registers_per_sm.hash(&mut h);
        self.max_registers_per_thread.hash(&mut h);
        self.shared_mem_per_sm.hash(&mut h);
        self.shared_banks.hash(&mut h);
        self.bank_width.hash(&mut h);
        self.l1_size.hash(&mut h);
        self.l1_line.hash(&mut h);
        self.l1_assoc.hash(&mut h);
        self.l1_caches_globals.hash(&mut h);
        self.l1_sectored.hash(&mut h);
        self.l2_size.hash(&mut h);
        self.l2_line.hash(&mut h);
        self.l2_assoc.hash(&mut h);
        self.alu_latency.hash(&mut h);
        self.sfu_latency.hash(&mut h);
        self.smem_latency.hash(&mut h);
        self.l1_latency.hash(&mut h);
        self.l2_latency.hash(&mut h);
        self.dram_latency.hash(&mut h);
        self.alu_throughput.to_bits().hash(&mut h);
        self.ldst_units.to_bits().hash(&mut h);
        self.sfu_throughput.to_bits().hash(&mut h);
        h.finish()
    }

    /// The machine-characteristic rows of the paper's Table 2 for this GPU,
    /// injected as extra predictors in the hardware-scaling experiments.
    pub fn machine_metrics(&self) -> Vec<MachineMetric> {
        vec![
            MachineMetric {
                name: "wsched",
                meaning: "number of warp schedulers",
                value: self.warp_schedulers as f64,
            },
            MachineMetric {
                name: "freq",
                meaning: "clock rate (GHz)",
                value: self.clock_ghz,
            },
            MachineMetric {
                name: "smp",
                meaning: "number of MPs",
                value: self.num_sms as f64,
            },
            MachineMetric {
                name: "rco",
                meaning: "cores per MP",
                value: self.cores_per_sm as f64,
            },
            MachineMetric {
                name: "mbw",
                meaning: "memory bandwidth (GB/s)",
                value: self.mem_bandwidth_gbps,
            },
            MachineMetric {
                name: "l1c",
                meaning: "registers",
                value: self.max_registers_per_thread as f64,
            },
            MachineMetric {
                name: "l2c",
                meaning: "L2 size (KB)",
                value: (self.l2_size / 1024) as f64,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values_match_paper_gtx480() {
        let g = GpuConfig::gtx480();
        let m: std::collections::HashMap<_, _> = g
            .machine_metrics()
            .into_iter()
            .map(|m| (m.name, m.value))
            .collect();
        assert_eq!(m["wsched"], 2.0);
        assert!((m["freq"] - 1.4).abs() < 1e-12);
        assert_eq!(m["smp"], 15.0);
        assert_eq!(m["rco"], 32.0);
        assert!((m["mbw"] - 177.4).abs() < 1e-12);
        assert_eq!(m["l1c"], 63.0);
        assert_eq!(m["l2c"], 768.0);
    }

    #[test]
    fn table2_values_match_paper_k20m() {
        let g = GpuConfig::k20m();
        let m: std::collections::HashMap<_, _> = g
            .machine_metrics()
            .into_iter()
            .map(|m| (m.name, m.value))
            .collect();
        assert_eq!(m["wsched"], 4.0);
        assert!((m["freq"] - 0.71).abs() < 1e-12);
        assert_eq!(m["smp"], 13.0);
        assert_eq!(m["rco"], 192.0);
        assert!((m["mbw"] - 208.0).abs() < 1e-12);
        assert_eq!(m["l1c"], 255.0);
        assert_eq!(m["l2c"], 1280.0);
    }

    #[test]
    fn fermi_caches_globals_kepler_does_not() {
        assert!(GpuConfig::gtx580().l1_caches_globals);
        assert!(!GpuConfig::k20m().l1_caches_globals);
        assert!(!GpuConfig::gtx680().l1_caches_globals);
    }

    #[test]
    fn memory_paths_per_generation() {
        // Fermi: line-tagged L1 → coalesce at the full 128B line.
        assert_eq!(GpuConfig::gtx580().load_segment_bytes(), 128);
        // Kepler/Maxwell: L1 bypass → 32B sectors from L2.
        assert_eq!(GpuConfig::k20m().load_segment_bytes(), 32);
        assert!(!GpuConfig::gtx980().l1_caches_globals);
        assert_eq!(GpuConfig::gtx980().load_segment_bytes(), 32);
        // Pascal/Volta: sector-tagged L1 → cached, but still 32B segments.
        for g in [GpuConfig::gtx1080(), GpuConfig::p100(), GpuConfig::v100()] {
            assert!(g.l1_caches_globals && g.l1_sectored, "{}", g.name);
            assert_eq!(g.load_segment_bytes(), 32, "{}", g.name);
        }
    }

    #[test]
    fn issue_width_reflects_dual_dispatch() {
        // The paper-era presets issue one instruction per scheduler.
        assert_eq!(GpuConfig::gtx580().issue_width(), 2);
        assert_eq!(GpuConfig::k20m().issue_width(), 4);
        // Maxwell/Pascal dual-dispatch; Volta drops back to single.
        assert_eq!(GpuConfig::gtx980().issue_width(), 8);
        assert_eq!(GpuConfig::gtx1080().issue_width(), 8);
        assert_eq!(GpuConfig::v100().issue_width(), 4);
    }

    #[test]
    fn by_name_finds_all_presets_case_insensitively() {
        for g in GpuConfig::presets() {
            let found = GpuConfig::by_name(&g.name.to_lowercase()).unwrap();
            assert_eq!(found.name, g.name);
        }
        assert!(GpuConfig::by_name("rtx9090").is_none());
    }

    #[test]
    fn gtx680_is_kepler_with_smaller_l2_than_k20m() {
        let g = GpuConfig::gtx680();
        assert_eq!(g.arch, GpuArchitecture::Kepler);
        assert!(g.l2_size < GpuConfig::k20m().l2_size);
        assert!(g.clock_ghz > GpuConfig::k20m().clock_ghz);
    }

    #[test]
    fn kepler_has_bigger_l2() {
        assert!(GpuConfig::k20m().l2_size > GpuConfig::gtx580().l2_size);
    }

    #[test]
    fn l2_grows_monotonically_across_generations() {
        let zoo = GpuConfig::arch_representatives();
        for pair in zoo.windows(2) {
            assert!(
                pair[0].l2_size <= pair[1].l2_size,
                "{} L2 ({}) shrank vs {} ({})",
                pair[1].name,
                pair[1].l2_size,
                pair[0].name,
                pair[0].l2_size
            );
        }
    }

    #[test]
    fn zoo_covers_all_five_architectures_twice() {
        let presets = GpuConfig::presets();
        for arch in GpuArchitecture::all() {
            let n = presets.iter().filter(|g| g.arch == arch).count();
            assert_eq!(n, 2, "{} parts found for {}", n, arch.name());
        }
        let reps = GpuConfig::arch_representatives();
        assert_eq!(reps.len(), 5);
        for (rep, arch) in reps.iter().zip(GpuArchitecture::all()) {
            assert_eq!(rep.arch, arch);
        }
    }

    #[test]
    fn arch_helpers_are_consistent() {
        let mut seen = 0u8;
        for (i, arch) in GpuArchitecture::all().into_iter().enumerate() {
            assert_eq!(arch.ordinal(), i);
            assert_eq!(arch.bit(), 1 << i);
            assert_eq!(GpuArchitecture::by_name(arch.name()), Some(arch));
            assert_eq!(
                GpuArchitecture::by_name(&arch.name().to_uppercase()),
                Some(arch)
            );
            seen |= arch.bit();
        }
        assert_eq!(seen, 0b11111);
        assert!(GpuArchitecture::by_name("turing").is_none());
    }

    #[test]
    fn fingerprints_are_unique_across_the_zoo() {
        let presets = GpuConfig::presets();
        for (i, a) in presets.iter().enumerate() {
            for b in presets.iter().skip(i + 1) {
                assert_ne!(
                    a.fingerprint(),
                    b.fingerprint(),
                    "{} and {} collide",
                    a.name,
                    b.name
                );
            }
        }
    }

    #[test]
    fn bytes_per_cycle_is_bandwidth_over_clock() {
        let g = GpuConfig::gtx580();
        assert!((g.bytes_per_cycle() - 192.4 / 1.544).abs() < 1e-9);
    }

    #[test]
    fn alu_throughput_consistent_with_core_counts() {
        let fermi = GpuConfig::gtx580();
        assert!((fermi.alu_throughput - fermi.cores_per_sm as f64 / 32.0).abs() < 1e-12);
        // Kepler: 192 cores / 32 lanes = 6, but only 4 schedulers can issue,
        // so effective ALU issue throughput is capped at 4.
        let kepler = GpuConfig::k20m();
        assert!(kepler.alu_throughput <= kepler.cores_per_sm as f64 / 32.0);
        // Across the zoo the ALU pipe never out-issues lanes or the front
        // end: throughput ≤ min(cores/32, issue width).
        for g in GpuConfig::presets() {
            let lanes = g.cores_per_sm as f64 / g.warp_size as f64;
            assert!(g.alu_throughput <= lanes + 1e-12, "{}", g.name);
            assert!(
                g.alu_throughput <= g.issue_width() as f64 + 1e-12,
                "{}",
                g.name
            );
        }
    }
}
