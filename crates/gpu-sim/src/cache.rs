//! Set-associative cache model with LRU replacement.
//!
//! Used for both the per-SM L1 (write-evict: stores bypass and invalidate,
//! matching Fermi's write-through-to-L2 policy for globals) and the shared
//! L2 slice. The model is a plain tag store — no data is held, because the
//! simulator only needs hit/miss streams for the counter and latency models.

use serde::{Deserialize, Serialize};

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Access {
    /// Tag present.
    Hit,
    /// Tag absent; line (re)filled.
    Miss,
}

/// A set-associative LRU tag store.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<CacheSet>,
    line: u64,
    set_shift: u32,
    set_mask: u64,
    hits: u64,
    misses: u64,
}

#[derive(Debug, Clone)]
struct CacheSet {
    /// Tags ordered most-recently-used first.
    tags: Vec<u64>,
    ways: usize,
}

impl Cache {
    /// Builds a cache of `size` bytes with `line`-byte lines and `assoc`
    /// ways. Size is rounded down to a power-of-two set count (at least 1).
    pub fn new(size: usize, line: usize, assoc: usize) -> Cache {
        assert!(line.is_power_of_two(), "line size must be a power of two");
        assert!(assoc >= 1, "need at least one way");
        let num_lines = (size / line).max(1);
        // Round the set count *down* to a power of two so indexing is a mask.
        let raw_sets = (num_lines / assoc).max(1);
        let num_sets = 1usize << (usize::BITS - 1 - raw_sets.leading_zeros());
        Cache {
            sets: (0..num_sets)
                .map(|_| CacheSet {
                    tags: Vec::with_capacity(assoc),
                    ways: assoc,
                })
                .collect(),
            line: line as u64,
            set_shift: line.trailing_zeros(),
            set_mask: (num_sets - 1) as u64,
            hits: 0,
            misses: 0,
        }
    }

    /// Performs a read access at a byte address; allocates on miss.
    pub fn read(&mut self, addr: u64) -> Access {
        let tag = addr / self.line;
        let set = ((addr >> self.set_shift) & self.set_mask) as usize;
        let s = &mut self.sets[set];
        if let Some(pos) = s.tags.iter().position(|&t| t == tag) {
            // Move to MRU.
            let t = s.tags.remove(pos);
            s.tags.insert(0, t);
            self.hits += 1;
            Access::Hit
        } else {
            s.tags.insert(0, tag);
            if s.tags.len() > s.ways {
                s.tags.pop();
            }
            self.misses += 1;
            Access::Miss
        }
    }

    /// Performs a write access. Policy: write-through without allocate, and
    /// the written line is *evicted* if present (Fermi L1 global-store
    /// semantics), keeping subsequent reads honest.
    pub fn write_evict(&mut self, addr: u64) {
        let tag = addr / self.line;
        let set = ((addr >> self.set_shift) & self.set_mask) as usize;
        let s = &mut self.sets[set];
        if let Some(pos) = s.tags.iter().position(|&t| t == tag) {
            s.tags.remove(pos);
        }
    }

    /// Write access that allocates (used for the L2, which caches stores).
    pub fn write_allocate(&mut self, addr: u64) -> Access {
        self.read(addr)
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.tags.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }

    /// Number of sets (exposed for tests).
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = Cache::new(16 * 1024, 128, 4);
        assert_eq!(c.read(0x1000), Access::Miss);
        assert_eq!(c.read(0x1000), Access::Hit);
        assert_eq!(c.read(0x1004), Access::Hit); // same line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn distinct_lines_miss_independently() {
        let mut c = Cache::new(16 * 1024, 128, 4);
        assert_eq!(c.read(0), Access::Miss);
        assert_eq!(c.read(128), Access::Miss);
        assert_eq!(c.read(0), Access::Hit);
    }

    #[test]
    fn lru_evicts_oldest_in_set() {
        // Direct construction of a tiny cache: 4 lines, 2 ways, 2 sets.
        let mut c = Cache::new(512, 128, 2);
        assert_eq!(c.num_sets(), 2);
        // Three lines mapping to the same set (stride = line * num_sets).
        let stride = 128 * 2;
        assert_eq!(c.read(0), Access::Miss);
        assert_eq!(c.read(stride), Access::Miss);
        assert_eq!(c.read(2 * stride), Access::Miss); // evicts addr 0
        assert_eq!(c.read(0), Access::Miss); // was evicted
        assert_eq!(c.read(2 * stride), Access::Hit);
    }

    #[test]
    fn mru_promotion_protects_hot_line() {
        let mut c = Cache::new(512, 128, 2);
        let stride = 128 * 2;
        c.read(0);
        c.read(stride);
        c.read(0); // promote
        c.read(2 * stride); // evicts `stride`, not 0
        assert_eq!(c.read(0), Access::Hit);
        assert_eq!(c.read(stride), Access::Miss);
    }

    #[test]
    fn write_evict_removes_line() {
        let mut c = Cache::new(16 * 1024, 128, 4);
        c.read(0x2000);
        c.write_evict(0x2000);
        assert_eq!(c.read(0x2000), Access::Miss);
    }

    #[test]
    fn write_allocate_installs_line() {
        let mut c = Cache::new(16 * 1024, 128, 4);
        assert_eq!(c.write_allocate(0x3000), Access::Miss);
        assert_eq!(c.read(0x3000), Access::Hit);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = Cache::new(1024, 128, 2); // 8 lines
                                              // Stream 64 distinct lines twice: second pass still misses (capacity).
        for pass in 0..2 {
            for i in 0..64u64 {
                let r = c.read(i * 128);
                if pass == 1 {
                    assert_eq!(r, Access::Miss);
                }
            }
        }
    }

    #[test]
    fn working_set_smaller_than_cache_hits_on_second_pass() {
        let mut c = Cache::new(16 * 1024, 128, 8); // 128 lines
        for i in 0..32u64 {
            c.read(i * 128);
        }
        for i in 0..32u64 {
            assert_eq!(c.read(i * 128), Access::Hit);
        }
    }

    #[test]
    fn reset_clears_contents_and_stats() {
        let mut c = Cache::new(1024, 128, 2);
        c.read(0);
        c.reset();
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
        assert_eq!(c.read(0), Access::Miss);
    }
}
