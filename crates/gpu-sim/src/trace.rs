//! Kernel traces: the interface between workloads and the simulator.
//!
//! A kernel is described by its launch geometry plus, for any thread block,
//! the per-warp instruction streams with concrete per-lane addresses. The
//! simulator never sees source code — only these traces — which mirrors how
//! hardware performance counters observe real kernels.

use crate::arch::GpuConfig;
use serde::{Deserialize, Serialize};

/// Launch geometry and per-block resource usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Total thread blocks in the grid.
    pub grid_blocks: usize,
    /// Threads per block.
    pub threads_per_block: usize,
    /// Registers per thread (drives occupancy).
    pub regs_per_thread: usize,
    /// Static + dynamic shared memory per block, bytes.
    pub shared_mem_per_block: usize,
}

impl LaunchConfig {
    /// Warps per block on the given GPU (rounded up for partial warps).
    pub fn warps_per_block(&self, warp_size: usize) -> usize {
        self.threads_per_block.div_ceil(warp_size)
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> usize {
        self.grid_blocks * self.threads_per_block
    }
}

/// The active-lane mask of a warp instruction (bit `i` = lane `i` active).
pub type LaneMask = u32;

/// A full 32-lane mask.
pub const FULL_MASK: LaneMask = u32::MAX;

/// Builds a mask with the first `n` lanes active.
pub fn first_lanes(n: usize) -> LaneMask {
    if n >= 32 {
        FULL_MASK
    } else {
        (1u32 << n) - 1
    }
}

/// One warp-level instruction of a kernel trace.
///
/// Memory instructions carry concrete addresses so the coalescing, cache,
/// and bank-conflict models operate on real access patterns rather than
/// statistical summaries.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WarpInstruction {
    /// Integer/float arithmetic executed on the CUDA cores. `count` folds
    /// runs of dependent ALU instructions into one entry (issue cost and
    /// latency scale with it).
    Alu {
        /// Number of back-to-back ALU instructions this entry represents.
        count: u32,
        /// Active lanes.
        mask: LaneMask,
    },
    /// Special-function-unit op (transcendentals, fast math).
    Sfu {
        /// Active lanes.
        mask: LaneMask,
    },
    /// Global memory load. One address per active lane (`addrs[i]` is valid
    /// iff bit `i` of `mask` is set; inactive lanes hold 0).
    LoadGlobal {
        /// Byte addresses, one slot per lane.
        addrs: Vec<u64>,
        /// Bytes accessed per lane (4 for `float`, 8 for `double`, ...).
        width: u8,
        /// Active lanes.
        mask: LaneMask,
    },
    /// Global memory store.
    StoreGlobal {
        /// Byte addresses, one slot per lane.
        addrs: Vec<u64>,
        /// Bytes accessed per lane.
        width: u8,
        /// Active lanes.
        mask: LaneMask,
    },
    /// Shared memory load; addresses are byte offsets into the block's
    /// shared-memory allocation.
    LoadShared {
        /// Byte offsets, one slot per lane.
        offsets: Vec<u32>,
        /// Bytes per lane.
        width: u8,
        /// Active lanes.
        mask: LaneMask,
    },
    /// Shared memory store.
    StoreShared {
        /// Byte offsets, one slot per lane.
        offsets: Vec<u32>,
        /// Bytes per lane.
        width: u8,
        /// Active lanes.
        mask: LaneMask,
    },
    /// A branch instruction; `divergent` marks intra-warp divergence, which
    /// serialises the two paths (the simulator charges one extra issue).
    Branch {
        /// Whether lanes of this warp take different directions.
        divergent: bool,
        /// Active lanes.
        mask: LaneMask,
    },
    /// Block-wide barrier (`__syncthreads()`).
    Barrier,
}

impl WarpInstruction {
    /// Number of active lanes.
    pub fn active_lanes(&self) -> u32 {
        match self {
            WarpInstruction::Alu { mask, .. }
            | WarpInstruction::Sfu { mask }
            | WarpInstruction::LoadGlobal { mask, .. }
            | WarpInstruction::StoreGlobal { mask, .. }
            | WarpInstruction::LoadShared { mask, .. }
            | WarpInstruction::StoreShared { mask, .. }
            | WarpInstruction::Branch { mask, .. } => mask.count_ones(),
            WarpInstruction::Barrier => 32,
        }
    }

    /// Number of warp instructions this entry represents (ALU entries fold
    /// `count` instructions; everything else is 1).
    pub fn instruction_count(&self) -> u32 {
        match self {
            WarpInstruction::Alu { count, .. } => *count,
            _ => 1,
        }
    }
}

/// The instruction streams of one thread block: one stream per warp.
///
/// `Hash`/`Eq` are content hashes over the full instruction streams — the
/// launch-memoization cache ([`crate::memo`]) is keyed on them, which is
/// sound because the simulator is a pure function of the traces.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct BlockTrace {
    /// `warps[w]` is warp `w`'s instruction stream.
    pub warps: Vec<Vec<WarpInstruction>>,
}

impl BlockTrace {
    /// Creates a trace with `n` empty warp streams.
    pub fn with_warps(n: usize) -> BlockTrace {
        BlockTrace {
            warps: vec![Vec::new(); n],
        }
    }

    /// Total warp instructions in the block (counting folded ALU runs).
    pub fn total_instructions(&self) -> u64 {
        self.warps
            .iter()
            .flat_map(|w| w.iter())
            .map(|i| i.instruction_count() as u64)
            .sum()
    }

    /// Checks structural validity:
    ///
    /// * every warp must contain the same number of barriers (otherwise the
    ///   block would deadlock on real hardware), and
    /// * every memory instruction's address/offset vector must cover its
    ///   active lanes — the convention is one slot per lane, so an active
    ///   bit at lane `i` requires `addrs.len() > i`. A generator that emits
    ///   fewer slots than it activates would otherwise have those lanes
    ///   silently dropped by the coalescing and bank-conflict models,
    ///   under-reporting accesses.
    pub fn validate(&self) -> crate::Result<()> {
        let barrier_count = |stream: &[WarpInstruction]| {
            stream
                .iter()
                .filter(|i| matches!(i, WarpInstruction::Barrier))
                .count()
        };
        if let Some(first) = self.warps.first() {
            let expect = barrier_count(first);
            for (w, stream) in self.warps.iter().enumerate() {
                let got = barrier_count(stream);
                if got != expect {
                    return Err(crate::SimError::BadTrace(format!(
                        "warp {w} has {got} barriers, warp 0 has {expect}"
                    )));
                }
            }
        }
        for (w, stream) in self.warps.iter().enumerate() {
            for (i, instr) in stream.iter().enumerate() {
                let (what, slots, mask) = match instr {
                    WarpInstruction::LoadGlobal { addrs, mask, .. } => {
                        ("global load addrs", addrs.len(), *mask)
                    }
                    WarpInstruction::StoreGlobal { addrs, mask, .. } => {
                        ("global store addrs", addrs.len(), *mask)
                    }
                    WarpInstruction::LoadShared { offsets, mask, .. } => {
                        ("shared load offsets", offsets.len(), *mask)
                    }
                    WarpInstruction::StoreShared { offsets, mask, .. } => {
                        ("shared store offsets", offsets.len(), *mask)
                    }
                    _ => continue,
                };
                if mask == 0 {
                    continue;
                }
                let highest = 31 - mask.leading_zeros() as usize;
                if highest >= slots {
                    return Err(crate::SimError::BadTrace(format!(
                        "warp {w} instruction {i}: {what} has {slots} slots but \
                         the lane mask ({} active lanes) activates lane {highest}; \
                         active lanes without an address slot would be silently \
                         dropped",
                        mask.count_ones()
                    )));
                }
            }
        }
        Ok(())
    }
}

/// A traceable kernel: launch geometry plus per-block traces.
///
/// Implementations generate the *address patterns* of real CUDA kernels
/// (the CUDA SDK reductions, tiled matrix multiply, Rodinia NW), so the
/// microarchitectural counters the simulator derives match the mechanisms
/// the real kernels trigger.
pub trait KernelTrace: Send + Sync {
    /// Kernel name (used in reports, mirrors the CUDA kernel symbol).
    fn name(&self) -> String;

    /// Launch geometry for this kernel instance.
    fn launch_config(&self) -> LaunchConfig;

    /// Produces the instruction streams of block `block_id` on `gpu`.
    fn block_trace(&self, block_id: usize, gpu: &GpuConfig) -> BlockTrace;

    /// Whether all blocks are statistically identical; homogeneous grids are
    /// sampled with a handful of representative blocks. All kernels studied
    /// in the paper are homogeneous (NW launches one homogeneous grid per
    /// diagonal).
    fn homogeneous(&self) -> bool {
        true
    }

    /// A compact, cross-process-stable identity for the *content* of every
    /// trace this kernel generates, or `None` (the default) when only full
    /// trace hashing can identify it.
    ///
    /// `block_trace` is required to be a pure function of
    /// `(self, block_id, gpu)`, so when a kernel's whole state is a handful
    /// of scalars, a digest of those scalars — plus a unique type tag and a
    /// generator version — identifies its traces exactly as precisely as
    /// hashing every generated address, at a fraction of the cost. The
    /// memoization layer ([`crate::memo`]) keys tagged kernels on this
    /// digest and skips trace construction entirely on cache hits.
    ///
    /// Contract for implementations: fold in a tag unique to the kernel
    /// *type*, a version that is bumped whenever the generator's emitted
    /// instructions change, and every field that influences `name`,
    /// `launch_config`, or `block_trace`. Do NOT fold in GPU state — the
    /// memo key already covers it via the GPU fingerprint. Returning an
    /// incomplete digest silently aliases distinct launches; when in doubt,
    /// return `None`.
    fn content_tag(&self) -> Option<u128> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_lanes_masks() {
        assert_eq!(first_lanes(0), 0);
        assert_eq!(first_lanes(1), 1);
        assert_eq!(first_lanes(16), 0xFFFF);
        assert_eq!(first_lanes(32), u32::MAX);
        assert_eq!(first_lanes(100), u32::MAX);
    }

    #[test]
    fn active_lanes_counts_mask_bits() {
        let i = WarpInstruction::Alu {
            count: 3,
            mask: 0b1011,
        };
        assert_eq!(i.active_lanes(), 3);
        assert_eq!(i.instruction_count(), 3);
        assert_eq!(WarpInstruction::Barrier.active_lanes(), 32);
        assert_eq!(WarpInstruction::Barrier.instruction_count(), 1);
    }

    #[test]
    fn warps_per_block_rounds_up() {
        let lc = LaunchConfig {
            grid_blocks: 4,
            threads_per_block: 48,
            regs_per_thread: 16,
            shared_mem_per_block: 0,
        };
        assert_eq!(lc.warps_per_block(32), 2);
        assert_eq!(lc.total_threads(), 192);
    }

    #[test]
    fn validate_accepts_matching_barriers() {
        let mut t = BlockTrace::with_warps(2);
        for w in &mut t.warps {
            w.push(WarpInstruction::Alu {
                count: 1,
                mask: FULL_MASK,
            });
            w.push(WarpInstruction::Barrier);
        }
        assert!(t.validate().is_ok());
    }

    #[test]
    fn validate_rejects_mismatched_barriers() {
        let mut t = BlockTrace::with_warps(2);
        t.warps[0].push(WarpInstruction::Barrier);
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_active_lanes_without_address_slots() {
        // Active lane 4 (bit 4 set) but only 3 address slots: the coalescer
        // would silently skip lanes 3..=4.
        let mut t = BlockTrace::with_warps(1);
        t.warps[0].push(WarpInstruction::LoadGlobal {
            addrs: vec![0, 4, 8],
            width: 4,
            mask: 0b1_0111,
        });
        let err = t.validate().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("global load addrs"), "unexpected error: {msg}");
        assert!(msg.contains("lane 4"), "unexpected error: {msg}");
    }

    #[test]
    fn validate_rejects_short_shared_offset_vectors() {
        let mut t = BlockTrace::with_warps(2);
        for w in &mut t.warps {
            w.push(WarpInstruction::StoreShared {
                offsets: vec![0; 16],
                width: 4,
                mask: FULL_MASK,
            });
        }
        let err = t.validate().unwrap_err();
        assert!(err.to_string().contains("shared store offsets"));
    }

    #[test]
    fn validate_accepts_full_slot_vectors_with_sparse_masks() {
        // The documented convention: one slot per lane, inactive lanes hold
        // 0. A single active lane with 32 slots is valid.
        let mut t = BlockTrace::with_warps(1);
        t.warps[0].push(WarpInstruction::StoreGlobal {
            addrs: vec![0; 32],
            width: 4,
            mask: 1,
        });
        t.warps[0].push(WarpInstruction::LoadShared {
            offsets: vec![0; 32],
            width: 4,
            mask: 0,
        });
        assert!(t.validate().is_ok());
    }

    #[test]
    fn total_instructions_counts_folded_alu() {
        let mut t = BlockTrace::with_warps(1);
        t.warps[0].push(WarpInstruction::Alu {
            count: 5,
            mask: FULL_MASK,
        });
        t.warps[0].push(WarpInstruction::Barrier);
        assert_eq!(t.total_instructions(), 6);
    }
}
