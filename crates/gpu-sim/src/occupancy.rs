//! Occupancy calculation: how many thread blocks fit on one SM.
//!
//! Mirrors NVIDIA's occupancy calculator: the resident-block count is the
//! minimum of four limits — the hardware block limit, the warp-slot limit,
//! the register-file limit, and the shared-memory limit. Occupancy (the
//! "classical metric" of §3.1) is resident warps over the SM's warp capacity.

use crate::arch::GpuConfig;
use crate::trace::LaunchConfig;
use crate::{Result, SimError};
use serde::{Deserialize, Serialize};

/// Result of the occupancy calculation for one launch on one GPU.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Occupancy {
    /// Thread blocks resident per SM.
    pub blocks_per_sm: usize,
    /// Warps resident per SM (`blocks_per_sm x warps_per_block`).
    pub warps_per_sm: usize,
    /// Theoretical occupancy: resident warps / max warps.
    pub theoretical: f64,
    /// Which resource limits residency.
    pub limiter: OccupancyLimiter,
}

/// The resource that caps resident blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OccupancyLimiter {
    /// Hardware cap on blocks per SM.
    BlockSlots,
    /// Warp slots per SM.
    WarpSlots,
    /// Register file capacity.
    Registers,
    /// Shared memory capacity.
    SharedMemory,
    /// The grid itself is too small to fill the SM.
    GridSize,
}

impl OccupancyLimiter {
    /// Human-readable limiter name, as printed in reports and diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            OccupancyLimiter::BlockSlots => "block slots",
            OccupancyLimiter::WarpSlots => "warp slots",
            OccupancyLimiter::Registers => "registers",
            OccupancyLimiter::SharedMemory => "shared memory",
            OccupancyLimiter::GridSize => "grid size",
        }
    }
}

/// Computes occupancy for a launch on a GPU.
///
/// Errors if the block is impossible (too many threads, too much shared
/// memory, or register demand exceeding the file even for a single block).
pub fn occupancy(gpu: &GpuConfig, launch: &LaunchConfig) -> Result<Occupancy> {
    if launch.threads_per_block == 0 || launch.grid_blocks == 0 {
        return Err(SimError::BadLaunch("empty grid or block".into()));
    }
    if launch.threads_per_block > gpu.max_threads_per_block {
        return Err(SimError::BadLaunch(format!(
            "{} threads per block exceeds device limit {}",
            launch.threads_per_block, gpu.max_threads_per_block
        )));
    }
    if launch.shared_mem_per_block > gpu.shared_mem_per_sm {
        return Err(SimError::BadLaunch(format!(
            "{} bytes of shared memory per block exceeds SM capacity {}",
            launch.shared_mem_per_block, gpu.shared_mem_per_sm
        )));
    }
    if launch.regs_per_thread > gpu.max_registers_per_thread {
        return Err(SimError::BadLaunch(format!(
            "{} registers per thread exceeds device limit {}",
            launch.regs_per_thread, gpu.max_registers_per_thread
        )));
    }
    let warps_per_block = launch.warps_per_block(gpu.warp_size);

    let by_blocks = gpu.max_blocks_per_sm;
    let by_warps = gpu.max_warps_per_sm / warps_per_block;
    let regs_per_block = launch.regs_per_thread.max(1) * warps_per_block * gpu.warp_size;
    let by_regs = gpu.registers_per_sm / regs_per_block;
    let by_smem = gpu
        .shared_mem_per_sm
        .checked_div(launch.shared_mem_per_block)
        .unwrap_or(usize::MAX);

    let (mut blocks, mut limiter) = (by_blocks, OccupancyLimiter::BlockSlots);
    for (candidate, cause) in [
        (by_warps, OccupancyLimiter::WarpSlots),
        (by_regs, OccupancyLimiter::Registers),
        (by_smem, OccupancyLimiter::SharedMemory),
    ] {
        if candidate < blocks {
            blocks = candidate;
            limiter = cause;
        }
    }
    if blocks == 0 {
        return Err(SimError::BadLaunch(
            "block does not fit on the SM at all".into(),
        ));
    }
    // A small grid may not supply enough blocks to reach the resource limit.
    let per_sm_share = launch.grid_blocks.div_ceil(gpu.num_sms);
    if per_sm_share < blocks {
        blocks = per_sm_share.max(1);
        limiter = OccupancyLimiter::GridSize;
    }
    let warps = blocks * warps_per_block;
    Ok(Occupancy {
        blocks_per_sm: blocks,
        warps_per_sm: warps,
        theoretical: warps as f64 / gpu.max_warps_per_sm as f64,
        limiter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn launch(threads: usize, regs: usize, smem: usize, grid: usize) -> LaunchConfig {
        LaunchConfig {
            grid_blocks: grid,
            threads_per_block: threads,
            regs_per_thread: regs,
            shared_mem_per_block: smem,
        }
    }

    #[test]
    fn full_occupancy_for_light_blocks() {
        let gpu = GpuConfig::gtx580();
        // 256 threads, 16 regs, 1KB smem: 6 blocks hit the warp limit (48/8).
        let o = occupancy(&gpu, &launch(256, 16, 1024, 1000)).unwrap();
        assert_eq!(o.warps_per_sm, 48);
        assert!((o.theoretical - 1.0).abs() < 1e-12);
        assert_eq!(o.limiter, OccupancyLimiter::WarpSlots);
    }

    #[test]
    fn register_limited() {
        let gpu = GpuConfig::gtx580();
        // 256 threads x 63 regs = 16128 regs per block -> 2 blocks of 32768.
        let o = occupancy(&gpu, &launch(256, 63, 0, 1000)).unwrap();
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.limiter, OccupancyLimiter::Registers);
    }

    #[test]
    fn shared_memory_limited() {
        let gpu = GpuConfig::gtx580();
        // 24KB per block -> 2 blocks of 48KB.
        let o = occupancy(&gpu, &launch(64, 16, 24 * 1024, 1000)).unwrap();
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.limiter, OccupancyLimiter::SharedMemory);
    }

    #[test]
    fn block_slot_limited_for_tiny_blocks() {
        let gpu = GpuConfig::gtx580();
        // NW-style 16-thread blocks: only 8 blocks/SM on Fermi -> 8 warps of
        // 48 -> very low occupancy, exactly the effect §6.1.2 describes.
        let o = occupancy(&gpu, &launch(16, 20, 2048, 1000)).unwrap();
        assert_eq!(o.blocks_per_sm, 8);
        assert_eq!(o.limiter, OccupancyLimiter::BlockSlots);
        assert!(o.theoretical < 0.2);
    }

    #[test]
    fn kepler_allows_more_small_blocks() {
        let f = occupancy(&GpuConfig::gtx580(), &launch(16, 20, 2048, 1000)).unwrap();
        let k = occupancy(&GpuConfig::k20m(), &launch(16, 20, 2048, 1000)).unwrap();
        assert!(k.blocks_per_sm > f.blocks_per_sm);
    }

    #[test]
    fn small_grid_limits_residency() {
        let gpu = GpuConfig::gtx580();
        let o = occupancy(&gpu, &launch(256, 16, 0, 4)).unwrap();
        assert_eq!(o.blocks_per_sm, 1);
        assert_eq!(o.limiter, OccupancyLimiter::GridSize);
    }

    #[test]
    fn rejects_oversized_block() {
        let gpu = GpuConfig::gtx580();
        assert!(occupancy(&gpu, &launch(2048, 16, 0, 1)).is_err());
        assert!(occupancy(&gpu, &launch(0, 16, 0, 1)).is_err());
        assert!(occupancy(&gpu, &launch(256, 16, 1 << 20, 1)).is_err());
        assert!(occupancy(&gpu, &launch(256, 200, 0, 1)).is_err());
    }

    #[test]
    fn partial_warps_round_up() {
        let gpu = GpuConfig::gtx580();
        // 48-thread blocks occupy 2 warp slots each.
        let o = occupancy(&gpu, &launch(48, 16, 0, 1000)).unwrap();
        assert_eq!(o.warps_per_sm, o.blocks_per_sm * 2);
    }
}
