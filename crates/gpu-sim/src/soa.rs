//! Structure-of-arrays batch execution engine for one SM's resident set.
//!
//! The reference interpreter ([`crate::sm::simulate_sm`]) walks
//! `Vec<WarpInstruction>` streams and, per instruction, clones lane-address
//! vectors and allocates fresh buffers inside [`crate::coalesce`] and
//! [`crate::banks`]. At sweep scale that allocation traffic dominates the
//! profile. This module splits the work into two stages:
//!
//! 1. **Compile** ([`compile`]): three tight sweeps over the resident set
//!    lay every instruction out as a fixed-size [`Op`] record in one
//!    contiguous array, with all data-independent work — active-lane
//!    counts, requested bytes, coalesced transaction addresses (into a
//!    shared `u64` arena), bank-conflict replay counts — precomputed using
//!    reusable scratch buffers (no per-access allocation).
//! 2. **Execute** ([`execute`]): the event-driven scheduler loop runs over
//!    the `Op` slice. Only genuinely dynamic state remains: the ready
//!    queue, pipeline next-free times, and L1/L2 tag lookups.
//!
//! The execute loop accumulates every `RawEvents` field in **exactly** the
//! same order as the reference interpreter, so results are bit-identical —
//! the contract the memoization layer and the determinism suite rely on,
//! enforced by the `soa_equivalence` proptests.

use crate::arch::GpuConfig;
use crate::banks::{self, BankScratch};
use crate::cache::{Access, Cache};
use crate::coalesce::{coalesce_into, requested_bytes};
use crate::counters::RawEvents;
use crate::sm::{SmResult, Time};
use crate::trace::{BlockTrace, WarpInstruction};
use crate::{Result, SimError};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Instruction class of a compiled [`Op`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Alu,
    Sfu,
    Branch,
    LoadShared,
    StoreShared,
    LoadGlobal,
    StoreGlobal,
    Barrier,
}

/// One compiled warp instruction: every data-independent quantity the
/// scheduler needs, precomputed into a flat `Copy` record. Transaction
/// addresses live in the launch's shared arena, referenced by range.
#[derive(Debug, Clone, Copy)]
struct Op {
    kind: OpKind,
    /// Branch divergence flag.
    divergent: bool,
    /// Active lanes, as the f64 the event accumulation uses.
    lanes: f64,
    /// ALU burst length.
    count: f64,
    /// Shared-memory bank-conflict replays.
    replays: f64,
    /// Global-store transaction count at 128-byte reporting granularity.
    store_trans: f64,
    /// Bytes the active lanes requested (global load/store).
    req_bytes: f64,
    /// Arena range of coalesced transaction addresses, at the load-segment
    /// granularity ([`GpuConfig::load_segment_bytes`]: whole L1 lines on
    /// Fermi, 32-byte sectors everywhere else) for loads and 32-byte
    /// sectors for stores.
    trans_start: u32,
    trans_len: u32,
    /// Arena range of L1 tags a store evicts on global-caching L1s
    /// (whole Fermi lines, Pascal/Volta sectors).
    evict_start: u32,
    evict_len: u32,
}

impl Op {
    fn new(kind: OpKind, lanes: f64) -> Op {
        Op {
            kind,
            divergent: false,
            lanes,
            count: 0.0,
            replays: 0.0,
            store_trans: 0.0,
            req_bytes: 0.0,
            trans_start: 0,
            trans_len: 0,
            evict_start: 0,
            evict_len: 0,
        }
    }
}

/// One warp's slice of the op array, plus its block id.
#[derive(Debug, Clone, Copy)]
struct CompiledWarp {
    block: u32,
    start: u32,
    len: u32,
}

/// A resident set compiled to SoA form: the flat op array, per-warp ranges,
/// and the shared transaction-address arena.
#[derive(Debug)]
pub struct CompiledLaunch {
    ops: Vec<Op>,
    warps: Vec<CompiledWarp>,
    arena: Vec<u64>,
    /// Warps per block, indexed by block id (drives barrier release).
    block_warp_counts: Vec<usize>,
}

fn arena_push(arena: &mut Vec<u64>, addrs: &[u64]) -> Result<(u32, u32)> {
    let start = u32::try_from(arena.len())
        .map_err(|_| SimError::BadTrace("transaction arena exceeds u32 range".into()))?;
    arena.extend_from_slice(addrs);
    Ok((start, addrs.len() as u32))
}

/// Compiles a resident set into SoA form. Validates every block (same
/// structural checks as the reference path) and runs the coalescing and
/// bank-conflict sweeps with reused scratch buffers.
pub fn compile(gpu: &GpuConfig, blocks: &[BlockTrace]) -> Result<CompiledLaunch> {
    for b in blocks {
        b.validate()?;
    }

    // Pass 1 — trace walk: assemble the op skeletons (kind, lanes, and the
    // per-kind static costs that need no address analysis).
    let mut cl = {
        let _walk = bf_trace::span!("trace_walk");
        let mut ops: Vec<Op> = Vec::new();
        let mut warps: Vec<CompiledWarp> = Vec::new();
        let mut block_warp_counts = Vec::with_capacity(blocks.len());
        for (bi, b) in blocks.iter().enumerate() {
            block_warp_counts.push(b.warps.len());
            for stream in &b.warps {
                let start = u32::try_from(ops.len())
                    .map_err(|_| SimError::BadTrace("op array exceeds u32 range".into()))?;
                for instr in stream {
                    let lanes = instr.active_lanes() as f64;
                    let op = match instr {
                        WarpInstruction::Alu { count, .. } => {
                            let mut op = Op::new(OpKind::Alu, lanes);
                            op.count = *count as f64;
                            op
                        }
                        WarpInstruction::Sfu { .. } => Op::new(OpKind::Sfu, lanes),
                        WarpInstruction::Branch { divergent, .. } => {
                            let mut op = Op::new(OpKind::Branch, lanes);
                            op.divergent = *divergent;
                            op
                        }
                        WarpInstruction::LoadShared { .. } => Op::new(OpKind::LoadShared, lanes),
                        WarpInstruction::StoreShared { .. } => Op::new(OpKind::StoreShared, lanes),
                        WarpInstruction::LoadGlobal { width, mask, .. } => {
                            let mut op = Op::new(OpKind::LoadGlobal, lanes);
                            op.req_bytes = requested_bytes(*width, *mask) as f64;
                            op
                        }
                        WarpInstruction::StoreGlobal { width, mask, .. } => {
                            let mut op = Op::new(OpKind::StoreGlobal, lanes);
                            op.req_bytes = requested_bytes(*width, *mask) as f64;
                            op
                        }
                        WarpInstruction::Barrier => Op::new(OpKind::Barrier, lanes),
                    };
                    ops.push(op);
                }
                warps.push(CompiledWarp {
                    block: bi as u32,
                    start,
                    len: stream.len() as u32,
                });
            }
        }
        CompiledLaunch {
            ops,
            warps,
            arena: Vec::new(),
            block_warp_counts,
        }
    };

    // Pass 2 — coalescing sweep: fold lane addresses of every global access
    // into segment transactions, appending the addresses to the arena.
    {
        let _coal = bf_trace::span!("coalesce");
        let mut scratch: Vec<u64> = Vec::with_capacity(64);
        let mut cursor = 0usize;
        let load_segment = gpu.load_segment_bytes();
        for b in blocks {
            for stream in &b.warps {
                for instr in stream {
                    let op = &mut cl.ops[cursor];
                    cursor += 1;
                    match instr {
                        WarpInstruction::LoadGlobal { addrs, width, mask } => {
                            coalesce_into(addrs, *width, *mask, load_segment, &mut scratch);
                            (op.trans_start, op.trans_len) = arena_push(&mut cl.arena, &scratch)?;
                        }
                        WarpInstruction::StoreGlobal { addrs, width, mask } => {
                            coalesce_into(addrs, *width, *mask, 32, &mut scratch);
                            (op.trans_start, op.trans_len) = arena_push(&mut cl.arena, &scratch)?;
                            if gpu.l1_caches_globals {
                                coalesce_into(
                                    addrs,
                                    *width,
                                    *mask,
                                    gpu.l1_tag_line() as u32,
                                    &mut scratch,
                                );
                                (op.evict_start, op.evict_len) =
                                    arena_push(&mut cl.arena, &scratch)?;
                            }
                            // Hardware reports stores in up-to-128-byte
                            // transactions regardless of the sector path.
                            coalesce_into(addrs, *width, *mask, 128, &mut scratch);
                            op.store_trans = scratch.len() as f64;
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    // Pass 3 — bank-conflict sweep over the shared-memory accesses.
    {
        let _banks = bf_trace::span!("banks");
        let mut scratch = BankScratch::new();
        let mut cursor = 0usize;
        for b in blocks {
            for stream in &b.warps {
                for instr in stream {
                    let op = &mut cl.ops[cursor];
                    cursor += 1;
                    if let WarpInstruction::LoadShared {
                        offsets,
                        width,
                        mask,
                    }
                    | WarpInstruction::StoreShared {
                        offsets,
                        width,
                        mask,
                    } = instr
                    {
                        op.replays = banks::replays_scratch(
                            offsets,
                            *width,
                            *mask,
                            gpu.shared_banks as u32,
                            gpu.bank_width as u32,
                            &mut scratch,
                        ) as f64;
                    }
                }
            }
        }
    }

    Ok(cl)
}

struct BarrierState {
    arrived: usize,
    release_time: f64,
    parked: Vec<usize>,
    total_warps: usize,
}

/// Runs the event-driven scheduler over a compiled resident set. Mirrors
/// [`crate::sm::simulate_sm`]'s accumulation order exactly; see the module
/// docs for the bit-exactness contract.
pub fn execute(gpu: &GpuConfig, cl: &CompiledLaunch, l1: &mut Cache, l2: &mut Cache) -> SmResult {
    let _issue_span = bf_trace::span!("issue_loop");
    let nwarps = cl.warps.len();
    let mut pc: Vec<u32> = vec![0; nwarps];
    let mut finish: Vec<f64> = vec![0.0; nwarps];
    let mut barriers: Vec<BarrierState> = cl
        .block_warp_counts
        .iter()
        .map(|&n| BarrierState {
            arrived: 0,
            release_time: 0.0,
            parked: Vec::new(),
            total_warps: n,
        })
        .collect();
    let mut ev = RawEvents {
        warps_launched: nwarps as f64,
        blocks_launched: cl.block_warp_counts.len() as f64,
        ..RawEvents::default()
    };

    let mut ready: BinaryHeap<Reverse<(Time, usize)>> = BinaryHeap::new();
    for i in 0..nwarps {
        ready.push(Reverse((Time(0.0), i)));
    }

    let mut issue_free = 0.0f64;
    let mut alu_free = 0.0f64;
    let mut ldst_free = 0.0f64;
    let mut sfu_free = 0.0f64;
    let issue_period = 1.0 / gpu.issue_width() as f64;
    let alu_period = 1.0 / gpu.alu_throughput;
    let ldst_period = 1.0 / gpu.ldst_units;
    let sfu_period = 1.0 / gpu.sfu_throughput;

    let mut dram_bytes = 0.0f64;
    let mut makespan = 0.0f64;

    while let Some(Reverse((Time(ready_t), wi))) = ready.pop() {
        let w = cl.warps[wi];
        if pc[wi] >= w.len {
            continue;
        }
        let op = cl.ops[(w.start + pc[wi]) as usize];
        if op.kind == OpKind::Barrier {
            ev.inst_executed += 1.0;
            ev.inst_issued += 1.0;
            let bar = &mut barriers[w.block as usize];
            bar.arrived += 1;
            bar.release_time = bar.release_time.max(ready_t);
            pc[wi] += 1;
            if bar.arrived == bar.total_warps {
                let t = bar.release_time;
                bar.arrived = 0;
                bar.release_time = 0.0;
                let parked = std::mem::take(&mut bar.parked);
                for p in parked {
                    ready.push(Reverse((Time(t), p)));
                }
                ready.push(Reverse((Time(t), wi)));
            } else {
                bar.parked.push(wi);
            }
            continue;
        }

        let t_issue = ready_t.max(issue_free);
        issue_free = t_issue + issue_period;
        let lanes = op.lanes;

        let next_ready = match op.kind {
            OpKind::Alu => {
                let c = op.count;
                let start = t_issue.max(alu_free);
                alu_free = start + c * alu_period;
                ev.inst_executed += c;
                ev.inst_issued += c;
                ev.thread_inst_executed += c * lanes;
                start + (c - 1.0) * alu_period + gpu.alu_latency as f64
            }
            OpKind::Sfu => {
                let start = t_issue.max(sfu_free);
                sfu_free = start + sfu_period;
                ev.inst_executed += 1.0;
                ev.inst_issued += 1.0;
                ev.thread_inst_executed += lanes;
                start + gpu.sfu_latency as f64
            }
            OpKind::Branch => {
                let start = t_issue.max(alu_free);
                alu_free = start + alu_period;
                ev.inst_executed += 1.0;
                ev.branch += 1.0;
                ev.thread_inst_executed += lanes;
                if op.divergent {
                    ev.divergent_branch += 1.0;
                    ev.inst_issued += 2.0;
                    start + 2.0 * gpu.alu_latency as f64
                } else {
                    ev.inst_issued += 1.0;
                    start + gpu.alu_latency as f64
                }
            }
            OpKind::LoadShared => {
                let r = op.replays;
                let start = t_issue.max(ldst_free);
                let busy = (1.0 + r) * ldst_period;
                ldst_free = start + busy;
                ev.ldst_busy_cycles += busy;
                ev.inst_executed += 1.0;
                ev.inst_issued += 1.0 + r;
                ev.shared_load += 1.0;
                ev.shared_load_replay += r;
                ev.thread_inst_executed += lanes;
                start + gpu.smem_latency as f64 + r
            }
            OpKind::StoreShared => {
                let r = op.replays;
                let start = t_issue.max(ldst_free);
                let busy = (1.0 + r) * ldst_period;
                ldst_free = start + busy;
                ev.ldst_busy_cycles += busy;
                ev.inst_executed += 1.0;
                ev.inst_issued += 1.0 + r;
                ev.shared_store += 1.0;
                ev.shared_store_replay += r;
                ev.thread_inst_executed += lanes;
                start + r + 2.0
            }
            OpKind::LoadGlobal => {
                ev.gld_request += 1.0;
                ev.gld_requested_bytes += op.req_bytes;
                ev.inst_executed += 1.0;
                ev.thread_inst_executed += lanes;
                let start = t_issue.max(ldst_free);
                let mut worst_latency = gpu.l1_latency as f64;
                let trans =
                    &cl.arena[op.trans_start as usize..(op.trans_start + op.trans_len) as usize];
                let ntrans = trans.len() as f64;
                if gpu.l1_caches_globals {
                    let segment = gpu.load_segment_bytes();
                    for &line in trans {
                        match l1.read(line) {
                            Access::Hit => {
                                ev.l1_global_load_hit += 1.0;
                            }
                            Access::Miss => {
                                ev.l1_global_load_miss += 1.0;
                                worst_latency = worst_latency.max(gpu.l2_latency as f64);
                                let sectors = (segment / 32).max(1) as u64;
                                for s in 0..sectors {
                                    ev.l2_read_transactions += 1.0;
                                    match l2.read(line + s * 32) {
                                        Access::Hit => ev.l2_read_hits += 1.0,
                                        Access::Miss => {
                                            ev.dram_read_transactions += 1.0;
                                            dram_bytes += 32.0;
                                            worst_latency =
                                                worst_latency.max(gpu.dram_latency as f64);
                                        }
                                    }
                                }
                            }
                        }
                    }
                } else {
                    worst_latency = gpu.l2_latency as f64;
                    for &sec in trans {
                        ev.l2_read_transactions += 1.0;
                        match l2.read(sec) {
                            Access::Hit => ev.l2_read_hits += 1.0,
                            Access::Miss => {
                                ev.dram_read_transactions += 1.0;
                                dram_bytes += 32.0;
                                worst_latency = worst_latency.max(gpu.dram_latency as f64);
                            }
                        }
                    }
                }
                ev.global_load_transactions += ntrans;
                ev.inst_issued += ntrans.max(1.0);
                let busy = ntrans.max(1.0) * ldst_period;
                ldst_free = start + busy;
                ev.ldst_busy_cycles += busy;
                start + worst_latency
            }
            OpKind::StoreGlobal => {
                ev.gst_request += 1.0;
                ev.gst_requested_bytes += op.req_bytes;
                ev.inst_executed += 1.0;
                ev.thread_inst_executed += lanes;
                let start = t_issue.max(ldst_free);
                let sectors =
                    &cl.arena[op.trans_start as usize..(op.trans_start + op.trans_len) as usize];
                if gpu.l1_caches_globals {
                    let evicts = &cl.arena
                        [op.evict_start as usize..(op.evict_start + op.evict_len) as usize];
                    for &line in evicts {
                        l1.write_evict(line);
                    }
                }
                for &sec in sectors {
                    ev.l2_write_transactions += 1.0;
                    let _ = l2.write_allocate(sec);
                    ev.dram_write_transactions += 1.0;
                    dram_bytes += 32.0;
                }
                ev.global_store_transactions += op.store_trans;
                let ntrans = sectors.len() as f64;
                ev.inst_issued += op.store_trans.max(1.0);
                let busy = ntrans.max(1.0) * ldst_period;
                ldst_free = start + busy;
                ev.ldst_busy_cycles += busy;
                start + 4.0
            }
            OpKind::Barrier => unreachable!("handled above"),
        };

        pc[wi] += 1;
        finish[wi] = next_ready;
        makespan = makespan.max(next_ready);
        if pc[wi] < w.len {
            ready.push(Reverse((Time(next_ready), wi)));
        }
    }

    for f in &finish {
        ev.active_warp_cycles += *f;
    }
    let cycles = makespan.max(1.0);
    ev.elapsed_cycles = cycles;
    ev.active_cycles = cycles;
    ev.issue_slots = cycles * gpu.issue_width() as f64;
    ev.time_seconds = cycles / (gpu.clock_ghz * 1e9);
    SmResult {
        cycles,
        events: ev,
        dram_bytes,
    }
}

/// Compiles and executes a resident set: the drop-in, bit-identical
/// replacement for [`crate::sm::simulate_sm`] the launch engine uses.
pub fn simulate_resident_set(
    gpu: &GpuConfig,
    blocks: &[BlockTrace],
    l1: &mut Cache,
    l2: &mut Cache,
) -> Result<SmResult> {
    let cl = compile(gpu, blocks)?;
    Ok(execute(gpu, &cl, l1, l2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sm::simulate_sm;
    use crate::trace::{first_lanes, FULL_MASK};

    fn caches(g: &GpuConfig) -> (Cache, Cache) {
        (
            Cache::new(g.l1_size, g.l1_tag_line(), g.l1_assoc),
            Cache::new(g.l2_size / g.num_sms, g.l2_line.max(32), g.l2_assoc),
        )
    }

    fn assert_bit_identical(g: &GpuConfig, blocks: &[BlockTrace]) {
        let (mut l1a, mut l2a) = caches(g);
        let reference = simulate_sm(g, blocks, &mut l1a, &mut l2a).unwrap();
        let (mut l1b, mut l2b) = caches(g);
        let soa = simulate_resident_set(g, blocks, &mut l1b, &mut l2b).unwrap();
        assert_eq!(reference.cycles.to_bits(), soa.cycles.to_bits());
        assert_eq!(reference.dram_bytes.to_bits(), soa.dram_bytes.to_bits());
        let (a, b) = (reference.events.as_array(), soa.events.as_array());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "event field {i} diverges: {x} vs {y}"
            );
        }
    }

    fn mixed_block(seed: u64) -> BlockTrace {
        let mut b = BlockTrace::with_warps(4);
        for (w, stream) in b.warps.iter_mut().enumerate() {
            let base = seed + (w as u64) * 4096;
            stream.push(WarpInstruction::LoadGlobal {
                addrs: (0..32).map(|i| base + i * 4).collect(),
                width: 4,
                mask: FULL_MASK,
            });
            stream.push(WarpInstruction::LoadShared {
                offsets: (0..32).map(|i| i * 8).collect(),
                width: 4,
                mask: FULL_MASK,
            });
            stream.push(WarpInstruction::Alu {
                count: 7,
                mask: first_lanes(17),
            });
            stream.push(WarpInstruction::Barrier);
            stream.push(WarpInstruction::Branch {
                divergent: w % 2 == 0,
                mask: FULL_MASK,
            });
            stream.push(WarpInstruction::Sfu {
                mask: first_lanes(9),
            });
            stream.push(WarpInstruction::StoreShared {
                offsets: (0..32).map(|i| i * 4).collect(),
                width: 4,
                mask: first_lanes(23),
            });
            stream.push(WarpInstruction::StoreGlobal {
                addrs: (0..32).map(|i| base + (1 << 20) + i * 512).collect(),
                width: 8,
                mask: FULL_MASK,
            });
        }
        b
    }

    #[test]
    fn matches_reference_on_fermi() {
        assert_bit_identical(
            &GpuConfig::gtx580(),
            &[mixed_block(0), mixed_block(1 << 16)],
        );
    }

    #[test]
    fn matches_reference_on_kepler() {
        assert_bit_identical(&GpuConfig::k20m(), &[mixed_block(0), mixed_block(1 << 16)]);
    }

    #[test]
    fn matches_reference_across_the_zoo() {
        // Every memory-path flavour beyond the paper pair: L1-bypassing
        // Maxwell and the sector-tagged Pascal/Volta L1s.
        for g in [
            GpuConfig::gtx750ti(),
            GpuConfig::gtx980(),
            GpuConfig::gtx1080(),
            GpuConfig::p100(),
            GpuConfig::titanv(),
            GpuConfig::v100(),
        ] {
            assert_bit_identical(&g, &[mixed_block(0), mixed_block(1 << 16)]);
        }
    }

    #[test]
    fn matches_reference_on_empty_and_tiny_blocks() {
        let mut uneven = BlockTrace::with_warps(3);
        uneven.warps[1].push(WarpInstruction::Alu {
            count: 1,
            mask: FULL_MASK,
        });
        assert_bit_identical(&GpuConfig::gtx580(), &[BlockTrace::with_warps(2), uneven]);
    }

    #[test]
    fn rejects_invalid_traces_like_reference() {
        let g = GpuConfig::gtx580();
        let mut bad = BlockTrace::with_warps(2);
        bad.warps[0].push(WarpInstruction::Barrier);
        let (mut l1, mut l2) = caches(&g);
        assert!(simulate_resident_set(&g, &[bad], &mut l1, &mut l2).is_err());
    }
}
