//! Shared-memory bank-conflict model.
//!
//! Shared memory is divided into `banks` (32 on Fermi/Kepler) of
//! `bank_width`-byte words. A warp's shared access completes in one pass iff
//! every active lane touches a distinct bank *or* lanes touching the same
//! bank read the same word (broadcast). Otherwise the access replays once per
//! extra word mapped to the most-contended bank — the mechanism behind
//! `reduce1`'s `shared_replay_overhead` bottleneck (paper §5.2).

use crate::trace::LaneMask;

/// Computes the conflict degree of a shared-memory access: the maximum
/// number of *distinct words* any single bank must serve. Degree 1 means
/// conflict-free; degree `d` costs `d - 1` replays.
pub fn conflict_degree(
    offsets: &[u32],
    width: u8,
    mask: LaneMask,
    banks: u32,
    bank_width: u32,
) -> u32 {
    debug_assert!(banks.is_power_of_two());
    // Words per bank this access touches; small fixed arrays would also work
    // but a Vec keeps `banks` flexible.
    let mut per_bank: Vec<Vec<u32>> = vec![Vec::new(); banks as usize];
    let words_per_access = (width as u32).div_ceil(bank_width).max(1);
    for (lane, &off) in offsets.iter().enumerate() {
        if mask & (1 << lane) == 0 {
            continue;
        }
        for w in 0..words_per_access {
            let word = off / bank_width + w;
            let bank = (word % banks) as usize;
            if !per_bank[bank].contains(&word) {
                per_bank[bank].push(word);
            }
        }
    }
    per_bank
        .iter()
        .map(|v| v.len() as u32)
        .max()
        .unwrap_or(0)
        .max(1)
}

/// Replays for an access: `conflict_degree - 1`.
pub fn replays(offsets: &[u32], width: u8, mask: LaneMask, banks: u32, bank_width: u32) -> u32 {
    conflict_degree(offsets, width, mask, banks, bank_width) - 1
}

/// Reusable scratch space for [`conflict_degree_scratch`], so the SoA batch
/// compiler evaluates every shared access in a launch without allocating the
/// per-bank `Vec<Vec<u32>>` of [`conflict_degree`] each time.
#[derive(Debug, Default)]
pub struct BankScratch {
    words: Vec<u32>,
    counts: Vec<u32>,
}

impl BankScratch {
    /// Fresh scratch space (buffers grow on first use).
    pub fn new() -> BankScratch {
        BankScratch::default()
    }
}

/// Allocation-free equivalent of [`conflict_degree`]: the touched words are
/// collected into `scratch`, sorted and deduplicated, then counted per bank.
/// Produces the identical degree for every input.
pub fn conflict_degree_scratch(
    offsets: &[u32],
    width: u8,
    mask: LaneMask,
    banks: u32,
    bank_width: u32,
    scratch: &mut BankScratch,
) -> u32 {
    debug_assert!(banks.is_power_of_two());
    scratch.words.clear();
    let words_per_access = (width as u32).div_ceil(bank_width).max(1);
    for (lane, &off) in offsets.iter().enumerate() {
        if mask & (1 << lane) == 0 {
            continue;
        }
        for w in 0..words_per_access {
            scratch.words.push(off / bank_width + w);
        }
    }
    scratch.words.sort_unstable();
    scratch.words.dedup();
    if scratch.counts.len() < banks as usize {
        scratch.counts.resize(banks as usize, 0);
    }
    let mut degree = 1u32;
    for &w in &scratch.words {
        let b = (w % banks) as usize;
        scratch.counts[b] += 1;
        degree = degree.max(scratch.counts[b]);
    }
    // Reset only the touched banks so the next access starts clean.
    for &w in &scratch.words {
        scratch.counts[(w % banks) as usize] = 0;
    }
    degree
}

/// Allocation-free equivalent of [`replays`].
pub fn replays_scratch(
    offsets: &[u32],
    width: u8,
    mask: LaneMask,
    banks: u32,
    bank_width: u32,
    scratch: &mut BankScratch,
) -> u32 {
    conflict_degree_scratch(offsets, width, mask, banks, bank_width, scratch) - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::FULL_MASK;

    fn offs(stride: u32) -> Vec<u32> {
        (0..32).map(|i| i * stride).collect()
    }

    #[test]
    fn unit_stride_is_conflict_free() {
        assert_eq!(conflict_degree(&offs(4), 4, FULL_MASK, 32, 4), 1);
        assert_eq!(replays(&offs(4), 4, FULL_MASK, 32, 4), 0);
    }

    #[test]
    fn stride_two_words_gives_two_way_conflict() {
        // Offsets 0,8,16,...: words 0,2,4,...,62; banks 0,2,...,30 each get
        // two distinct words.
        assert_eq!(conflict_degree(&offs(8), 4, FULL_MASK, 32, 4), 2);
    }

    #[test]
    fn stride_doubling_doubles_conflicts() {
        // This is exactly the reduce1 pattern: index = 2*s*tid.
        assert_eq!(conflict_degree(&offs(16), 4, FULL_MASK, 32, 4), 4);
        assert_eq!(conflict_degree(&offs(32), 4, FULL_MASK, 32, 4), 8);
        assert_eq!(conflict_degree(&offs(64), 4, FULL_MASK, 32, 4), 16);
    }

    #[test]
    fn same_word_broadcast_is_free() {
        let offsets = vec![64u32; 32];
        assert_eq!(conflict_degree(&offsets, 4, FULL_MASK, 32, 4), 1);
    }

    #[test]
    fn same_bank_different_words_conflict() {
        // Lanes alternate between word 0 and word 32 (both bank 0).
        let offsets: Vec<u32> = (0..32).map(|i| if i % 2 == 0 { 0 } else { 128 }).collect();
        assert_eq!(conflict_degree(&offsets, 4, FULL_MASK, 32, 4), 2);
    }

    #[test]
    fn inactive_lanes_do_not_conflict() {
        // Only lanes 0 and 1 active, touching the same bank's two words.
        let mut offsets = vec![0u32; 32];
        offsets[1] = 128;
        assert_eq!(conflict_degree(&offsets, 4, 0b11, 32, 4), 2);
        // Same pattern with lane 1 inactive: conflict-free.
        assert_eq!(conflict_degree(&offsets, 4, 0b01, 32, 4), 1);
    }

    #[test]
    fn empty_mask_degree_is_one() {
        assert_eq!(conflict_degree(&offs(4), 4, 0, 32, 4), 1);
        assert_eq!(replays(&offs(4), 4, 0, 32, 4), 0);
    }

    #[test]
    fn double_width_access_spans_two_banks() {
        // 8-byte accesses with 8-byte stride: each lane covers 2 words; 32
        // lanes cover 64 words across 32 banks -> 2 words per bank.
        assert_eq!(conflict_degree(&offs(8), 8, FULL_MASK, 32, 4), 2);
    }

    #[test]
    fn worst_case_all_lanes_same_bank() {
        let offsets: Vec<u32> = (0..32).map(|i| i * 128).collect();
        assert_eq!(conflict_degree(&offsets, 4, FULL_MASK, 32, 4), 32);
        assert_eq!(replays(&offsets, 4, FULL_MASK, 32, 4), 31);
    }
}
