//! Persistent, cross-process launch-result cache.
//!
//! The in-memory [`crate::memo::SimCache`] dies with its process, so every
//! `train` run, `bench_sim` invocation, and bf-serve instance re-simulates
//! launches the previous run already paid for. This module adds the disk
//! tier: a content-addressed, append-only log keyed by the same 128-bit
//! launch digest, shared by every process pointed at the same directory.
//!
//! ## Format
//!
//! One file per schema version, `simcache-v{N}.bin`:
//!
//! ```text
//! header:  "BFSC" magic + u32 LE schema version
//! record:  u32 LE record marker (0xBF5C_C0DE)
//!          u32 LE payload length
//!          u64 LE FNV-1a checksum of the payload
//!          payload: u128 key + LaunchResult (all f64 stored as to_bits u64)
//! ```
//!
//! Floats are stored as raw IEEE bits, so a round-trip is bit-exact — the
//! same determinism contract the in-memory cache honours. The schema
//! version lives in both the filename (so incompatible processes never
//! fight over one file) and the header (corruption guard); bump
//! [`SCHEMA_VERSION`] whenever the payload layout or the meaning of any
//! field changes.
//!
//! ## Corruption tolerance
//!
//! Loading never panics and never fails the simulation: a bad header
//! quarantines the whole file (fresh cache), and a bad record (truncated
//! tail from a killed process, torn concurrent append, flipped bit) is
//! skipped by scanning forward to the next record marker. Skipped bytes are
//! counted and exposed via [`DiskCache::skipped_bytes`].
//!
//! ## Eviction
//!
//! Appends grow the log; when it exceeds the size cap
//! (`BF_SIM_CACHE_MAX_MB`, default 512) the file is compacted in place:
//! newest entries are kept up to half the cap, written to a temp file and
//! atomically renamed over the log. Concurrent writers holding the old
//! inode lose their subsequent appends — acceptable for a cache, where a
//! lost entry only costs a future re-simulation.

use crate::counters::{RawEvents, RAW_EVENT_FIELDS};
use crate::engine::LaunchResult;
use crate::occupancy::{Occupancy, OccupancyLimiter};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Bump whenever the record layout *or* simulator semantics change (the
/// launch key also folds in `memo::SIM_CONTENT_VERSION`, so either bump
/// invalidates stale results).
pub const SCHEMA_VERSION: u32 = 1;

const FILE_MAGIC: &[u8; 4] = b"BFSC";
const RECORD_MARKER: u32 = 0xBF5C_C0DE;
/// Fixed payload size: key + time + events + occupancy + waves + blocks.
const PAYLOAD_LEN: usize = 16 + 8 + RAW_EVENT_FIELDS * 8 + (8 + 8 + 8 + 1) + 8 + 8;
const RECORD_HEADER_LEN: usize = 4 + 4 + 8;
const HEADER_LEN: usize = 8;

/// Default size cap in megabytes (override with `BF_SIM_CACHE_MAX_MB`).
const DEFAULT_MAX_MB: u64 = 512;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn limiter_code(l: OccupancyLimiter) -> u8 {
    match l {
        OccupancyLimiter::BlockSlots => 0,
        OccupancyLimiter::WarpSlots => 1,
        OccupancyLimiter::Registers => 2,
        OccupancyLimiter::SharedMemory => 3,
        OccupancyLimiter::GridSize => 4,
    }
}

fn limiter_from(code: u8) -> Option<OccupancyLimiter> {
    Some(match code {
        0 => OccupancyLimiter::BlockSlots,
        1 => OccupancyLimiter::WarpSlots,
        2 => OccupancyLimiter::Registers,
        3 => OccupancyLimiter::SharedMemory,
        4 => OccupancyLimiter::GridSize,
        _ => return None,
    })
}

fn encode_payload(key: u128, r: &LaunchResult, out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&r.time_seconds.to_bits().to_le_bytes());
    for v in r.events.as_array() {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out.extend_from_slice(&(r.occupancy.blocks_per_sm as u64).to_le_bytes());
    out.extend_from_slice(&(r.occupancy.warps_per_sm as u64).to_le_bytes());
    out.extend_from_slice(&r.occupancy.theoretical.to_bits().to_le_bytes());
    out.push(limiter_code(r.occupancy.limiter));
    out.extend_from_slice(&(r.waves as u64).to_le_bytes());
    out.extend_from_slice(&(r.sampled_blocks as u64).to_le_bytes());
    debug_assert_eq!(out.len(), PAYLOAD_LEN);
}

fn decode_payload(p: &[u8]) -> Option<(u128, LaunchResult)> {
    if p.len() != PAYLOAD_LEN {
        return None;
    }
    let mut pos = 0usize;
    let mut take = |n: usize| {
        let s = &p[pos..pos + n];
        pos += n;
        s
    };
    let key = u128::from_le_bytes(take(16).try_into().ok()?);
    let f64_at = |s: &[u8]| f64::from_bits(u64::from_le_bytes(s.try_into().unwrap()));
    let time_seconds = f64_at(take(8));
    let mut events = [0.0f64; RAW_EVENT_FIELDS];
    for e in &mut events {
        *e = f64_at(take(8));
    }
    let blocks_per_sm = u64::from_le_bytes(take(8).try_into().ok()?) as usize;
    let warps_per_sm = u64::from_le_bytes(take(8).try_into().ok()?) as usize;
    let theoretical = f64_at(take(8));
    let limiter = limiter_from(take(1)[0])?;
    let waves = u64::from_le_bytes(take(8).try_into().ok()?) as usize;
    let sampled_blocks = u64::from_le_bytes(take(8).try_into().ok()?) as usize;
    Some((
        key,
        LaunchResult {
            time_seconds,
            events: RawEvents::from_array(events),
            occupancy: Occupancy {
                blocks_per_sm,
                warps_per_sm,
                theoretical,
                limiter,
            },
            waves,
            sampled_blocks,
        },
    ))
}

fn encode_record(key: u128, r: &LaunchResult, out: &mut Vec<u8>) {
    let mut payload = Vec::with_capacity(PAYLOAD_LEN);
    encode_payload(key, r, &mut payload);
    out.clear();
    out.extend_from_slice(&RECORD_MARKER.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
}

struct DiskInner {
    file: File,
    index: HashMap<u128, LaunchResult>,
    /// Keys in append order (newest last); drives eviction.
    order: Vec<u128>,
    file_bytes: u64,
}

/// A shared handle to one on-disk cache directory. Thread-safe; typically
/// held as `Arc` inside every [`crate::memo::SimCache`] of the process via
/// the [`from_env`] registry.
pub struct DiskCache {
    path: PathBuf,
    max_bytes: u64,
    skipped: AtomicU64,
    inner: Mutex<DiskInner>,
}

impl DiskCache {
    /// Opens (creating if needed) the cache in `dir` and loads its index.
    /// Corrupt content is skipped, never fatal.
    pub fn open(dir: &Path) -> std::io::Result<DiskCache> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("simcache-v{SCHEMA_VERSION}.bin"));
        let max_bytes = max_cache_bytes();
        let cache = DiskCache {
            path: path.clone(),
            max_bytes,
            skipped: AtomicU64::new(0),
            inner: Mutex::new(DiskInner {
                file: OpenOptions::new().create(true).append(true).open(&path)?,
                index: HashMap::new(),
                order: Vec::new(),
                file_bytes: 0,
            }),
        };
        cache.load()?;
        Ok(cache)
    }

    fn load(&self) -> std::io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        let mut bytes = Vec::new();
        File::open(&self.path)?.read_to_end(&mut bytes)?;
        if bytes.is_empty() {
            inner.file.write_all(FILE_MAGIC)?;
            inner.file.write_all(&SCHEMA_VERSION.to_le_bytes())?;
            inner.file_bytes = HEADER_LEN as u64;
            return Ok(());
        }
        if bytes.len() < HEADER_LEN
            || &bytes[..4] != FILE_MAGIC
            || bytes[4..8] != SCHEMA_VERSION.to_le_bytes()
        {
            // Quarantine: a foreign or mangled file starts over — never an
            // error, never a panic.
            self.skipped
                .fetch_add(bytes.len() as u64, Ordering::Relaxed);
            drop(std::fs::remove_file(&self.path));
            inner.file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.path)?;
            inner.file.write_all(FILE_MAGIC)?;
            inner.file.write_all(&SCHEMA_VERSION.to_le_bytes())?;
            inner.file_bytes = HEADER_LEN as u64;
            return Ok(());
        }
        let mut pos = HEADER_LEN;
        let mut skipped = 0u64;
        while pos + RECORD_HEADER_LEN <= bytes.len() {
            let marker = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
            if marker != RECORD_MARKER {
                pos += 1;
                skipped += 1;
                continue;
            }
            let len = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap()) as usize;
            let cksum = u64::from_le_bytes(bytes[pos + 8..pos + 16].try_into().unwrap());
            let start = pos + RECORD_HEADER_LEN;
            let decoded = (len == PAYLOAD_LEN && start + len <= bytes.len())
                .then(|| &bytes[start..start + len])
                .filter(|payload| fnv1a(payload) == cksum)
                .and_then(decode_payload);
            match decoded {
                Some((key, result)) => {
                    if inner.index.insert(key, result).is_none() {
                        inner.order.push(key);
                    }
                    pos = start + len;
                }
                None => {
                    // Resync: scan forward for the next plausible record.
                    pos += 1;
                    skipped += 1;
                }
            }
        }
        skipped += (bytes.len() - pos.min(bytes.len())) as u64;
        self.skipped.fetch_add(skipped, Ordering::Relaxed);
        inner.file_bytes = bytes.len() as u64;
        Ok(())
    }

    /// Number of distinct cached launches.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().index.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of corrupt content skipped during loads (diagnostics).
    pub fn skipped_bytes(&self) -> u64 {
        self.skipped.load(Ordering::Relaxed)
    }

    /// The log file backing this cache.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Looks up a launch result. Pure index read — no I/O.
    pub fn get(&self, key: u128) -> Option<LaunchResult> {
        self.inner.lock().unwrap().index.get(&key).cloned()
    }

    /// Stores a launch result: updates the index and appends one record.
    /// I/O failure degrades to in-memory-only behaviour (callers ignore the
    /// error beyond optional logging).
    pub fn put(&self, key: u128, result: &LaunchResult) -> std::io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        if inner.index.insert(key, result.clone()).is_none() {
            inner.order.push(key);
        }
        let mut record = Vec::with_capacity(RECORD_HEADER_LEN + PAYLOAD_LEN);
        encode_record(key, result, &mut record);
        inner.file.write_all(&record)?;
        inner.file_bytes += record.len() as u64;
        if inner.file_bytes > self.max_bytes {
            self.compact(&mut inner)?;
        }
        Ok(())
    }

    /// Rewrites the log keeping the newest entries up to half the size cap,
    /// then atomically replaces it.
    fn compact(&self, inner: &mut DiskInner) -> std::io::Result<()> {
        let record_len = (RECORD_HEADER_LEN + PAYLOAD_LEN) as u64;
        let budget = (self.max_bytes / 2).max(record_len);
        let keep_n = ((budget.saturating_sub(HEADER_LEN as u64)) / record_len) as usize;
        let start = inner.order.len().saturating_sub(keep_n);
        let keep: Vec<u128> = inner.order[start..].to_vec();
        let tmp = self.path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(FILE_MAGIC)?;
            f.write_all(&SCHEMA_VERSION.to_le_bytes())?;
            let mut record = Vec::with_capacity(RECORD_HEADER_LEN + PAYLOAD_LEN);
            for &key in &keep {
                let result = inner.index[&key].clone();
                encode_record(key, &result, &mut record);
                f.write_all(&record)?;
            }
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        let kept: std::collections::HashSet<u128> = keep.iter().copied().collect();
        inner.index.retain(|k, _| kept.contains(k));
        inner.order = keep;
        inner.file = OpenOptions::new().append(true).open(&self.path)?;
        inner.file_bytes = HEADER_LEN as u64 + record_len * inner.order.len() as u64;
        Ok(())
    }
}

fn max_cache_bytes() -> u64 {
    std::env::var("BF_SIM_CACHE_MAX_MB")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(DEFAULT_MAX_MB)
        .max(1)
        * 1024
        * 1024
}

/// Resolves `BF_SIM_CACHE_DIR`: unset or empty disables the disk tier;
/// `auto`/`default` picks `$XDG_CACHE_HOME/blackforest/simcache` (falling
/// back to `$HOME/.cache/...`); anything else is used as the directory.
pub fn resolve_cache_dir() -> Option<PathBuf> {
    let raw = std::env::var("BF_SIM_CACHE_DIR").ok()?;
    if raw.is_empty() {
        return None;
    }
    if raw == "auto" || raw == "default" {
        let base = std::env::var("XDG_CACHE_HOME")
            .ok()
            .filter(|v| !v.is_empty())
            .map(PathBuf::from)
            .or_else(|| {
                std::env::var("HOME")
                    .ok()
                    .map(|h| PathBuf::from(h).join(".cache"))
            })?;
        return Some(base.join("blackforest").join("simcache"));
    }
    Some(PathBuf::from(raw))
}

/// Per-directory registry so every `SimCache` in the process shares one
/// handle (one index, one append stream) per cache directory.
fn registry() -> &'static Mutex<HashMap<PathBuf, Arc<DiskCache>>> {
    static REGISTRY: OnceLock<Mutex<HashMap<PathBuf, Arc<DiskCache>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Opens (or reuses) the disk cache selected by `BF_SIM_CACHE_DIR`.
/// Returns `None` when the env var is unset or the directory cannot be
/// opened — the caller silently stays memory-only.
pub fn from_env() -> Option<Arc<DiskCache>> {
    let dir = resolve_cache_dir()?;
    let mut reg = registry().lock().unwrap();
    if let Some(c) = reg.get(&dir) {
        return Some(Arc::clone(c));
    }
    match DiskCache::open(&dir) {
        Ok(c) => {
            let c = Arc::new(c);
            reg.insert(dir, Arc::clone(&c));
            Some(c)
        }
        Err(e) => {
            eprintln!("bf: disk sim-cache disabled ({}: {e})", dir.display());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::GpuConfig;
    use crate::engine::simulate_launch;
    use crate::trace::{BlockTrace, KernelTrace, LaunchConfig, WarpInstruction, FULL_MASK};

    struct Tiny(u64);

    impl KernelTrace for Tiny {
        fn name(&self) -> String {
            "tiny".into()
        }

        fn launch_config(&self) -> LaunchConfig {
            LaunchConfig {
                grid_blocks: 8,
                threads_per_block: 64,
                regs_per_thread: 16,
                shared_mem_per_block: 0,
            }
        }

        fn block_trace(&self, block_id: usize, _gpu: &GpuConfig) -> BlockTrace {
            let mut t = BlockTrace::with_warps(2);
            for (w, stream) in t.warps.iter_mut().enumerate() {
                let base = self.0 + (block_id * 2 + w) as u64 * 256;
                stream.push(WarpInstruction::LoadGlobal {
                    addrs: (0..32).map(|i| base + i * 4).collect(),
                    width: 4,
                    mask: FULL_MASK,
                });
            }
            t
        }
    }

    fn sample_result(seed: u64) -> LaunchResult {
        simulate_launch(&GpuConfig::gtx580(), &Tiny(seed)).unwrap()
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("bf-diskcache-{tag}-{}", std::process::id()));
        drop(std::fs::remove_dir_all(&d));
        d
    }

    fn assert_bit_identical(a: &LaunchResult, b: &LaunchResult) {
        assert_eq!(a.time_seconds.to_bits(), b.time_seconds.to_bits());
        let (ea, eb) = (a.events.as_array(), b.events.as_array());
        for (x, y) in ea.iter().zip(eb.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.occupancy.blocks_per_sm, b.occupancy.blocks_per_sm);
        assert_eq!(a.occupancy.warps_per_sm, b.occupancy.warps_per_sm);
        assert_eq!(
            a.occupancy.theoretical.to_bits(),
            b.occupancy.theoretical.to_bits()
        );
        assert_eq!(a.occupancy.limiter, b.occupancy.limiter);
        assert_eq!(a.waves, b.waves);
        assert_eq!(a.sampled_blocks, b.sampled_blocks);
    }

    #[test]
    fn roundtrip_is_bit_exact_across_reopen() {
        let dir = tmpdir("roundtrip");
        let r = sample_result(0x1000);
        {
            let c = DiskCache::open(&dir).unwrap();
            c.put(7, &r).unwrap();
            assert_bit_identical(&c.get(7).unwrap(), &r);
        }
        let c = DiskCache::open(&dir).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.skipped_bytes(), 0);
        assert_bit_identical(&c.get(7).unwrap(), &r);
        drop(std::fs::remove_dir_all(&dir));
    }

    #[test]
    fn truncated_tail_is_skipped_cleanly() {
        let dir = tmpdir("truncated");
        let (ra, rb) = (sample_result(0x1000), sample_result(0x2000));
        let path = {
            let c = DiskCache::open(&dir).unwrap();
            c.put(1, &ra).unwrap();
            c.put(2, &rb).unwrap();
            c.path().to_path_buf()
        };
        // Chop the last record in half: the survivor must still load.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - PAYLOAD_LEN / 2]).unwrap();
        let c = DiskCache::open(&dir).unwrap();
        assert_eq!(c.len(), 1);
        assert!(c.skipped_bytes() > 0);
        assert_bit_identical(&c.get(1).unwrap(), &ra);
        assert!(c.get(2).is_none());
        drop(std::fs::remove_dir_all(&dir));
    }

    #[test]
    fn flipped_bit_mid_file_resyncs_to_next_record() {
        let dir = tmpdir("bitflip");
        let (ra, rb) = (sample_result(0x1000), sample_result(0x2000));
        let path = {
            let c = DiskCache::open(&dir).unwrap();
            c.put(1, &ra).unwrap();
            c.put(2, &rb).unwrap();
            c.path().to_path_buf()
        };
        let mut bytes = std::fs::read(&path).unwrap();
        // Corrupt a payload byte of the first record.
        bytes[HEADER_LEN + RECORD_HEADER_LEN + 20] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let c = DiskCache::open(&dir).unwrap();
        assert_eq!(c.len(), 1, "second record should survive the resync");
        assert!(c.get(1).is_none());
        assert_bit_identical(&c.get(2).unwrap(), &rb);
        drop(std::fs::remove_dir_all(&dir));
    }

    #[test]
    fn foreign_file_is_quarantined_not_fatal() {
        let dir = tmpdir("foreign");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("simcache-v{SCHEMA_VERSION}.bin"));
        std::fs::write(&path, b"definitely not a cache").unwrap();
        let c = DiskCache::open(&dir).unwrap();
        assert_eq!(c.len(), 0);
        assert!(c.skipped_bytes() > 0);
        let r = sample_result(0x1000);
        c.put(9, &r).unwrap();
        drop(c);
        let c = DiskCache::open(&dir).unwrap();
        assert_eq!(c.len(), 1);
        drop(std::fs::remove_dir_all(&dir));
    }

    #[test]
    fn size_cap_evicts_oldest() {
        let dir = tmpdir("evict");
        std::env::set_var("BF_SIM_CACHE_MAX_MB", "1");
        let c = DiskCache::open(&dir).unwrap();
        std::env::remove_var("BF_SIM_CACHE_MAX_MB");
        let r = sample_result(0x1000);
        let record = (RECORD_HEADER_LEN + PAYLOAD_LEN) as u64;
        let n = (2 * 1024 * 1024 / record) as u128; // ~2x the cap
        for key in 0..n {
            c.put(key, &r).unwrap();
        }
        let size = std::fs::metadata(c.path()).unwrap().len();
        assert!(size <= 1024 * 1024, "log not compacted: {size} bytes");
        // Newest keys survive, oldest evicted.
        assert!(c.get(n - 1).is_some());
        assert!(c.get(0).is_none());
        drop(std::fs::remove_dir_all(&dir));
    }

    #[test]
    fn resolve_dir_auto_uses_cache_home() {
        // Direct path passes through untouched.
        std::env::set_var("BF_SIM_CACHE_DIR", "/tmp/bf-explicit");
        assert_eq!(resolve_cache_dir(), Some(PathBuf::from("/tmp/bf-explicit")));
        std::env::set_var("BF_SIM_CACHE_DIR", "");
        assert_eq!(resolve_cache_dir(), None);
        std::env::remove_var("BF_SIM_CACHE_DIR");
        assert_eq!(resolve_cache_dir(), None);
    }
}
