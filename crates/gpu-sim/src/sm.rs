//! Event-driven simulation of one streaming multiprocessor.
//!
//! The SM executes the resident thread blocks' warp streams under a greedy,
//! earliest-ready-first scheduler, modeling:
//!
//! * issue bandwidth ([`GpuConfig::issue_width`] = schedulers × dispatch
//!   ports instructions per cycle),
//! * pipeline throughput (ALU / LDST / SFU next-free times),
//! * dependent-issue latencies per instruction class,
//! * shared-memory bank-conflict replays (each replay re-occupies the LDST
//!   port and delays the warp),
//! * global-memory coalescing, L1/L2 lookup, and DRAM latency,
//! * `__syncthreads` barriers (warps park until the whole block arrives).
//!
//! The result is the SM-cycle count for the resident set plus the raw event
//! counts — everything the profiler needs, before wave scaling.

use crate::arch::{GpuArchitecture, GpuConfig};
use crate::banks;
use crate::cache::{Access, Cache};
use crate::coalesce::{coalesce, requested_bytes};
use crate::counters::RawEvents;
use crate::trace::{BlockTrace, WarpInstruction};
use crate::Result;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of simulating one resident set on one SM.
#[derive(Debug, Clone)]
pub struct SmResult {
    /// Cycles until the last resident warp retires.
    pub cycles: f64,
    /// Raw events accumulated by the resident set (unscaled).
    pub events: RawEvents,
    /// Bytes moved to/from DRAM by the resident set (for the wave-level
    /// bandwidth model).
    pub dram_bytes: f64,
}

/// Totally ordered f64 wrapper so the ready-queue is deterministic. Shared
/// with the SoA engine ([`crate::soa`]) so both schedulers order identically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Time(pub(crate) f64);

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

struct WarpState {
    block: usize,
    stream: Vec<WarpInstruction>,
    pc: usize,
    finish: f64,
}

struct BarrierState {
    arrived: usize,
    release_time: f64,
    parked: Vec<usize>,
    total_warps: usize,
}

/// Simulates the given resident blocks to completion on one SM.
///
/// `l1` and `l2` are the cache tag stores to use (the engine owns them so
/// state can persist across waves). Returns cycles, events, and DRAM bytes.
///
/// This is the *reference* interpreter: it re-derives coalescing and bank
/// conflicts per instruction, straight from the trace. The launch engine
/// runs the SoA batch engine ([`crate::soa`]) instead, which precompiles
/// those sweeps; the two are bit-identical (enforced by the
/// `soa_equivalence` proptest suite), and this path stays as the oracle.
pub fn simulate_sm(
    gpu: &GpuConfig,
    blocks: &[BlockTrace],
    l1: &mut Cache,
    l2: &mut Cache,
) -> Result<SmResult> {
    for b in blocks {
        b.validate()?;
    }
    let mut warps: Vec<WarpState> = Vec::new();
    let mut barriers: Vec<BarrierState> = Vec::new();
    for (bi, b) in blocks.iter().enumerate() {
        barriers.push(BarrierState {
            arrived: 0,
            release_time: 0.0,
            parked: Vec::new(),
            total_warps: b.warps.len(),
        });
        for w in &b.warps {
            warps.push(WarpState {
                block: bi,
                stream: w.clone(),
                pc: 0,
                finish: 0.0,
            });
        }
    }
    let mut ev = RawEvents {
        warps_launched: warps.len() as f64,
        blocks_launched: blocks.len() as f64,
        ..RawEvents::default()
    };

    // Ready queue keyed by (ready_time, warp_id) for determinism.
    let mut ready: BinaryHeap<Reverse<(Time, usize)>> = BinaryHeap::new();
    for i in 0..warps.len() {
        ready.push(Reverse((Time(0.0), i)));
    }

    // Pipeline next-free times.
    let mut issue_free = 0.0f64;
    let mut alu_free = 0.0f64;
    let mut ldst_free = 0.0f64;
    let mut sfu_free = 0.0f64;
    let issue_period = 1.0 / gpu.issue_width() as f64;
    let alu_period = 1.0 / gpu.alu_throughput;
    let ldst_period = 1.0 / gpu.ldst_units;
    let sfu_period = 1.0 / gpu.sfu_throughput;

    let mut dram_bytes = 0.0f64;
    let mut makespan = 0.0f64;

    while let Some(Reverse((Time(ready_t), wi))) = ready.pop() {
        let (instr, block_id) = {
            let w = &warps[wi];
            if w.pc >= w.stream.len() {
                continue;
            }
            (w.stream[w.pc].clone(), w.block)
        };
        // Barriers don't consume an issue slot in this model; handle first.
        if let WarpInstruction::Barrier = instr {
            ev.inst_executed += 1.0;
            ev.inst_issued += 1.0;
            let bar = &mut barriers[block_id];
            bar.arrived += 1;
            bar.release_time = bar.release_time.max(ready_t);
            warps[wi].pc += 1;
            if bar.arrived == bar.total_warps {
                // Release everyone (including this warp).
                let t = bar.release_time;
                bar.arrived = 0;
                bar.release_time = 0.0;
                let parked = std::mem::take(&mut bar.parked);
                for p in parked {
                    ready.push(Reverse((Time(t), p)));
                }
                ready.push(Reverse((Time(t), wi)));
            } else {
                bar.parked.push(wi);
            }
            continue;
        }

        let t_issue = ready_t.max(issue_free);
        issue_free = t_issue + issue_period;
        let lanes = instr.active_lanes() as f64;

        let next_ready = match &instr {
            WarpInstruction::Alu { count, .. } => {
                let c = *count as f64;
                let start = t_issue.max(alu_free);
                alu_free = start + c * alu_period;
                ev.inst_executed += c;
                ev.inst_issued += c;
                ev.thread_inst_executed += c * lanes;
                start + (c - 1.0) * alu_period + gpu.alu_latency as f64
            }
            WarpInstruction::Sfu { .. } => {
                let start = t_issue.max(sfu_free);
                sfu_free = start + sfu_period;
                ev.inst_executed += 1.0;
                ev.inst_issued += 1.0;
                ev.thread_inst_executed += lanes;
                start + gpu.sfu_latency as f64
            }
            WarpInstruction::Branch { divergent, .. } => {
                let start = t_issue.max(alu_free);
                alu_free = start + alu_period;
                ev.inst_executed += 1.0;
                ev.branch += 1.0;
                ev.thread_inst_executed += lanes;
                if *divergent {
                    ev.divergent_branch += 1.0;
                    // The diverged paths serialise: charge one replayed issue.
                    ev.inst_issued += 2.0;
                    start + 2.0 * gpu.alu_latency as f64
                } else {
                    ev.inst_issued += 1.0;
                    start + gpu.alu_latency as f64
                }
            }
            WarpInstruction::LoadShared {
                offsets,
                width,
                mask,
            } => {
                let r = banks::replays(
                    offsets,
                    *width,
                    *mask,
                    gpu.shared_banks as u32,
                    gpu.bank_width as u32,
                ) as f64;
                let start = t_issue.max(ldst_free);
                let busy = (1.0 + r) * ldst_period;
                ldst_free = start + busy;
                ev.ldst_busy_cycles += busy;
                ev.inst_executed += 1.0;
                ev.inst_issued += 1.0 + r;
                ev.shared_load += 1.0;
                ev.shared_load_replay += r;
                ev.thread_inst_executed += lanes;
                start + gpu.smem_latency as f64 + r
            }
            WarpInstruction::StoreShared {
                offsets,
                width,
                mask,
            } => {
                let r = banks::replays(
                    offsets,
                    *width,
                    *mask,
                    gpu.shared_banks as u32,
                    gpu.bank_width as u32,
                ) as f64;
                let start = t_issue.max(ldst_free);
                let busy = (1.0 + r) * ldst_period;
                ldst_free = start + busy;
                ev.ldst_busy_cycles += busy;
                ev.inst_executed += 1.0;
                ev.inst_issued += 1.0 + r;
                ev.shared_store += 1.0;
                ev.shared_store_replay += r;
                ev.thread_inst_executed += lanes;
                // Stores retire quickly; the warp doesn't wait for them.
                start + r + 2.0
            }
            WarpInstruction::LoadGlobal { addrs, width, mask } => {
                ev.gld_request += 1.0;
                ev.gld_requested_bytes += requested_bytes(*width, *mask) as f64;
                ev.inst_executed += 1.0;
                ev.thread_inst_executed += lanes;
                let start = t_issue.max(ldst_free);
                let mut worst_latency = gpu.l1_latency as f64;
                let ntrans: f64;
                if gpu.l1_caches_globals {
                    // Fermi: whole 128-byte L1 lines; Pascal/Volta: the
                    // same walk at 32-byte sector granularity
                    // (load_segment_bytes covers both).
                    let segment = gpu.load_segment_bytes();
                    let lines = coalesce(addrs, *width, *mask, segment);
                    ntrans = lines.len() as f64;
                    for line in &lines {
                        match l1.read(line.addr) {
                            Access::Hit => {
                                ev.l1_global_load_hit += 1.0;
                            }
                            Access::Miss => {
                                ev.l1_global_load_miss += 1.0;
                                worst_latency = worst_latency.max(gpu.l2_latency as f64);
                                // The refill is serviced as 32B L2 sectors:
                                // four per Fermi line, one per sector miss.
                                let sectors = (segment / 32).max(1) as u64;
                                for s in 0..sectors {
                                    ev.l2_read_transactions += 1.0;
                                    match l2.read(line.addr + s * 32) {
                                        Access::Hit => ev.l2_read_hits += 1.0,
                                        Access::Miss => {
                                            ev.dram_read_transactions += 1.0;
                                            dram_bytes += 32.0;
                                            worst_latency =
                                                worst_latency.max(gpu.dram_latency as f64);
                                        }
                                    }
                                }
                            }
                        }
                    }
                } else {
                    // Kepler/Maxwell: straight to L2 in 32-byte sectors.
                    let sectors = coalesce(addrs, *width, *mask, 32);
                    ntrans = sectors.len() as f64;
                    worst_latency = gpu.l2_latency as f64;
                    for sec in &sectors {
                        ev.l2_read_transactions += 1.0;
                        match l2.read(sec.addr) {
                            Access::Hit => ev.l2_read_hits += 1.0,
                            Access::Miss => {
                                ev.dram_read_transactions += 1.0;
                                dram_bytes += 32.0;
                                worst_latency = worst_latency.max(gpu.dram_latency as f64);
                            }
                        }
                    }
                }
                ev.global_load_transactions += ntrans;
                ev.inst_issued += ntrans.max(1.0);
                let busy = ntrans.max(1.0) * ldst_period;
                ldst_free = start + busy;
                ev.ldst_busy_cycles += busy;
                start + worst_latency
            }
            WarpInstruction::StoreGlobal { addrs, width, mask } => {
                ev.gst_request += 1.0;
                ev.gst_requested_bytes += requested_bytes(*width, *mask) as f64;
                ev.inst_executed += 1.0;
                ev.thread_inst_executed += lanes;
                let start = t_issue.max(ldst_free);
                // Stores are write-through to L2 in 32-byte sectors on
                // every architecture; global-caching L1s additionally
                // evict at their tag granularity (whole Fermi lines,
                // Pascal/Volta sectors).
                let sectors = coalesce(addrs, *width, *mask, 32);
                if gpu.l1_caches_globals {
                    let lines = coalesce(addrs, *width, *mask, gpu.l1_tag_line() as u32);
                    for line in &lines {
                        l1.write_evict(line.addr);
                    }
                }
                for sec in &sectors {
                    ev.l2_write_transactions += 1.0;
                    if l2.write_allocate(sec.addr) == Access::Miss {
                        // Dirty traffic eventually reaches DRAM; count it now.
                    }
                    ev.dram_write_transactions += 1.0;
                    dram_bytes += 32.0;
                }
                // Transaction granularity reported by the HW counter differs
                // from sectors: report in up-to-128-byte transactions.
                let store_trans = coalesce(addrs, *width, *mask, 128).len() as f64;
                ev.global_store_transactions += store_trans;
                let ntrans = sectors.len() as f64;
                ev.inst_issued += store_trans.max(1.0);
                let busy = ntrans.max(1.0) * ldst_period;
                ldst_free = start + busy;
                ev.ldst_busy_cycles += busy;
                // Fire-and-forget: short pipeline occupancy only.
                start + 4.0
            }
            WarpInstruction::Barrier => unreachable!("handled above"),
        };

        let w = &mut warps[wi];
        w.pc += 1;
        w.finish = next_ready;
        makespan = makespan.max(next_ready);
        if w.pc < w.stream.len() {
            ready.push(Reverse((Time(next_ready), wi)));
        }
    }

    // Residency integral: every warp is resident from 0 to its retire time.
    for w in &warps {
        ev.active_warp_cycles += w.finish;
    }
    let cycles = makespan.max(1.0);
    ev.elapsed_cycles = cycles;
    ev.active_cycles = cycles;
    ev.issue_slots = cycles * gpu.issue_width() as f64;
    ev.time_seconds = cycles / (gpu.clock_ghz * 1e9);
    Ok(SmResult {
        cycles,
        events: ev,
        dram_bytes,
    })
}

/// Convenience: the architecture-appropriate shared-conflict counter value
/// (summed load+store replays) — Fermi exposes it as
/// `l1_shared_bank_conflict`.
pub fn shared_conflicts(ev: &RawEvents, arch: GpuArchitecture) -> f64 {
    match arch {
        // Every modelled generation reports the sum of load and store
        // replays; only the counter *name* differs per architecture
        // (l1_shared_bank_conflict / shared_*_replay /
        // shared_*_bank_conflict — see the availability masks).
        GpuArchitecture::Fermi
        | GpuArchitecture::Kepler
        | GpuArchitecture::Maxwell
        | GpuArchitecture::Pascal
        | GpuArchitecture::Volta => ev.shared_load_replay + ev.shared_store_replay,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{first_lanes, BlockTrace, FULL_MASK};

    fn gpu() -> GpuConfig {
        GpuConfig::gtx580()
    }

    fn caches(g: &GpuConfig) -> (Cache, Cache) {
        (
            Cache::new(g.l1_size, g.l1_tag_line(), g.l1_assoc),
            Cache::new(g.l2_size / g.num_sms, g.l2_line.max(32), g.l2_assoc),
        )
    }

    fn run(g: &GpuConfig, blocks: &[BlockTrace]) -> SmResult {
        let (mut l1, mut l2) = caches(g);
        simulate_sm(g, blocks, &mut l1, &mut l2).unwrap()
    }

    fn coalesced_load(base: u64) -> WarpInstruction {
        WarpInstruction::LoadGlobal {
            addrs: (0..32).map(|i| base + i * 4).collect(),
            width: 4,
            mask: FULL_MASK,
        }
    }

    #[test]
    fn single_alu_warp_takes_latency() {
        let g = gpu();
        let mut b = BlockTrace::with_warps(1);
        b.warps[0].push(WarpInstruction::Alu {
            count: 1,
            mask: FULL_MASK,
        });
        let r = run(&g, &[b]);
        assert!((r.cycles - g.alu_latency as f64).abs() < 2.0);
        assert_eq!(r.events.inst_executed, 1.0);
    }

    #[test]
    fn dependent_alu_chain_accumulates() {
        let g = gpu();
        let mut one = BlockTrace::with_warps(1);
        one.warps[0].push(WarpInstruction::Alu {
            count: 1,
            mask: FULL_MASK,
        });
        let mut ten = BlockTrace::with_warps(1);
        for _ in 0..10 {
            ten.warps[0].push(WarpInstruction::Alu {
                count: 1,
                mask: FULL_MASK,
            });
        }
        let r1 = run(&g, &[one]);
        let r10 = run(&g, &[ten]);
        // Ten dependent instructions take ~10x the latency for one warp.
        assert!(r10.cycles > 8.0 * r1.cycles);
    }

    #[test]
    fn many_warps_hide_alu_latency() {
        let g = gpu();
        // 1 warp running 32 dependent ALU ops vs 32 warps each doing the
        // same: per-instruction cost should drop dramatically.
        let mut solo = BlockTrace::with_warps(1);
        for _ in 0..32 {
            solo.warps[0].push(WarpInstruction::Alu {
                count: 1,
                mask: FULL_MASK,
            });
        }
        let mut many = BlockTrace::with_warps(32);
        for w in &mut many.warps {
            for _ in 0..32 {
                w.push(WarpInstruction::Alu {
                    count: 1,
                    mask: FULL_MASK,
                });
            }
        }
        let r_solo = run(&g, &[solo]);
        let r_many = run(&g, &[many]);
        let per_instr_solo = r_solo.cycles / 32.0;
        let per_instr_many = r_many.cycles / (32.0 * 32.0);
        assert!(
            per_instr_many < per_instr_solo / 4.0,
            "latency hiding failed: {per_instr_solo} vs {per_instr_many}"
        );
    }

    #[test]
    fn coalesced_load_counts_one_transaction() {
        let g = gpu();
        let mut b = BlockTrace::with_warps(1);
        b.warps[0].push(coalesced_load(0));
        let r = run(&g, &[b]);
        assert_eq!(r.events.gld_request, 1.0);
        assert_eq!(r.events.global_load_transactions, 1.0);
        assert_eq!(r.events.l1_global_load_miss, 1.0);
        assert_eq!(r.events.l1_global_load_hit, 0.0);
        assert_eq!(r.events.l2_read_transactions, 4.0); // 128B = 4 sectors
        assert_eq!(r.events.gld_requested_bytes, 128.0);
    }

    #[test]
    fn repeated_load_hits_l1_on_fermi() {
        let g = gpu();
        let mut b = BlockTrace::with_warps(1);
        b.warps[0].push(coalesced_load(0));
        b.warps[0].push(coalesced_load(0));
        let r = run(&g, &[b]);
        assert_eq!(r.events.l1_global_load_hit, 1.0);
        assert_eq!(r.events.l1_global_load_miss, 1.0);
    }

    #[test]
    fn kepler_loads_bypass_l1() {
        let g = GpuConfig::k20m();
        let mut b = BlockTrace::with_warps(1);
        b.warps[0].push(coalesced_load(0));
        b.warps[0].push(coalesced_load(0));
        let r = run(&g, &[b]);
        assert_eq!(r.events.l1_global_load_hit, 0.0);
        assert_eq!(r.events.l1_global_load_miss, 0.0);
        assert_eq!(r.events.l2_read_transactions, 8.0);
        assert_eq!(r.events.l2_read_hits, 4.0); // second access hits L2
    }

    #[test]
    fn pascal_loads_cache_in_l1_at_sector_granularity() {
        let g = GpuConfig::gtx1080();
        let mut b = BlockTrace::with_warps(1);
        b.warps[0].push(coalesced_load(0));
        b.warps[0].push(coalesced_load(0));
        let r = run(&g, &[b]);
        // 128 requested bytes coalesce into 4 × 32B sectors, each tagged
        // separately in the sectored L1: 4 cold misses, then 4 hits.
        assert_eq!(r.events.global_load_transactions, 8.0);
        assert_eq!(r.events.l1_global_load_miss, 4.0);
        assert_eq!(r.events.l1_global_load_hit, 4.0);
        // Each sector miss refills exactly one L2 sector (no 128B lines).
        assert_eq!(r.events.l2_read_transactions, 4.0);
        assert_eq!(r.events.dram_read_transactions, 4.0);
    }

    #[test]
    fn maxwell_loads_bypass_l1_like_kepler() {
        let g = GpuConfig::gtx980();
        let mut b = BlockTrace::with_warps(1);
        b.warps[0].push(coalesced_load(0));
        b.warps[0].push(coalesced_load(0));
        let r = run(&g, &[b]);
        assert_eq!(r.events.l1_global_load_hit, 0.0);
        assert_eq!(r.events.l1_global_load_miss, 0.0);
        assert_eq!(r.events.l2_read_transactions, 8.0);
        assert_eq!(r.events.l2_read_hits, 4.0);
    }

    #[test]
    fn scattered_load_issues_replays() {
        let g = gpu();
        let mut b = BlockTrace::with_warps(1);
        b.warps[0].push(WarpInstruction::LoadGlobal {
            addrs: (0..32).map(|i| i * 512).collect(),
            width: 4,
            mask: FULL_MASK,
        });
        let r = run(&g, &[b]);
        assert_eq!(r.events.global_load_transactions, 32.0);
        assert_eq!(r.events.inst_executed, 1.0);
        assert!(r.events.inst_issued >= 32.0);
    }

    #[test]
    fn bank_conflicts_replay_shared_accesses() {
        let g = gpu();
        // Stride-8 word offsets: 2-way conflict -> 1 replay per access.
        let mut b = BlockTrace::with_warps(1);
        b.warps[0].push(WarpInstruction::LoadShared {
            offsets: (0..32).map(|i| i * 8).collect(),
            width: 4,
            mask: FULL_MASK,
        });
        let r = run(&g, &[b]);
        assert_eq!(r.events.shared_load, 1.0);
        assert_eq!(r.events.shared_load_replay, 1.0);
        assert_eq!(r.events.inst_issued, 2.0);
    }

    #[test]
    fn conflict_free_shared_access_has_no_replays() {
        let g = gpu();
        let mut b = BlockTrace::with_warps(1);
        b.warps[0].push(WarpInstruction::StoreShared {
            offsets: (0..32).map(|i| i * 4).collect(),
            width: 4,
            mask: FULL_MASK,
        });
        let r = run(&g, &[b]);
        assert_eq!(r.events.shared_store, 1.0);
        assert_eq!(r.events.shared_store_replay, 0.0);
    }

    #[test]
    fn barrier_synchronises_block() {
        let g = gpu();
        // Warp 0 does a long chain before the barrier; warp 1 arrives early.
        let mut b = BlockTrace::with_warps(2);
        for _ in 0..20 {
            b.warps[0].push(WarpInstruction::Alu {
                count: 1,
                mask: FULL_MASK,
            });
        }
        b.warps[0].push(WarpInstruction::Barrier);
        b.warps[1].push(WarpInstruction::Barrier);
        // After the barrier both do one ALU op.
        b.warps[0].push(WarpInstruction::Alu {
            count: 1,
            mask: FULL_MASK,
        });
        b.warps[1].push(WarpInstruction::Alu {
            count: 1,
            mask: FULL_MASK,
        });
        let r = run(&g, &[b]);
        // Warp 1's post-barrier work cannot start before warp 0's 20-op
        // chain completes.
        assert!(r.cycles > 20.0 * g.alu_latency as f64 * 0.8);
    }

    #[test]
    fn mismatched_barriers_rejected() {
        let g = gpu();
        let mut b = BlockTrace::with_warps(2);
        b.warps[0].push(WarpInstruction::Barrier);
        let (mut l1, mut l2) = caches(&g);
        assert!(simulate_sm(&g, &[b], &mut l1, &mut l2).is_err());
    }

    #[test]
    fn divergent_branch_counted_and_costed() {
        let g = gpu();
        let mut b = BlockTrace::with_warps(1);
        b.warps[0].push(WarpInstruction::Branch {
            divergent: true,
            mask: FULL_MASK,
        });
        b.warps[0].push(WarpInstruction::Branch {
            divergent: false,
            mask: FULL_MASK,
        });
        let r = run(&g, &[b]);
        assert_eq!(r.events.branch, 2.0);
        assert_eq!(r.events.divergent_branch, 1.0);
        assert_eq!(r.events.inst_issued, 3.0); // 2 + 1 replay
    }

    #[test]
    fn partial_warp_lowers_thread_inst() {
        let g = gpu();
        let mut b = BlockTrace::with_warps(1);
        b.warps[0].push(WarpInstruction::Alu {
            count: 1,
            mask: first_lanes(16),
        });
        let r = run(&g, &[b]);
        assert_eq!(r.events.thread_inst_executed, 16.0);
        assert_eq!(r.events.inst_executed, 1.0);
    }

    #[test]
    fn dram_bytes_accumulate_on_misses() {
        let g = gpu();
        let mut b = BlockTrace::with_warps(1);
        b.warps[0].push(coalesced_load(0));
        b.warps[0].push(WarpInstruction::StoreGlobal {
            addrs: (0..32).map(|i| 4096 + i * 4).collect(),
            width: 4,
            mask: FULL_MASK,
        });
        let r = run(&g, &[b]);
        // 128B load refill + 128B store write-through.
        assert_eq!(r.dram_bytes, 256.0);
        assert_eq!(r.events.dram_read_transactions, 4.0);
        assert_eq!(r.events.dram_write_transactions, 4.0);
    }

    #[test]
    fn store_counts_transaction_at_128b_granularity() {
        let g = gpu();
        let mut b = BlockTrace::with_warps(1);
        b.warps[0].push(WarpInstruction::StoreGlobal {
            addrs: (0..32).map(|i| i * 4).collect(),
            width: 4,
            mask: FULL_MASK,
        });
        let r = run(&g, &[b]);
        assert_eq!(r.events.global_store_transactions, 1.0);
        assert_eq!(r.events.l2_write_transactions, 4.0);
    }

    #[test]
    fn occupancy_integral_reflects_warp_count() {
        let g = gpu();
        let mut one = BlockTrace::with_warps(1);
        one.warps[0].push(WarpInstruction::Alu {
            count: 100,
            mask: FULL_MASK,
        });
        let r1 = run(&g, &[one]);
        let occ1 = r1.events.active_warp_cycles / r1.cycles;
        assert!(occ1 <= 1.0 + 1e-9);

        let mut many = BlockTrace::with_warps(8);
        for w in &mut many.warps {
            w.push(WarpInstruction::Alu {
                count: 100,
                mask: FULL_MASK,
            });
        }
        let r8 = run(&g, &[many]);
        let occ8 = r8.events.active_warp_cycles / r8.cycles;
        assert!(occ8 > 4.0, "expected >4 average active warps, got {occ8}");
    }

    #[test]
    fn deterministic_simulation() {
        let g = gpu();
        let mut b = BlockTrace::with_warps(4);
        for (i, w) in b.warps.iter_mut().enumerate() {
            w.push(coalesced_load((i as u64) * 4096));
            w.push(WarpInstruction::Alu {
                count: 7,
                mask: FULL_MASK,
            });
            w.push(WarpInstruction::Barrier);
            w.push(WarpInstruction::Alu {
                count: 3,
                mask: FULL_MASK,
            });
        }
        let r1 = run(&g, std::slice::from_ref(&b));
        let r2 = run(&g, std::slice::from_ref(&b));
        assert_eq!(r1.cycles, r2.cycles);
        assert_eq!(r1.events.inst_issued, r2.events.inst_issued);
    }
}
