//! A cycle-approximate, trace-driven GPU microarchitecture simulator.
//!
//! BlackForest (the paper) consumes two things from real hardware: elapsed
//! kernel time and nvprof hardware-performance-counter values. This crate is
//! the substitute substrate: it executes CUDA-like kernel *traces* — per-warp
//! instruction streams with real per-lane addresses — on a configurable GPU
//! model and emits both.
//!
//! The model reproduces the microarchitectural mechanisms the paper's
//! analyses hinge on:
//!
//! * **Occupancy** ([`occupancy`]) — resident thread blocks per SM limited by
//!   warp slots, registers, shared memory, and the block limit.
//! * **Coalescing** ([`coalesce`]) — per-lane global addresses are folded
//!   into 128-byte L1 transactions (Fermi) or 32-byte L2 sectors (Kepler,
//!   which does not cache global loads in L1).
//! * **Shared-memory bank conflicts** ([`banks`]) — 32 banks, 4-byte words,
//!   broadcast detection; conflict degree drives instruction replays.
//! * **Caches** ([`cache`]) — set-associative write-evict L1 and a shared L2.
//! * **Warp scheduling** ([`sm`]) — an event-driven greedy-then-oldest
//!   scheduler with issue-width, ALU/LDST/SFU pipeline, latency, and
//!   `__syncthreads` barrier modeling.
//! * **Wave execution and DRAM bandwidth** ([`engine`]) — launches execute in
//!   waves of `SMs x resident-blocks`; each wave's time is the max of its
//!   compute/latency time and its DRAM-bandwidth time.
//!
//! Because full per-thread simulation of large grids is intractable, the
//! engine samples representative thread blocks (all workloads studied in the
//! paper have homogeneous grids), simulates them in cycle detail, and scales
//! raw event counts to the full grid — the standard sampled-simulation
//! technique. See `DESIGN.md` for the fidelity argument.
//!
//! The [`profiler`] module is the nvprof stand-in: it derives the named
//! metrics of the paper's Table 1 (ipc, achieved_occupancy, replay overheads,
//! throughputs, ...) from raw event counts, honouring per-architecture
//! counter availability (e.g. `l1_shared_bank_conflict` exists only on Fermi,
//! `shared_load_replay`/`shared_store_replay` only on Kepler).
//!
//! Launch simulation is *pure* — each launch builds fresh cache state and
//! shares nothing with its neighbours — which the profiling layer exploits
//! twice: launches simulate **in parallel** (order-preserving accumulation
//! keeps results bit-identical to the sequential path; thread count follows
//! `RAYON_NUM_THREADS`), and structurally identical launches are **memoized**
//! through a content-addressed cache ([`memo`], disable with
//! `BF_SIM_CACHE=0`).

// Index-based loops are the clearer idiom throughout this numeric code
// (parallel arrays, in-place matrix updates), so the pedantic lint is off.
#![allow(clippy::needless_range_loop)]

pub mod arch;
pub mod banks;
pub mod blocks;
pub mod builder;
pub mod cache;
pub mod coalesce;
pub mod counters;
pub mod diskcache;
pub mod engine;
pub mod memo;
pub mod occupancy;
pub mod power;
pub mod profiler;
pub mod sm;
pub mod soa;
pub mod steady;
pub mod trace;

pub use arch::{GpuArchitecture, GpuConfig};
pub use blocks::{block_content_id, segment_stream, BlockSpan};
pub use builder::TraceBuilder;
pub use counters::{CounterSet, RawEvents};
pub use diskcache::DiskCache;
pub use engine::{
    loop_extrapolation_enabled, sample_block_ids, simulate_launch, simulate_sampled_launch_with,
    EngineOptions, LaunchResult,
};
pub use memo::{
    cache_enabled, global_cache_stats, global_disk_cache_stats, reset_global_cache_stats,
    simulate_launch_cached, simulate_launch_cached_fp, Bf128Hasher, CacheStats, SimCache,
    SIM_CONTENT_VERSION,
};
pub use occupancy::{occupancy, Occupancy, OccupancyLimiter};
pub use power::{estimate_power, PowerEstimate, PowerModel};
pub use profiler::{
    profile_application, profile_application_with, profile_applications, profile_kernel,
    simulate_launches, ProfiledRun,
};
pub use trace::{BlockTrace, KernelTrace, LaunchConfig, WarpInstruction};

/// Errors raised by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The launch configuration is invalid for the target GPU.
    BadLaunch(String),
    /// A kernel trace is malformed (e.g. mismatched barrier counts).
    BadTrace(String),
}

impl SimError {
    /// Prefixes the error message with the kernel (and launch position) it
    /// came from, so a malformed trace deep inside a thousand-launch batch
    /// points straight at the offender.
    pub fn in_kernel(self, kernel: &str, launch_index: usize) -> SimError {
        let tag = format!("kernel `{kernel}` (launch {launch_index}): ");
        match self {
            SimError::BadLaunch(msg) => SimError::BadLaunch(format!("{tag}{msg}")),
            SimError::BadTrace(msg) => SimError::BadTrace(format!("{tag}{msg}")),
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::BadLaunch(msg) => write!(f, "bad launch: {msg}"),
            SimError::BadTrace(msg) => write!(f, "bad trace: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, SimError>;
