//! A fluent builder for [`BlockTrace`]s.
//!
//! The kernels shipped in `bf-kernels` construct their traces by hand for
//! maximum control; downstream users modelling *their own* kernels usually
//! want something terser. [`TraceBuilder`] provides that: per-warp streams
//! with common access-pattern helpers (sequential, strided, broadcast) and
//! block-wide barriers that keep the trace structurally valid by
//! construction.
//!
//! ```
//! use gpu_sim::builder::TraceBuilder;
//! use gpu_sim::GpuConfig;
//!
//! let mut b = TraceBuilder::new(4);
//! for w in 0..4 {
//!     b.warp(w)
//!         .alu(2)
//!         .load_global_seq(0x1000 + w as u64 * 128, 4)
//!         .store_shared_seq((w * 128) as u32, 4);
//! }
//! b.barrier();
//! for w in 0..4 {
//!     b.warp(w).load_shared_strided(0, 8, 4).alu(1);
//! }
//! let trace = b.build().unwrap();
//! assert_eq!(trace.warps.len(), 4);
//! ```

use crate::trace::{BlockTrace, LaneMask, WarpInstruction, FULL_MASK};
use crate::Result;

/// Builds one block's warp streams.
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    warps: Vec<Vec<WarpInstruction>>,
}

impl TraceBuilder {
    /// Creates a builder for a block with `n_warps` warps.
    pub fn new(n_warps: usize) -> TraceBuilder {
        TraceBuilder {
            warps: vec![Vec::new(); n_warps],
        }
    }

    /// Returns a stream handle for warp `w` (full 32-lane mask by default).
    pub fn warp(&mut self, w: usize) -> WarpStream<'_> {
        WarpStream {
            stream: &mut self.warps[w],
            mask: FULL_MASK,
        }
    }

    /// Appends a block-wide `__syncthreads()` to every warp, keeping barrier
    /// counts matched by construction.
    pub fn barrier(&mut self) -> &mut Self {
        for w in &mut self.warps {
            w.push(WarpInstruction::Barrier);
        }
        self
    }

    /// Finalises and validates the trace.
    pub fn build(self) -> Result<BlockTrace> {
        let trace = BlockTrace { warps: self.warps };
        trace.validate()?;
        Ok(trace)
    }
}

/// A handle appending instructions to one warp's stream.
pub struct WarpStream<'a> {
    stream: &'a mut Vec<WarpInstruction>,
    mask: LaneMask,
}

impl WarpStream<'_> {
    /// Sets the active-lane mask for subsequent instructions.
    pub fn mask(mut self, mask: LaneMask) -> Self {
        self.mask = mask;
        self
    }

    /// Appends `count` back-to-back ALU instructions.
    pub fn alu(self, count: u32) -> Self {
        self.stream.push(WarpInstruction::Alu {
            count,
            mask: self.mask,
        });
        self
    }

    /// Appends one special-function-unit instruction.
    pub fn sfu(self) -> Self {
        self.stream.push(WarpInstruction::Sfu { mask: self.mask });
        self
    }

    /// Appends a branch; `divergent` marks intra-warp divergence.
    pub fn branch(self, divergent: bool) -> Self {
        self.stream.push(WarpInstruction::Branch {
            divergent,
            mask: self.mask,
        });
        self
    }

    /// Global load with explicit per-lane addresses.
    pub fn load_global(self, addrs: Vec<u64>, width: u8) -> Self {
        self.stream.push(WarpInstruction::LoadGlobal {
            addrs,
            width,
            mask: self.mask,
        });
        self
    }

    /// Perfectly coalesced global load: lane `i` reads `base + i*width`.
    pub fn load_global_seq(self, base: u64, width: u8) -> Self {
        let addrs = (0..32).map(|i| base + i * width as u64).collect();
        self.load_global(addrs, width)
    }

    /// Strided global load: lane `i` reads `base + i*stride` (uncoalesced
    /// when `stride` exceeds the access width).
    pub fn load_global_strided(self, base: u64, stride: u64, width: u8) -> Self {
        let addrs = (0..32).map(|i| base + i * stride).collect();
        self.load_global(addrs, width)
    }

    /// Broadcast global load: every lane reads the same address.
    pub fn load_global_broadcast(self, addr: u64, width: u8) -> Self {
        self.load_global(vec![addr; 32], width)
    }

    /// Global store with explicit per-lane addresses.
    pub fn store_global(self, addrs: Vec<u64>, width: u8) -> Self {
        self.stream.push(WarpInstruction::StoreGlobal {
            addrs,
            width,
            mask: self.mask,
        });
        self
    }

    /// Perfectly coalesced global store.
    pub fn store_global_seq(self, base: u64, width: u8) -> Self {
        let addrs = (0..32).map(|i| base + i * width as u64).collect();
        self.store_global(addrs, width)
    }

    /// Shared load with explicit per-lane byte offsets.
    pub fn load_shared(self, offsets: Vec<u32>, width: u8) -> Self {
        self.stream.push(WarpInstruction::LoadShared {
            offsets,
            width,
            mask: self.mask,
        });
        self
    }

    /// Conflict-free unit-stride shared load from `base`.
    pub fn load_shared_seq(self, base: u32, width: u8) -> Self {
        let offsets = (0..32).map(|i| base + i * width as u32).collect();
        self.load_shared(offsets, width)
    }

    /// Strided shared load: lane `i` reads byte offset `base + i*stride` —
    /// the bank-conflict generator (`stride` in *words* times 4).
    pub fn load_shared_strided(self, base: u32, stride: u32, width: u8) -> Self {
        let offsets = (0..32).map(|i| base + i * stride).collect();
        self.load_shared(offsets, width)
    }

    /// Shared store with explicit per-lane byte offsets.
    pub fn store_shared(self, offsets: Vec<u32>, width: u8) -> Self {
        self.stream.push(WarpInstruction::StoreShared {
            offsets,
            width,
            mask: self.mask,
        });
        self
    }

    /// Conflict-free unit-stride shared store.
    pub fn store_shared_seq(self, base: u32, width: u8) -> Self {
        let offsets = (0..32).map(|i| base + i * width as u32).collect();
        self.store_shared(offsets, width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Cache;
    use crate::sm::simulate_sm;
    use crate::trace::first_lanes;
    use crate::GpuConfig;

    #[test]
    fn builder_produces_valid_traces() {
        let mut b = TraceBuilder::new(2);
        for w in 0..2 {
            b.warp(w).alu(3).load_global_seq(w as u64 * 4096, 4);
        }
        b.barrier();
        for w in 0..2 {
            b.warp(w).load_shared_seq(0, 4).alu(1);
        }
        let t = b.build().unwrap();
        assert_eq!(t.warps.len(), 2);
        assert_eq!(t.total_instructions(), 2 * (3 + 1 + 1 + 1 + 1));
    }

    #[test]
    fn mismatched_manual_barrier_fails_validation() {
        let mut b = TraceBuilder::new(2);
        // Bypass the block-wide helper to create an invalid trace.
        b.warp(0).alu(1);
        b.warps[0].push(WarpInstruction::Barrier);
        assert!(b.build().is_err());
    }

    #[test]
    fn mask_applies_to_subsequent_instructions() {
        let mut b = TraceBuilder::new(1);
        b.warp(0).mask(first_lanes(8)).alu(1);
        let t = b.build().unwrap();
        match &t.warps[0][0] {
            WarpInstruction::Alu { mask, .. } => assert_eq!(*mask, 0xFF),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn strided_helpers_generate_expected_patterns() {
        let mut b = TraceBuilder::new(1);
        b.warp(0)
            .load_global_strided(0, 256, 4)
            .load_shared_strided(0, 8, 4)
            .load_global_broadcast(0x42000, 4);
        let t = b.build().unwrap();
        // Strided global: 32 distinct 128B lines.
        if let WarpInstruction::LoadGlobal { addrs, width, mask } = &t.warps[0][0] {
            assert_eq!(
                crate::coalesce::coalesce(addrs, *width, *mask, 128).len(),
                32
            );
        } else {
            panic!();
        }
        // Strided shared: 2-way conflicts.
        if let WarpInstruction::LoadShared {
            offsets,
            width,
            mask,
        } = &t.warps[0][1]
        {
            assert_eq!(crate::banks::replays(offsets, *width, *mask, 32, 4), 1);
        } else {
            panic!();
        }
        // Broadcast: one transaction.
        if let WarpInstruction::LoadGlobal { addrs, width, mask } = &t.warps[0][2] {
            assert_eq!(
                crate::coalesce::coalesce(addrs, *width, *mask, 128).len(),
                1
            );
        } else {
            panic!();
        }
    }

    #[test]
    fn built_traces_simulate() {
        let gpu = GpuConfig::gtx580();
        let mut b = TraceBuilder::new(4);
        for w in 0..4 {
            b.warp(w)
                .alu(2)
                .load_global_seq(w as u64 * 128, 4)
                .store_shared_seq(w as u32 * 128, 4);
        }
        b.barrier();
        for w in 0..4 {
            b.warp(w)
                .load_shared_seq(0, 4)
                .alu(1)
                .store_global_seq(0x10000 + w as u64 * 128, 4);
        }
        let t = b.build().unwrap();
        let mut l1 = Cache::new(gpu.l1_size, gpu.l1_line, gpu.l1_assoc);
        let mut l2 = Cache::new(gpu.l2_size / gpu.num_sms, 32, gpu.l2_assoc);
        let r = simulate_sm(&gpu, &[t], &mut l1, &mut l2).unwrap();
        assert!(r.cycles > 0.0);
        assert_eq!(r.events.gld_request, 4.0);
        assert_eq!(r.events.gst_request, 4.0);
        assert_eq!(r.events.shared_load, 4.0);
        assert_eq!(r.events.shared_store, 4.0);
    }
}
