//! The nvprof stand-in: derives named metrics from raw events.
//!
//! `nvprof` turns PM-unit event counts into the metrics of the paper's
//! Table 1; this module does the same for simulated launches. Counter
//! availability honours the architecture (see [`crate::counters`]), which is
//! what breaks naive hardware scaling in the paper's §6.2 — e.g. Fermi's
//! `l1_shared_bank_conflict` simply does not exist on Kepler.

use crate::arch::{GpuArchitecture, GpuConfig};
use crate::counters::{counters_for, CounterSet, RawEvents};
use crate::engine::{simulate_launch, LaunchResult};
use crate::memo::{self, SimCache};
use crate::trace::KernelTrace;
use crate::Result;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One profiled run: elapsed time plus a full counter set, the simulator's
/// equivalent of one `nvprof` invocation (plus the power sample the paper's
/// §7 suggests reading from the system management interface).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfiledRun {
    /// Kernel or application name.
    pub kernel: String,
    /// GPU name.
    pub gpu: String,
    /// Elapsed time in milliseconds (the paper's response variable).
    pub time_ms: f64,
    /// Average power draw in watts (the §7 alternative response).
    pub avg_power_w: f64,
    /// All counters available on this GPU.
    pub counters: CounterSet,
}

/// Derives the full per-architecture counter set from accumulated raw events.
pub fn derive_counters(gpu: &GpuConfig, ev: &RawEvents) -> CounterSet {
    let mut cs = CounterSet::new();
    let time = ev.time_seconds.max(1e-12);
    let elapsed_per_sm = ev.elapsed_cycles.max(1.0);
    let sms = gpu.num_sms as f64;
    let inst_exec = ev.inst_executed.max(1.0);
    let shared_replays = ev.shared_load_replay + ev.shared_store_replay;
    // Transaction size for global loads: the L1 line on line-tagged Fermi,
    // one 32-byte sector on every other path.
    let line_bytes = gpu.load_segment_bytes() as f64;
    let gbps = |bytes: f64| bytes / time / 1e9;

    for name in counters_for(gpu.arch) {
        let value = match name {
            "shared_replay_overhead" => shared_replays / inst_exec,
            "shared_load" => ev.shared_load,
            "shared_store" => ev.shared_store,
            "inst_replay_overhead" => (ev.inst_issued - ev.inst_executed).max(0.0) / inst_exec,
            "l1_global_load_hit" => ev.l1_global_load_hit,
            "l1_global_load_miss" => ev.l1_global_load_miss,
            "l1_shared_bank_conflict" => shared_replays,
            "shared_load_replay" => ev.shared_load_replay,
            "shared_store_replay" => ev.shared_store_replay,
            // Maxwell-era spelling of the same bank-conflict events.
            "shared_ld_bank_conflict" => ev.shared_load_replay,
            "shared_st_bank_conflict" => ev.shared_store_replay,
            "global_hit_rate" => {
                let looked_up = ev.l1_global_load_hit + ev.l1_global_load_miss;
                if looked_up > 0.0 {
                    ev.l1_global_load_hit / looked_up * 100.0
                } else {
                    0.0
                }
            }
            "gld_request" => ev.gld_request,
            "gst_request" => ev.gst_request,
            "global_load_transaction" => ev.global_load_transactions,
            "global_store_transaction" => ev.global_store_transactions,
            "gld_requested_throughput" => gbps(ev.gld_requested_bytes),
            "gst_requested_throughput" => gbps(ev.gst_requested_bytes),
            "gld_throughput" => gbps(ev.global_load_transactions * line_bytes),
            "gst_throughput" => gbps(ev.l2_write_transactions * 32.0),
            "achieved_occupancy" => (ev.active_warp_cycles
                / (elapsed_per_sm * sms * gpu.max_warps_per_sm as f64))
                .min(1.0),
            "l2_read_transactions" => ev.l2_read_transactions,
            "l2_write_transactions" => ev.l2_write_transactions,
            "l2_read_throughput" => gbps(ev.l2_read_transactions * 32.0),
            "l2_write_throughput" => gbps(ev.l2_write_transactions * 32.0),
            "dram_read_transactions" => ev.dram_read_transactions,
            "dram_write_transactions" => ev.dram_write_transactions,
            "ipc" => ev.inst_executed / (elapsed_per_sm * sms),
            "issue_slot_utilization" => {
                (ev.inst_issued / (elapsed_per_sm * sms * gpu.issue_width() as f64)).min(1.0)
                    * 100.0
            }
            "warp_execution_efficiency" => {
                (ev.thread_inst_executed / (inst_exec * gpu.warp_size as f64)).min(1.0) * 100.0
            }
            "inst_executed" => ev.inst_executed,
            "inst_issued" => ev.inst_issued,
            "branch" => ev.branch,
            "divergent_branch" => ev.divergent_branch,
            "ldst_fu_utilization" => (ev.ldst_busy_cycles / (elapsed_per_sm * sms)).min(1.0) * 10.0,
            other => unreachable!("counter {other} missing a derivation"),
        };
        cs.set(name, value);
    }
    cs
}

/// Profiles a single kernel launch (one simulated `nvprof` run).
pub fn profile_kernel(gpu: &GpuConfig, kernel: &dyn KernelTrace) -> Result<ProfiledRun> {
    let r = simulate_launch(gpu, kernel)?;
    let power = crate::power::estimate_power(
        gpu,
        &r.events,
        &crate::power::PowerModel::for_arch(gpu.arch),
    );
    Ok(ProfiledRun {
        kernel: kernel.name(),
        gpu: gpu.name.clone(),
        time_ms: r.time_seconds * 1e3,
        avg_power_w: power.average_w,
        counters: derive_counters(gpu, &r.events),
    })
}

/// Simulates every launch in parallel, preserving issue order in the output.
///
/// The work unit handed to the scheduler is a single *launch*, so a
/// 1000-launch NW job spreads across every core instead of serialising on
/// one. Results come back indexed by input position and are accumulated by
/// the callers strictly in issue order, which keeps the floating-point event
/// sums bit-identical to the sequential path. When `cache` is given,
/// structurally identical launches are answered from it (see
/// [`crate::memo`]); cached replay is also bit-identical by purity.
pub fn simulate_launches(
    gpu: &GpuConfig,
    launches: &[Box<dyn KernelTrace>],
    cache: Option<&SimCache>,
) -> Result<Vec<LaunchResult>> {
    let batch = bf_trace::span!("simulate_launches", launches = launches.len());
    let batch_id = batch.id();
    // The GPU configuration is constant across the batch: fingerprint it
    // once here instead of once per launch inside the memo key.
    let gpu_fp = cache.map(|_| gpu.fingerprint());
    let indexed: Vec<(usize, &dyn KernelTrace)> = launches
        .iter()
        .enumerate()
        .map(|(i, k)| (i, k.as_ref()))
        .collect();
    indexed
        .into_par_iter()
        .map(|(i, k)| {
            // Workers parent their per-launch spans back to the batch span
            // on the issuing thread, not to whatever ran last on the worker.
            bf_trace::with_parent(batch_id, || {
                let _launch = bf_trace::span!("launch", kernel = k.name(), index = i);
                match cache {
                    Some(c) => memo::simulate_launch_cached_fp(gpu, gpu_fp.unwrap(), k, c),
                    None => simulate_launch(gpu, k),
                }
                // A bad launch config or malformed trace (mismatched
                // barriers) surfaces here with the kernel named, instead of
                // an anonymous message from deep inside the batch.
                .map_err(|e| e.in_kernel(&k.name(), i))
            })
        })
        .collect::<Result<Vec<_>>>()
}

/// Profiles a multi-launch application: simulates every launch, accumulates
/// raw events and time, then derives one counter set for the whole run —
/// how the paper aggregates NW's two kernels and the reduction's passes.
///
/// Launches simulate in parallel through a fresh per-application memo cache
/// (disable with `BF_SIM_CACHE=0`; thread count follows
/// `RAYON_NUM_THREADS`), layered over the persistent disk tier when
/// `BF_SIM_CACHE_DIR` is set. Use [`profile_application_with`] to share a
/// cache across applications, e.g. over a whole collection sweep.
pub fn profile_application(
    gpu: &GpuConfig,
    name: &str,
    launches: &[Box<dyn KernelTrace>],
) -> Result<ProfiledRun> {
    let cache = SimCache::from_env();
    let cache = memo::cache_enabled().then_some(&cache);
    profile_application_with(gpu, name, launches, cache)
}

/// [`profile_application`] with an explicit (shared) memo cache; `None`
/// disables memoization for this profile.
pub fn profile_application_with(
    gpu: &GpuConfig,
    name: &str,
    launches: &[Box<dyn KernelTrace>],
    cache: Option<&SimCache>,
) -> Result<ProfiledRun> {
    let results = simulate_launches(gpu, launches, cache)?;
    let mut total = RawEvents::default();
    for r in &results {
        total.accumulate(&r.events);
    }
    let power =
        crate::power::estimate_power(gpu, &total, &crate::power::PowerModel::for_arch(gpu.arch));
    Ok(ProfiledRun {
        kernel: name.to_string(),
        gpu: gpu.name.clone(),
        time_ms: total.time_seconds * 1e3,
        avg_power_w: power.average_w,
        counters: derive_counters(gpu, &total),
    })
}

/// Profiles a batch of applications as one flat, launch-level parallel job.
///
/// Every launch of every application goes into a single scheduler queue, so
/// small applications no longer finish instantly while a single
/// 1000-launch job serialises on one thread. Per-application event
/// accumulation still walks the results in issue order, making the output
/// identical to profiling each application sequentially. `cache` (usually
/// one per sweep) lets structurally identical launches from *different*
/// applications share simulations — multi-pass reductions funnelling into
/// the same tail passes, stencil sweeps repeating the same grid.
pub fn profile_applications(
    gpu: &GpuConfig,
    apps: &[(&str, &[Box<dyn KernelTrace>])],
    cache: Option<&SimCache>,
) -> Result<Vec<ProfiledRun>> {
    let flat: Vec<(usize, &dyn KernelTrace)> = apps
        .iter()
        .flat_map(|(_, launches)| launches.iter().enumerate().map(|(i, k)| (i, k.as_ref())))
        .collect();
    let batch = bf_trace::span!(
        "profile_applications",
        apps = apps.len(),
        launches = flat.len()
    );
    let batch_id = batch.id();
    let gpu_fp = cache.map(|_| gpu.fingerprint());
    let results: Vec<LaunchResult> = flat
        .into_par_iter()
        .map(|(i, k)| {
            bf_trace::with_parent(batch_id, || {
                let _launch = bf_trace::span!("launch", kernel = k.name(), index = i);
                match cache {
                    Some(c) => memo::simulate_launch_cached_fp(gpu, gpu_fp.unwrap(), k, c),
                    None => simulate_launch(gpu, k),
                }
                .map_err(|e| e.in_kernel(&k.name(), i))
            })
        })
        .collect::<Result<Vec<_>>>()?;
    let mut runs = Vec::with_capacity(apps.len());
    let mut cursor = 0usize;
    for (name, launches) in apps {
        let mut total = RawEvents::default();
        for r in &results[cursor..cursor + launches.len()] {
            total.accumulate(&r.events);
        }
        cursor += launches.len();
        let power = crate::power::estimate_power(
            gpu,
            &total,
            &crate::power::PowerModel::for_arch(gpu.arch),
        );
        runs.push(ProfiledRun {
            kernel: name.to_string(),
            gpu: gpu.name.clone(),
            time_ms: total.time_seconds * 1e3,
            avg_power_w: power.average_w,
            counters: derive_counters(gpu, &total),
        });
    }
    Ok(runs)
}

/// Profiles a multi-launch application *per kernel*: launches sharing a
/// kernel name are accumulated together and reported separately — how
/// `nvprof` itself presents a multi-kernel application, and what the paper
/// does for NW ("we measure the contribution of each kernel in the overall
/// execution time"). Returns one run per distinct kernel, in first-seen
/// order. Simulation is parallel and memoized like [`profile_application`].
pub fn profile_application_by_kernel(
    gpu: &GpuConfig,
    launches: &[Box<dyn KernelTrace>],
) -> Result<Vec<ProfiledRun>> {
    let cache = SimCache::from_env();
    let cache = memo::cache_enabled().then_some(&cache);
    profile_application_by_kernel_with(gpu, launches, cache)
}

/// [`profile_application_by_kernel`] with an explicit (shared) memo cache.
pub fn profile_application_by_kernel_with(
    gpu: &GpuConfig,
    launches: &[Box<dyn KernelTrace>],
    cache: Option<&SimCache>,
) -> Result<Vec<ProfiledRun>> {
    let results = simulate_launches(gpu, launches, cache)?;
    let mut order: Vec<String> = Vec::new();
    let mut acc: std::collections::HashMap<String, RawEvents> = std::collections::HashMap::new();
    for (k, r) in launches.iter().zip(&results) {
        let name = k.name();
        if !acc.contains_key(&name) {
            order.push(name.clone());
        }
        acc.entry(name).or_default().accumulate(&r.events);
    }
    Ok(order
        .into_iter()
        .map(|name| {
            let ev = &acc[&name];
            let power = crate::power::estimate_power(
                gpu,
                ev,
                &crate::power::PowerModel::for_arch(gpu.arch),
            );
            ProfiledRun {
                kernel: name,
                gpu: gpu.name.clone(),
                time_ms: ev.time_seconds * 1e3,
                avg_power_w: power.average_w,
                counters: derive_counters(gpu, ev),
            }
        })
        .collect())
}

/// Convenience: is this counter name meaningful on the given architecture?
pub fn counter_on(name: &str, arch: GpuArchitecture) -> bool {
    crate::counters::counter_available(name, arch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{BlockTrace, LaunchConfig, WarpInstruction, FULL_MASK};

    struct Mini {
        conflict: bool,
    }

    impl KernelTrace for Mini {
        fn name(&self) -> String {
            "mini".into()
        }

        fn launch_config(&self) -> LaunchConfig {
            LaunchConfig {
                grid_blocks: 64,
                threads_per_block: 128,
                regs_per_thread: 16,
                shared_mem_per_block: 4096,
            }
        }

        fn block_trace(&self, block_id: usize, gpu: &GpuConfig) -> BlockTrace {
            let warps = 128 / gpu.warp_size;
            let mut t = BlockTrace::with_warps(warps);
            for (w, stream) in t.warps.iter_mut().enumerate() {
                let base = (block_id * warps + w) as u64 * 128;
                stream.push(WarpInstruction::LoadGlobal {
                    addrs: (0..32).map(|i| base + i * 4).collect(),
                    width: 4,
                    mask: FULL_MASK,
                });
                let stride = if self.conflict { 8 } else { 4 };
                stream.push(WarpInstruction::LoadShared {
                    offsets: (0..32).map(|i| i * stride).collect(),
                    width: 4,
                    mask: FULL_MASK,
                });
                stream.push(WarpInstruction::Alu {
                    count: 4,
                    mask: FULL_MASK,
                });
                stream.push(WarpInstruction::Barrier);
                stream.push(WarpInstruction::StoreGlobal {
                    addrs: (0..32).map(|i| (1 << 22) + base + i * 4).collect(),
                    width: 4,
                    mask: FULL_MASK,
                });
            }
            t
        }
    }

    #[test]
    fn profile_emits_all_arch_counters() {
        let gpu = GpuConfig::gtx580();
        let run = profile_kernel(&gpu, &Mini { conflict: false }).unwrap();
        for name in counters_for(gpu.arch) {
            assert!(run.counters.contains(name), "missing {name}");
        }
        assert!(run.time_ms > 0.0);
    }

    #[test]
    fn kepler_profile_has_no_fermi_counters() {
        let gpu = GpuConfig::k20m();
        let run = profile_kernel(&gpu, &Mini { conflict: false }).unwrap();
        assert!(!run.counters.contains("l1_global_load_hit"));
        assert!(!run.counters.contains("l1_shared_bank_conflict"));
        assert!(run.counters.contains("shared_load_replay"));
    }

    #[test]
    fn conflicting_kernel_shows_shared_replay_overhead() {
        let gpu = GpuConfig::gtx580();
        let clean = profile_kernel(&gpu, &Mini { conflict: false }).unwrap();
        let bad = profile_kernel(&gpu, &Mini { conflict: true }).unwrap();
        assert_eq!(clean.counters.get("shared_replay_overhead"), Some(0.0));
        assert!(bad.counters.get("shared_replay_overhead").unwrap() > 0.0);
        assert!(
            bad.counters.get("inst_replay_overhead").unwrap()
                >= bad.counters.get("shared_replay_overhead").unwrap()
        );
    }

    #[test]
    fn occupancy_and_efficiency_are_fractions() {
        let gpu = GpuConfig::gtx580();
        let run = profile_kernel(&gpu, &Mini { conflict: false }).unwrap();
        let occ = run.counters.get("achieved_occupancy").unwrap();
        assert!((0.0..=1.0).contains(&occ));
        let wee = run.counters.get("warp_execution_efficiency").unwrap();
        assert!((0.0..=100.0).contains(&wee));
        let isu = run.counters.get("issue_slot_utilization").unwrap();
        assert!((0.0..=100.0).contains(&isu));
    }

    #[test]
    fn throughputs_are_consistent() {
        let gpu = GpuConfig::gtx580();
        let run = profile_kernel(&gpu, &Mini { conflict: false }).unwrap();
        // Requested <= achieved for perfectly coalesced 4-byte loads, the
        // two should be equal (128 requested bytes per 128-byte line).
        let req = run.counters.get("gld_requested_throughput").unwrap();
        let ach = run.counters.get("gld_throughput").unwrap();
        assert!((req - ach).abs() / ach.max(1e-12) < 1e-9);
    }

    /// A kernel whose trace deadlocks: warp 0 hits a barrier no other warp
    /// ever reaches.
    struct Malformed;

    impl KernelTrace for Malformed {
        fn name(&self) -> String {
            "deadlock".into()
        }

        fn launch_config(&self) -> LaunchConfig {
            LaunchConfig {
                grid_blocks: 8,
                threads_per_block: 64,
                regs_per_thread: 16,
                shared_mem_per_block: 0,
            }
        }

        fn block_trace(&self, _block_id: usize, _gpu: &GpuConfig) -> BlockTrace {
            let mut t = BlockTrace::with_warps(2);
            t.warps[0].push(WarpInstruction::Barrier);
            t
        }
    }

    #[test]
    fn malformed_trace_fails_with_kernel_named() {
        let gpu = GpuConfig::gtx580();
        let launches: Vec<Box<dyn KernelTrace>> =
            vec![Box::new(Mini { conflict: false }), Box::new(Malformed)];
        let apps: [(&str, &[Box<dyn KernelTrace>]); 1] = [("bad_app", &launches)];
        let err = profile_applications(&gpu, &apps, None).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("deadlock"), "error lacks kernel name: {msg}");
        assert!(msg.contains("launch 1"), "error lacks launch index: {msg}");
        assert!(msg.contains("barrier"), "error lacks the cause: {msg}");

        // The single-application entry point annotates identically.
        let err = profile_application(&gpu, "bad_app", &launches).unwrap_err();
        assert!(err.to_string().contains("deadlock"));
    }

    #[test]
    fn application_profile_accumulates_launches() {
        let gpu = GpuConfig::gtx580();
        let single = profile_kernel(&gpu, &Mini { conflict: false }).unwrap();
        let launches: Vec<Box<dyn KernelTrace>> = vec![
            Box::new(Mini { conflict: false }),
            Box::new(Mini { conflict: false }),
        ];
        let app = profile_application(&gpu, "mini_x2", &launches).unwrap();
        let s = single.counters.get("gld_request").unwrap();
        let a = app.counters.get("gld_request").unwrap();
        assert!((a - 2.0 * s).abs() < 1e-6);
        assert!(app.time_ms > single.time_ms * 1.5);
    }
}
