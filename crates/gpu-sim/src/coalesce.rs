//! Global-memory coalescing: folding per-lane addresses into transactions.
//!
//! §3.1 of the paper: "to maximize memory throughput ... address patterns
//! must meet memory *coalescing* rules on the target architecture". The
//! rules modelled here follow the two generations studied:
//!
//! * **Fermi, L1-cached loads**: the warp's addresses are mapped to unique
//!   128-byte cache lines; each line is one transaction.
//! * **Kepler loads** (L1 bypassed) and **stores on both**: addresses map to
//!   unique 32-byte sectors serviced by L2.
//!
//! A perfectly coalesced 4-byte access by 32 lanes therefore costs one
//! 128-byte transaction (or four 32-byte sectors); a fully scattered access
//! costs up to 32.

use crate::trace::LaneMask;

/// One memory transaction produced by coalescing: a segment-aligned address
/// and segment size in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transaction {
    /// Segment-aligned byte address.
    pub addr: u64,
    /// Segment size in bytes (128 for L1 lines, 32 for L2 sectors).
    pub size: u32,
}

/// Collects the unique `segment`-aligned transactions covering the active
/// lanes' accesses. `width` is bytes per lane. Accesses that straddle a
/// segment boundary produce both segments (possible with 8-byte words at
/// 4-byte alignment).
pub fn coalesce(addrs: &[u64], width: u8, mask: LaneMask, segment: u32) -> Vec<Transaction> {
    let mut scratch = Vec::with_capacity(8);
    coalesce_into(addrs, width, mask, segment, &mut scratch);
    scratch
        .into_iter()
        .map(|addr| Transaction {
            addr,
            size: segment,
        })
        .collect()
}

/// Allocation-free core of [`coalesce`]: writes the unique, sorted,
/// segment-aligned transaction addresses into `out` (cleared first). The SoA
/// batch compiler ([`crate::soa`]) calls this in a tight sweep with one
/// reused scratch buffer per launch instead of allocating a `Vec` per
/// access; the produced address set is identical to [`coalesce`]'s.
pub fn coalesce_into(addrs: &[u64], width: u8, mask: LaneMask, segment: u32, out: &mut Vec<u64>) {
    debug_assert!(segment.is_power_of_two());
    let seg = segment as u64;
    out.clear();
    for (lane, &addr) in addrs.iter().enumerate() {
        if mask & (1 << lane) == 0 {
            continue;
        }
        let first = addr & !(seg - 1);
        let last = (addr + width as u64 - 1) & !(seg - 1);
        let mut s = first;
        loop {
            out.push(s);
            if s == last {
                break;
            }
            s += seg;
        }
    }
    out.sort_unstable();
    out.dedup();
}

/// Total bytes the active lanes actually requested (the numerator of
/// `gld_requested_throughput` / `gst_requested_throughput`).
pub fn requested_bytes(width: u8, mask: LaneMask) -> u64 {
    mask.count_ones() as u64 * width as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::FULL_MASK;

    fn seq_addrs(base: u64, stride: u64) -> Vec<u64> {
        (0..32).map(|i| base + i * stride).collect()
    }

    #[test]
    fn fully_coalesced_float_load_is_one_line() {
        let t = coalesce(&seq_addrs(0x1000, 4), 4, FULL_MASK, 128);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].addr, 0x1000);
    }

    #[test]
    fn fully_coalesced_float_load_is_four_sectors() {
        let t = coalesce(&seq_addrs(0x1000, 4), 4, FULL_MASK, 32);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn misaligned_access_spills_into_second_line() {
        // Base offset 64 into a 128B line: lanes 0..15 in line 0, 16..31 in
        // line 1.
        let t = coalesce(&seq_addrs(0x1040, 4), 4, FULL_MASK, 128);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn strided_access_explodes_transactions() {
        // Stride 128B: every lane touches its own line.
        let t = coalesce(&seq_addrs(0, 128), 4, FULL_MASK, 128);
        assert_eq!(t.len(), 32);
    }

    #[test]
    fn stride_two_floats_doubles_lines() {
        // Stride 8B: 32 lanes cover 256B = 2 lines.
        let t = coalesce(&seq_addrs(0, 8), 4, FULL_MASK, 128);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn broadcast_access_is_single_transaction() {
        let addrs = vec![0x2000u64; 32];
        let t = coalesce(&addrs, 4, FULL_MASK, 128);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn inactive_lanes_are_ignored() {
        let mut addrs = seq_addrs(0, 128);
        // Only lane 5 active.
        addrs[5] = 0x5000;
        let t = coalesce(&addrs, 4, 1 << 5, 128);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].addr, 0x5000 & !127);
    }

    #[test]
    fn empty_mask_produces_no_transactions() {
        let t = coalesce(&seq_addrs(0, 4), 4, 0, 128);
        assert!(t.is_empty());
    }

    #[test]
    fn wide_word_straddling_segment_takes_both() {
        // An 8-byte access at 28 bytes into a 32B sector touches two sectors.
        let mut addrs = vec![0u64; 32];
        addrs[0] = 28;
        let t = coalesce(&addrs, 8, 1, 32);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].addr, 0);
        assert_eq!(t[1].addr, 32);
    }

    #[test]
    fn transactions_are_sorted_and_aligned() {
        let addrs = vec![0x500, 0x100, 0x300, 0x100];
        let t = coalesce(&addrs, 4, 0b1111, 128);
        for w in t.windows(2) {
            assert!(w[0].addr < w[1].addr);
        }
        for tr in &t {
            assert_eq!(tr.addr % 128, 0);
        }
    }

    #[test]
    fn requested_bytes_counts_active_lanes_only() {
        assert_eq!(requested_bytes(4, FULL_MASK), 128);
        assert_eq!(requested_bytes(4, 0xFF), 32);
        assert_eq!(requested_bytes(8, 0b1), 8);
        assert_eq!(requested_bytes(4, 0), 0);
    }
}
