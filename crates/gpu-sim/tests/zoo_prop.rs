//! Property suite over *arbitrary-but-valid* GPU configurations.
//!
//! The zoo presets pin ten known-good points in configuration space; this
//! suite walks the space between them. Proptest draws configurations with
//! random SM counts, scheduler widths, bank counts, cache geometries, and
//! memory paths — each field within its own per-field bounds — and checks
//! the contracts the rest of the toolchain leans on:
//!
//! * simulation never panics and produces finite, positive results;
//! * the profiler emits exactly the counters the architecture's
//!   availability mask admits — nothing more, nothing less;
//! * the configuration fingerprint is sensitive to every
//!   simulation-relevant field, so SimCache/memo keys (which embed the
//!   fingerprint) can never alias results across differing hardware.

use gpu_sim::counters::counters_for;
use gpu_sim::trace::{BlockTrace, KernelTrace, LaunchConfig, WarpInstruction};
use gpu_sim::{
    profile_kernel, simulate_launch, simulate_launch_cached, GpuArchitecture, GpuConfig, SimCache,
};
use proptest::prelude::*;

/// A small kernel mixing every instruction family: strided global loads
/// (coalescing + cache paths), conflicted shared accesses (bank logic),
/// ALU/SFU work, a divergent branch, and a barrier.
struct MixedKernel {
    grid_blocks: usize,
}

impl KernelTrace for MixedKernel {
    fn name(&self) -> String {
        "zoo_prop_mixed".to_string()
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig {
            grid_blocks: self.grid_blocks,
            threads_per_block: 64,
            regs_per_thread: 20,
            shared_mem_per_block: 2048,
        }
    }

    fn block_trace(&self, block_id: usize, _gpu: &GpuConfig) -> BlockTrace {
        let mut t = BlockTrace::with_warps(2);
        for w in 0..2 {
            let base = (block_id as u64) << 14;
            let strided: Vec<u64> = (0..32).map(|i| base + i * 64).collect();
            let coalesced: Vec<u64> = (0..32).map(|i| base + i * 4).collect();
            let conflicted: Vec<u32> = (0..32).map(|i| ((i % 2) * 128) as u32).collect();
            t.warps[w].push(WarpInstruction::Alu {
                count: 4,
                mask: u32::MAX,
            });
            t.warps[w].push(WarpInstruction::LoadGlobal {
                addrs: strided,
                width: 4,
                mask: u32::MAX,
            });
            t.warps[w].push(WarpInstruction::LoadShared {
                offsets: conflicted.clone(),
                width: 4,
                mask: u32::MAX,
            });
            t.warps[w].push(WarpInstruction::Barrier);
            t.warps[w].push(WarpInstruction::Branch {
                divergent: true,
                mask: u32::MAX,
            });
            t.warps[w].push(WarpInstruction::StoreShared {
                offsets: conflicted,
                width: 4,
                mask: 0xFFFF,
            });
            t.warps[w].push(WarpInstruction::Sfu { mask: u32::MAX });
            t.warps[w].push(WarpInstruction::StoreGlobal {
                addrs: coalesced,
                width: 4,
                mask: u32::MAX,
            });
        }
        t
    }
}

fn arb_arch() -> impl Strategy<Value = GpuArchitecture> {
    prop_oneof![
        Just(GpuArchitecture::Fermi),
        Just(GpuArchitecture::Kepler),
        Just(GpuArchitecture::Maxwell),
        Just(GpuArchitecture::Pascal),
        Just(GpuArchitecture::Volta),
    ]
}

/// An arbitrary-but-valid configuration: every field inside its own
/// bounds, resource limits consistent enough for real occupancy
/// calculations (warps × warp_size ≤ threads the register file can feed).
fn arb_gpu() -> impl Strategy<Value = GpuConfig> {
    (
        arb_arch(),
        1usize..=96,                                                          // num_sms
        prop_oneof![Just(32usize), Just(48), Just(64), Just(128), Just(192)], // cores_per_sm
        1usize..=4,                                                           // warp_schedulers
        1usize..=2,                           // dispatch_per_scheduler
        prop_oneof![Just(16usize), Just(32)], // shared_banks
        prop_oneof![Just(4usize), Just(8)],   // bank_width
        (
            prop_oneof![Just(16384usize), Just(24576), Just(32768), Just(49152)], // l1_size
            prop_oneof![Just(64usize), Just(128)],                                // l1_line
            prop_oneof![Just(4usize), Just(6), Just(8)],                          // l1_assoc
            any::<bool>(), // l1_caches_globals
            any::<bool>(), // l1_sectored
        ),
        (
            prop_oneof![
                Just(393216usize),
                Just(786432),
                Just(1572864),
                Just(4194304),
                Just(6291456)
            ], // l2_size
            prop_oneof![Just(8usize), Just(16)], // l2_assoc
        ),
        (0.5f64..2.0, 50.0f64..1000.0), // clock_ghz, mem_bandwidth_gbps
    )
        .prop_map(
            |(
                arch,
                num_sms,
                cores_per_sm,
                warp_schedulers,
                dispatch_per_scheduler,
                shared_banks,
                bank_width,
                (l1_size, l1_line, l1_assoc, l1_caches_globals, l1_sectored),
                (l2_size, l2_assoc),
                (clock_ghz, mem_bandwidth_gbps),
            )| {
                GpuConfig {
                    name: "zoo-prop".to_string(),
                    arch,
                    num_sms,
                    cores_per_sm,
                    warp_schedulers,
                    dispatch_per_scheduler,
                    clock_ghz,
                    mem_bandwidth_gbps,
                    warp_size: 32,
                    max_warps_per_sm: 48,
                    max_blocks_per_sm: 16,
                    max_threads_per_block: 1024,
                    registers_per_sm: 65536,
                    max_registers_per_thread: 255,
                    shared_mem_per_sm: 49152,
                    shared_banks,
                    bank_width,
                    l1_size,
                    l1_line,
                    l1_assoc,
                    l1_caches_globals,
                    l1_sectored,
                    l2_size,
                    l2_line: 128,
                    l2_assoc,
                    alu_latency: 6,
                    sfu_latency: 14,
                    smem_latency: 24,
                    l1_latency: 28,
                    l2_latency: 200,
                    dram_latency: 400,
                    alu_throughput: (cores_per_sm / 32).max(1) as f64,
                    ldst_units: 1.0,
                    sfu_throughput: 1.0,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any valid configuration simulates any grid without panicking, and
    /// the result is physically sane: positive time, finite counters.
    #[test]
    fn simulation_never_panics_and_stays_finite(
        gpu in arb_gpu(),
        grid_blocks in 1usize..512,
    ) {
        let kernel = MixedKernel { grid_blocks };
        let r = simulate_launch(&gpu, &kernel).unwrap();
        prop_assert!(r.time_seconds > 0.0 && r.time_seconds.is_finite());
        prop_assert!(r.events.inst_issued > 0.0);
        prop_assert!(r.events.issue_slots > 0.0 && r.events.issue_slots.is_finite());
        for (name, v) in [
            ("inst_executed", r.events.inst_executed),
            ("l2_read_transactions", r.events.l2_read_transactions),
            ("dram_read_transactions", r.events.dram_read_transactions),
            ("shared_load_replay", r.events.shared_load_replay),
        ] {
            prop_assert!(v.is_finite() && v >= 0.0, "{} = {}", name, v);
        }
    }

    /// The profiler's counter set matches the availability mask exactly,
    /// for every architecture the configuration may claim: the mask is
    /// what `collect` sees, so this is the end-to-end guarantee that
    /// models never train on counters the hardware cannot produce.
    #[test]
    fn profiled_counters_match_the_availability_mask(gpu in arb_gpu()) {
        let run = profile_kernel(&gpu, &MixedKernel { grid_blocks: 8 }).unwrap();
        let mut got: Vec<&str> = run.counters.names();
        let mut expect = counters_for(gpu.arch);
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect, "counter set diverges from mask on {}", gpu.arch.name());
    }

    /// Every simulation-relevant field perturbs the fingerprint — the
    /// memoization key embeds it, so two configurations differing in any
    /// of these fields can never alias each other's cached results.
    #[test]
    fn fingerprint_is_sensitive_to_every_relevant_field(gpu in arb_gpu()) {
        let base = gpu.fingerprint();
        prop_assert_eq!(base, gpu.clone().fingerprint(), "fingerprint must be stable");
        let mutations: Vec<(&str, GpuConfig)> = vec![
            ("num_sms", GpuConfig { num_sms: gpu.num_sms + 1, ..gpu.clone() }),
            ("cores_per_sm", GpuConfig { cores_per_sm: gpu.cores_per_sm + 32, ..gpu.clone() }),
            ("warp_schedulers", GpuConfig { warp_schedulers: gpu.warp_schedulers + 1, ..gpu.clone() }),
            ("dispatch_per_scheduler", GpuConfig { dispatch_per_scheduler: 3 - gpu.dispatch_per_scheduler, ..gpu.clone() }),
            ("clock_ghz", GpuConfig { clock_ghz: gpu.clock_ghz * 1.5, ..gpu.clone() }),
            ("mem_bandwidth_gbps", GpuConfig { mem_bandwidth_gbps: gpu.mem_bandwidth_gbps + 1.0, ..gpu.clone() }),
            ("shared_banks", GpuConfig { shared_banks: 48 - gpu.shared_banks, ..gpu.clone() }),
            ("bank_width", GpuConfig { bank_width: 12 - gpu.bank_width, ..gpu.clone() }),
            ("l1_size", GpuConfig { l1_size: gpu.l1_size + 1024, ..gpu.clone() }),
            ("l1_line", GpuConfig { l1_line: gpu.l1_line * 2, ..gpu.clone() }),
            ("l1_assoc", GpuConfig { l1_assoc: gpu.l1_assoc + 1, ..gpu.clone() }),
            ("l1_caches_globals", GpuConfig { l1_caches_globals: !gpu.l1_caches_globals, ..gpu.clone() }),
            ("l1_sectored", GpuConfig { l1_sectored: !gpu.l1_sectored, ..gpu.clone() }),
            ("l2_size", GpuConfig { l2_size: gpu.l2_size + gpu.l2_line, ..gpu.clone() }),
            ("l2_assoc", GpuConfig { l2_assoc: gpu.l2_assoc + 1, ..gpu.clone() }),
            ("alu_latency", GpuConfig { alu_latency: gpu.alu_latency + 1, ..gpu.clone() }),
            ("dram_latency", GpuConfig { dram_latency: gpu.dram_latency + 1, ..gpu.clone() }),
            ("alu_throughput", GpuConfig { alu_throughput: gpu.alu_throughput + 0.5, ..gpu.clone() }),
        ];
        for (field, mutated) in mutations {
            prop_assert!(
                base != mutated.fingerprint(),
                "fingerprint blind to {}", field
            );
        }
    }
}

/// Two configurations that differ in a single fingerprint-relevant field
/// sharing one `SimCache` never serve each other's results: the second
/// simulation is a miss, and the per-config results differ where the
/// hardware says they must.
#[test]
fn sim_cache_never_aliases_across_differing_configs() {
    let kernel = MixedKernel { grid_blocks: 16 };
    let a = GpuConfig::gtx1080();
    // Same card with the L1 switched from sectored to line-tagged — the
    // kind of near-identical pair most likely to collide.
    let b = GpuConfig {
        l1_sectored: false,
        ..a.clone()
    };
    let cache = SimCache::new();
    let ra = simulate_launch_cached(&a, &kernel, &cache).unwrap();
    assert_eq!(cache.stats().misses, 1);
    let rb = simulate_launch_cached(&b, &kernel, &cache).unwrap();
    assert_eq!(
        cache.stats().misses,
        2,
        "config b must not hit config a's entry"
    );
    assert_eq!(cache.stats().hits, 0);
    // And the physics genuinely differ: a line-tagged L1 refills 4 sectors
    // per miss where the sectored L1 refills 1.
    assert!(
        rb.events.l2_read_transactions > ra.events.l2_read_transactions,
        "line-tagged refill must move more L2 sectors ({} vs {})",
        rb.events.l2_read_transactions,
        ra.events.l2_read_transactions
    );
    // Replaying either config is a pure hit.
    let ra2 = simulate_launch_cached(&a, &kernel, &cache).unwrap();
    assert_eq!(cache.stats().hits, 1);
    assert_eq!(ra.time_seconds.to_bits(), ra2.time_seconds.to_bits());
}
