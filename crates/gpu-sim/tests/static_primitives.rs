//! Property tests for the primitives shared by the dynamic simulator and the
//! static analyzer (`bf-analyze`): coalescing, bank conflicts, occupancy.
//!
//! These are the contracts the differential oracle leans on — if a refactor
//! bends any of them, the static and dynamic paths drift apart silently, so
//! they are pinned here independently of either consumer.

use gpu_sim::banks::{conflict_degree, replays};
use gpu_sim::coalesce::{coalesce, requested_bytes};
use gpu_sim::occupancy::{occupancy, OccupancyLimiter};
use gpu_sim::trace::LaunchConfig;
use gpu_sim::GpuConfig;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every byte an active lane requests is covered by exactly one
    /// transaction: transactions are segment-aligned, strictly ascending
    /// (hence unique and non-overlapping), and their union contains every
    /// requested byte range.
    #[test]
    fn coalesce_covers_requests_without_overlap(
        addrs in prop::collection::vec(0u64..(1 << 16), 32),
        width in prop_oneof![Just(1u8), Just(4u8), Just(8u8)],
        mask in any::<u32>(),
        segment in prop_oneof![Just(32u32), Just(128u32)],
    ) {
        let txs = coalesce(&addrs, width, mask, segment);
        for t in &txs {
            prop_assert_eq!(t.addr % segment as u64, 0, "unaligned transaction");
            prop_assert_eq!(t.size, segment);
        }
        for w in txs.windows(2) {
            prop_assert!(w[0].addr < w[1].addr, "transactions overlap or are unsorted");
        }
        for (lane, &addr) in addrs.iter().enumerate() {
            if mask & (1 << lane) == 0 {
                continue;
            }
            for byte in addr..addr + width as u64 {
                let covered = txs
                    .iter()
                    .any(|t| t.addr <= byte && byte < t.addr + t.size as u64);
                prop_assert!(covered, "byte {byte} of lane {lane} not covered");
            }
        }
        if mask == 0 {
            prop_assert!(txs.is_empty());
        }
        // A lane touches at most two segments (boundary straddle), so the
        // transaction count is bounded by the active accesses.
        prop_assert!(txs.len() as u32 <= 2 * mask.count_ones().max(1));
        // Sanity for the throughput counters: requested bytes never exceed
        // the bytes the transactions move.
        prop_assert!(
            requested_bytes(width, mask) <= txs.len() as u64 * segment as u64
                || mask == 0
        );
    }

    /// The conflict degree is at least the pigeonhole lower bound (distinct
    /// words spread over the banks) and at most the total words accessed.
    #[test]
    fn bank_replays_respect_pigeonhole_bounds(
        offsets in prop::collection::vec(0u32..8192, 32),
        width in prop_oneof![Just(4u8), Just(8u8)],
        mask in any::<u32>(),
    ) {
        let (banks, bank_width) = (32u32, 4u32);
        let degree = conflict_degree(&offsets, width, mask, banks, bank_width);
        let words_per_access = (width as u32).div_ceil(bank_width);
        let mut distinct: Vec<u32> = Vec::new();
        for (lane, &off) in offsets.iter().enumerate() {
            if mask & (1 << lane) == 0 {
                continue;
            }
            for w in 0..words_per_access {
                let word = off / bank_width + w;
                if !distinct.contains(&word) {
                    distinct.push(word);
                }
            }
        }
        let lower = (distinct.len() as u32).div_ceil(banks).max(1);
        prop_assert!(degree >= lower, "degree {degree} below pigeonhole bound {lower}");
        let upper = (mask.count_ones() * words_per_access).max(1);
        prop_assert!(degree <= upper, "degree {degree} above access count {upper}");
        prop_assert_eq!(replays(&offsets, width, mask, banks, bank_width), degree - 1);
    }

    /// Broadcast (all lanes read one word) and sequential (each lane its own
    /// bank) patterns are conflict-free for any lane mask.
    #[test]
    fn conflict_free_patterns_have_zero_replays(
        word in 0u32..2048,
        base in 0u32..64,
        mask in any::<u32>(),
    ) {
        let broadcast = vec![word * 4; 32];
        prop_assert_eq!(replays(&broadcast, 4, mask, 32, 4), 0);
        let sequential: Vec<u32> = (0..32).map(|i| (base + i) * 4).collect();
        prop_assert_eq!(replays(&sequential, 4, mask, 32, 4), 0);
    }

    /// Residency never exceeds any hardware limit, and the reported limiter
    /// is the binding constraint (its limit equals the resident block count,
    /// which no other limit undercuts).
    #[test]
    fn occupancy_within_limits_and_limiter_is_binding(
        threads in 1usize..=1024,
        regs in 0usize..=63,
        smem_kb in 0usize..=48,
        grid in 1usize..=4096,
    ) {
        for gpu in [GpuConfig::gtx580(), GpuConfig::k20m()] {
            let lc = LaunchConfig {
                grid_blocks: grid,
                threads_per_block: threads,
                regs_per_thread: regs,
                shared_mem_per_block: smem_kb * 1024,
            };
            let Ok(o) = occupancy(&gpu, &lc) else {
                // Impossible blocks are rejected, never mis-reported.
                continue;
            };
            let wpb = lc.warps_per_block(gpu.warp_size);
            let regs_per_block = regs.max(1) * wpb * gpu.warp_size;
            prop_assert!(o.blocks_per_sm >= 1);
            prop_assert!(o.blocks_per_sm <= gpu.max_blocks_per_sm);
            prop_assert!(o.warps_per_sm <= gpu.max_warps_per_sm);
            prop_assert_eq!(o.warps_per_sm, o.blocks_per_sm * wpb);
            prop_assert!(o.blocks_per_sm * regs_per_block <= gpu.registers_per_sm);
            prop_assert!(o.blocks_per_sm * lc.shared_mem_per_block <= gpu.shared_mem_per_sm);
            prop_assert!(o.theoretical <= 1.0 + 1e-12);

            let by_blocks = gpu.max_blocks_per_sm;
            let by_warps = gpu.max_warps_per_sm / wpb;
            let by_regs = gpu.registers_per_sm / regs_per_block;
            let by_smem = gpu
                .shared_mem_per_sm
                .checked_div(lc.shared_mem_per_block)
                .unwrap_or(usize::MAX);
            let resource_min = by_blocks.min(by_warps).min(by_regs).min(by_smem);
            let binding = match o.limiter {
                OccupancyLimiter::BlockSlots => by_blocks,
                OccupancyLimiter::WarpSlots => by_warps,
                OccupancyLimiter::Registers => by_regs,
                OccupancyLimiter::SharedMemory => by_smem,
                OccupancyLimiter::GridSize => grid.div_ceil(gpu.num_sms).max(1),
            };
            prop_assert_eq!(
                o.blocks_per_sm, binding,
                "limiter {:?} not binding", o.limiter
            );
            if o.limiter == OccupancyLimiter::GridSize {
                prop_assert!(o.blocks_per_sm <= resource_min);
            } else {
                prop_assert_eq!(o.blocks_per_sm, resource_min);
            }
        }
    }
}
