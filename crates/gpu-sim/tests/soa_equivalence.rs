//! Property suite pinning the SoA batch engine to the reference
//! interpreter.
//!
//! [`gpu_sim::sm::simulate_sm`] re-derives coalescing and bank conflicts
//! per instruction straight from the trace; the launch engine runs the
//! precompiled SoA path ([`gpu_sim::soa`]) instead. The determinism
//! contract requires the two to be **bit-identical** — every cycle count,
//! every raw event, every DRAM byte — over *arbitrary* valid traces, not
//! just the shipped kernels. Proptest generates those traces here.
//!
//! A second property pins steady-state loop extrapolation
//! ([`gpu_sim::steady`]): for periodic warp streams, the statically exact
//! counters of an extrapolated launch must match the fully simulated launch
//! to the differential-oracle tolerance (1e-9 relative, float noise only).

use gpu_sim::cache::Cache;
use gpu_sim::occupancy::occupancy;
use gpu_sim::sm::simulate_sm;
use gpu_sim::trace::{BlockTrace, LaunchConfig, WarpInstruction};
use gpu_sim::{simulate_sampled_launch_with, soa, EngineOptions, GpuConfig, RawEvents};
use proptest::prelude::*;

/// The cold cache state every launch starts from (mirrors the engine's
/// private `fresh_caches`): fresh L1 plus this SM's slice of the shared L2.
fn fresh_caches(gpu: &GpuConfig) -> (Cache, Cache) {
    let l2_slice = (gpu.l2_size / gpu.num_sms).max(gpu.l2_line * gpu.l2_assoc);
    (
        Cache::new(gpu.l1_size, gpu.l1_line, gpu.l1_assoc),
        Cache::new(l2_slice, gpu.l2_line.max(32), gpu.l2_assoc),
    )
}

fn arb_gpu() -> impl Strategy<Value = GpuConfig> {
    prop_oneof![Just(GpuConfig::gtx580()), Just(GpuConfig::k20m())]
}

/// 32 per-lane global byte addresses spanning several L1/L2 lines, so the
/// generated patterns exercise coalescing, set conflicts, and broadcasts.
fn arb_addrs() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..(1 << 20), 32)
}

/// 32 per-lane shared-memory byte offsets across all 32 banks, including
/// the conflict-heavy strided patterns.
fn arb_offsets() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..4096, 32)
}

fn arb_width() -> impl Strategy<Value = u8> {
    prop_oneof![Just(4u8), Just(8u8)]
}

/// Any non-barrier warp instruction, arbitrary masks included (partial,
/// full, and empty masks must all agree between the two engines).
fn arb_instruction() -> impl Strategy<Value = WarpInstruction> {
    prop_oneof![
        (1u32..8, any::<u32>()).prop_map(|(count, mask)| WarpInstruction::Alu { count, mask }),
        any::<u32>().prop_map(|mask| WarpInstruction::Sfu { mask }),
        (arb_addrs(), arb_width(), any::<u32>())
            .prop_map(|(addrs, width, mask)| WarpInstruction::LoadGlobal { addrs, width, mask }),
        (arb_addrs(), arb_width(), any::<u32>())
            .prop_map(|(addrs, width, mask)| WarpInstruction::StoreGlobal { addrs, width, mask }),
        (arb_offsets(), arb_width(), any::<u32>()).prop_map(|(offsets, width, mask)| {
            WarpInstruction::LoadShared {
                offsets,
                width,
                mask,
            }
        }),
        (arb_offsets(), arb_width(), any::<u32>()).prop_map(|(offsets, width, mask)| {
            WarpInstruction::StoreShared {
                offsets,
                width,
                mask,
            }
        }),
        (any::<bool>(), any::<u32>())
            .prop_map(|(divergent, mask)| WarpInstruction::Branch { divergent, mask }),
    ]
}

/// A structurally valid block: 1..=4 warps, each stream split into the same
/// number of barrier-separated segments (the validity invariant `validate`
/// enforces — mismatched barrier counts would deadlock real hardware).
fn arb_block() -> impl Strategy<Value = BlockTrace> {
    (1usize..=4, 0usize..=2).prop_flat_map(|(warps, barriers)| {
        proptest::collection::vec(
            proptest::collection::vec(
                proptest::collection::vec(arb_instruction(), 0..4),
                barriers + 1,
            ),
            warps,
        )
        .prop_map(|warp_segments| {
            let mut t = BlockTrace::with_warps(warp_segments.len());
            for (w, segments) in warp_segments.into_iter().enumerate() {
                for (i, segment) in segments.into_iter().enumerate() {
                    if i > 0 {
                        t.warps[w].push(WarpInstruction::Barrier);
                    }
                    t.warps[w].extend(segment);
                }
            }
            t
        })
    })
}

/// The raw-event fields with exact static counterparts, i.e. the 19
/// counters the bf-analyze differential oracle compares at 1e-9.
fn statically_exact(ev: &RawEvents) -> [f64; 19] {
    [
        ev.inst_executed,
        ev.inst_issued,
        ev.thread_inst_executed,
        ev.branch,
        ev.divergent_branch,
        ev.shared_load,
        ev.shared_store,
        ev.shared_load_replay,
        ev.shared_store_replay,
        ev.gld_request,
        ev.gst_request,
        ev.gld_requested_bytes,
        ev.gst_requested_bytes,
        ev.global_load_transactions,
        ev.global_store_transactions,
        ev.l2_write_transactions,
        ev.dram_write_transactions,
        ev.warps_launched,
        ev.blocks_launched,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The SoA engine is bit-identical to the reference interpreter over
    /// arbitrary resident sets on both GPU generations: same cycles, same
    /// DRAM bytes, same value in every raw-event slot, down to the last
    /// mantissa bit.
    #[test]
    fn soa_engine_matches_reference_interpreter_bit_exactly(
        gpu in arb_gpu(),
        blocks in proptest::collection::vec(arb_block(), 1..4),
    ) {
        let (mut l1_ref, mut l2_ref) = fresh_caches(&gpu);
        let reference = simulate_sm(&gpu, &blocks, &mut l1_ref, &mut l2_ref).unwrap();
        let (mut l1_soa, mut l2_soa) = fresh_caches(&gpu);
        let batched = soa::simulate_resident_set(&gpu, &blocks, &mut l1_soa, &mut l2_soa).unwrap();

        prop_assert_eq!(
            batched.cycles.to_bits(),
            reference.cycles.to_bits(),
            "cycles diverged: soa {} vs reference {}",
            batched.cycles,
            reference.cycles
        );
        prop_assert_eq!(
            batched.dram_bytes.to_bits(),
            reference.dram_bytes.to_bits(),
            "dram bytes diverged: soa {} vs reference {}",
            batched.dram_bytes,
            reference.dram_bytes
        );
        let ev_ref = reference.events.as_array();
        let ev_soa = batched.events.as_array();
        for (i, (s, r)) in ev_soa.iter().zip(ev_ref.iter()).enumerate() {
            prop_assert_eq!(
                s.to_bits(),
                r.to_bits(),
                "raw event slot {} diverged: soa {} vs reference {}",
                i,
                s,
                r
            );
        }
    }

    /// Loop extrapolation is counter-exact: a launch whose warps repeat a
    /// steady-state unit many times yields the same statically exact
    /// counters whether the tail is simulated or extrapolated, to the
    /// differential-oracle tolerance.
    #[test]
    fn loop_extrapolation_preserves_statically_exact_counters(
        gpu in arb_gpu(),
        unit in proptest::collection::vec(arb_instruction(), 1..4),
        with_barrier in any::<bool>(),
        warps in 1usize..=4,
        reps in 8usize..48,
        grid_mult in 1usize..4,
    ) {
        let mut block = BlockTrace::with_warps(warps);
        for stream in &mut block.warps {
            for _ in 0..reps {
                stream.extend(unit.iter().cloned());
                if with_barrier {
                    stream.push(WarpInstruction::Barrier);
                }
            }
        }
        let lc = LaunchConfig {
            grid_blocks: warps * grid_mult * gpu.num_sms,
            threads_per_block: warps * 32,
            regs_per_thread: 16,
            shared_mem_per_block: 0,
        };
        let occ = occupancy(&gpu, &lc).unwrap();
        let traces = vec![block];
        let full = simulate_sampled_launch_with(
            &gpu, &lc, occ, &traces,
            &EngineOptions { loop_extrapolation: false },
        ).unwrap();
        let extr = simulate_sampled_launch_with(
            &gpu, &lc, occ, &traces,
            &EngineOptions { loop_extrapolation: true },
        ).unwrap();

        prop_assert_eq!(extr.waves, full.waves);
        prop_assert_eq!(extr.sampled_blocks, full.sampled_blocks);
        let a = statically_exact(&extr.events);
        let b = statically_exact(&full.events);
        for (i, (x, f)) in a.iter().zip(b.iter()).enumerate() {
            let rel = (x - f).abs() / f.abs().max(1.0);
            prop_assert!(
                rel <= 1e-9,
                "statically exact counter {} drifted: extrapolated {} vs full {} (rel {:.3e})",
                i, x, f, rel
            );
        }
    }
}
