//! Lock-free request metrics with a Prometheus-style text exposition.
//!
//! Every worker thread records into shared atomics; `GET /metrics` renders
//! them together with the process-wide launch-memoization counters from
//! [`gpu_sim::memo`], so one scrape covers both the serving layer and the
//! simulation substrate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Upper bounds (microseconds) of the latency histogram buckets; a final
/// implicit `+Inf` bucket catches the rest.
pub const LATENCY_BUCKETS_US: [u64; 8] = [50, 100, 250, 500, 1_000, 5_000, 25_000, 100_000];

/// Upper bounds (rows) of the coalesced-batch-size histogram; a final
/// implicit `+Inf` bucket catches the rest.
pub const BATCH_BUCKETS: [u64; 7] = [1, 2, 4, 8, 16, 32, 64];

/// The routes the server distinguishes in its counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `POST /predict`
    Predict,
    /// `GET /bottleneck`
    Bottleneck,
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics`
    Metrics,
    /// Registry read endpoints (`GET /v1/models`, the shadow report).
    Models,
    /// Admin mutations (`POST /v1/models/load|unload|alias`).
    Admin,
    /// Anything else (404/405/parse failures).
    Other,
}

impl Route {
    const ALL: [Route; 7] = [
        Route::Predict,
        Route::Bottleneck,
        Route::Healthz,
        Route::Metrics,
        Route::Models,
        Route::Admin,
        Route::Other,
    ];

    fn index(self) -> usize {
        match self {
            Route::Predict => 0,
            Route::Bottleneck => 1,
            Route::Healthz => 2,
            Route::Metrics => 3,
            Route::Models => 4,
            Route::Admin => 5,
            Route::Other => 6,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Route::Predict => "predict",
            Route::Bottleneck => "bottleneck",
            Route::Healthz => "healthz",
            Route::Metrics => "metrics",
            Route::Models => "models",
            Route::Admin => "admin",
            Route::Other => "other",
        }
    }
}

/// The phases of a `/predict` request that get their own latency histogram
/// (mirroring the `parse`/`predict`/`serialize` trace spans).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Body decode + JSON parse + query validation.
    Parse,
    /// Cache lookup and (on miss) the forest walk.
    Predict,
    /// Response serialization.
    Serialize,
}

impl Phase {
    const ALL: [Phase; 3] = [Phase::Parse, Phase::Predict, Phase::Serialize];

    fn index(self) -> usize {
        match self {
            Phase::Parse => 0,
            Phase::Predict => 1,
            Phase::Serialize => 2,
        }
    }

    /// The `phase` label used in the Prometheus exposition (and as the trace
    /// span name).
    pub fn label(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Predict => "predict",
            Phase::Serialize => "serialize",
        }
    }
}

struct AtomicArray<const N: usize>([AtomicU64; N]);

impl<const N: usize> Default for AtomicArray<N> {
    fn default() -> Self {
        AtomicArray(std::array::from_fn(|_| AtomicU64::new(0)))
    }
}

impl<const N: usize> AtomicArray<N> {
    fn add(&self, i: usize, n: u64) {
        self.0[i].fetch_add(n, Ordering::Relaxed);
    }

    fn get(&self, i: usize) -> u64 {
        self.0[i].load(Ordering::Relaxed)
    }
}

/// Shared counters for one server instance.
pub struct Metrics {
    started: Instant,
    requests: AtomicArray<7>,
    responses_2xx: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
    // Per-bucket (non-cumulative) counts; bucket 8 is +Inf.
    latency_buckets: AtomicArray<9>,
    latency_sum_us: AtomicU64,
    // One 9-bucket histogram per predict phase, same bucket bounds.
    phase_buckets: [AtomicArray<9>; 3],
    phase_sum_us: AtomicArray<3>,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    // Admission-control state: in-flight predict jobs (gauge) and requests
    // turned away with 429 at the queue bound.
    queue_depth: AtomicU64,
    queue_rejections: AtomicU64,
    // Per-bucket (non-cumulative) rows-per-forest-pass counts; bucket 7 is
    // +Inf. Tracks how well micro-batching coalesces concurrent requests.
    batch_buckets: AtomicArray<8>,
    batch_sum: AtomicU64,
    // Prediction-cache evictions attributed to the evicted entry's model
    // (the cache key's content-id component), so multi-model cache churn
    // is visible per bundle. Mutex-guarded: evictions are rare relative to
    // lookups, and only the evicting thread touches it.
    cache_evictions: std::sync::Mutex<std::collections::BTreeMap<u64, u64>>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Metrics {
        Metrics {
            started: Instant::now(),
            requests: AtomicArray::default(),
            responses_2xx: AtomicU64::new(0),
            responses_4xx: AtomicU64::new(0),
            responses_5xx: AtomicU64::new(0),
            latency_buckets: AtomicArray::default(),
            latency_sum_us: AtomicU64::new(0),
            phase_buckets: std::array::from_fn(|_| AtomicArray::default()),
            phase_sum_us: AtomicArray::default(),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            queue_rejections: AtomicU64::new(0),
            batch_buckets: AtomicArray::default(),
            batch_sum: AtomicU64::new(0),
            cache_evictions: std::sync::Mutex::new(std::collections::BTreeMap::new()),
        }
    }

    /// Records one served request.
    pub fn observe(&self, route: Route, status: u16, latency_us: u64) {
        self.requests.add(route.index(), 1);
        match status {
            200..=299 => self.responses_2xx.fetch_add(1, Ordering::Relaxed),
            400..=499 => self.responses_4xx.fetch_add(1, Ordering::Relaxed),
            _ => self.responses_5xx.fetch_add(1, Ordering::Relaxed),
        };
        let bucket = LATENCY_BUCKETS_US
            .iter()
            .position(|&le| latency_us <= le)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.latency_buckets.add(bucket, 1);
        self.latency_sum_us.fetch_add(latency_us, Ordering::Relaxed);
    }

    /// Records one phase of a `/predict` request.
    pub fn observe_phase(&self, phase: Phase, latency_us: u64) {
        let bucket = LATENCY_BUCKETS_US
            .iter()
            .position(|&le| latency_us <= le)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.phase_buckets[phase.index()].add(bucket, 1);
        self.phase_sum_us.add(phase.index(), latency_us);
    }

    /// Records a prediction-cache hit.
    pub fn cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a prediction-cache miss.
    pub fn cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one prediction-cache eviction, attributed to the model the
    /// evicted entry belonged to.
    pub fn cache_evicted(&self, model_id: u64) {
        *self
            .cache_evictions
            .lock()
            .unwrap()
            .entry(model_id)
            .or_insert(0) += 1;
    }

    /// Total evictions recorded for one model.
    pub fn cache_evictions_for(&self, model_id: u64) -> u64 {
        self.cache_evictions
            .lock()
            .unwrap()
            .get(&model_id)
            .copied()
            .unwrap_or(0)
    }

    /// A `/predict` job entered the admission queue.
    pub fn queue_enter(&self) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// A `/predict` job finished (its completion was consumed).
    pub fn queue_exit(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// A request was turned away with 429 at the admission bound.
    pub fn queue_reject(&self) {
        self.queue_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Current in-flight `/predict` jobs (queued plus executing).
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Total 429 admission rejections.
    pub fn queue_rejections(&self) -> u64 {
        self.queue_rejections.load(Ordering::Relaxed)
    }

    /// Records one coalesced forest evaluation of `rows` rows.
    pub fn observe_batch(&self, rows: u64) {
        let bucket = BATCH_BUCKETS
            .iter()
            .position(|&le| rows <= le)
            .unwrap_or(BATCH_BUCKETS.len());
        self.batch_buckets.add(bucket, 1);
        self.batch_sum.fetch_add(rows, Ordering::Relaxed);
    }

    /// `(evaluations, total rows)` of the coalesced-batch histogram.
    pub fn batch_counts(&self) -> (u64, u64) {
        let count = (0..=BATCH_BUCKETS.len())
            .map(|i| self.batch_buckets.get(i))
            .sum();
        (count, self.batch_sum.load(Ordering::Relaxed))
    }

    /// Total requests across all routes.
    pub fn total_requests(&self) -> u64 {
        Route::ALL
            .iter()
            .map(|r| self.requests.get(r.index()))
            .sum()
    }

    /// Requests seen on one route.
    pub fn requests_on(&self, route: Route) -> u64 {
        self.requests.get(route.index())
    }

    /// `(hits, misses)` of the prediction cache.
    pub fn cache_counts(&self) -> (u64, u64) {
        (
            self.cache_hits.load(Ordering::Relaxed),
            self.cache_misses.load(Ordering::Relaxed),
        )
    }

    /// Renders the text exposition (Prometheus format).
    pub fn render(&self, cache_len: usize, cache_capacity: usize) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("# HELP bf_uptime_seconds Seconds since the server started.\n");
        out.push_str("# TYPE bf_uptime_seconds gauge\n");
        out.push_str(&format!(
            "bf_uptime_seconds {}\n",
            self.started.elapsed().as_secs()
        ));

        out.push_str("# HELP bf_requests_total Requests received, by route.\n");
        out.push_str("# TYPE bf_requests_total counter\n");
        for route in Route::ALL {
            out.push_str(&format!(
                "bf_requests_total{{route=\"{}\"}} {}\n",
                route.label(),
                self.requests.get(route.index())
            ));
        }

        out.push_str("# HELP bf_responses_total Responses sent, by status class.\n");
        out.push_str("# TYPE bf_responses_total counter\n");
        for (class, v) in [
            ("2xx", &self.responses_2xx),
            ("4xx", &self.responses_4xx),
            ("5xx", &self.responses_5xx),
        ] {
            out.push_str(&format!(
                "bf_responses_total{{class=\"{class}\"}} {}\n",
                v.load(Ordering::Relaxed)
            ));
        }

        out.push_str("# HELP bf_request_latency_us Request latency histogram (microseconds).\n");
        out.push_str("# TYPE bf_request_latency_us histogram\n");
        let mut cumulative = 0u64;
        for (i, le) in LATENCY_BUCKETS_US.iter().enumerate() {
            cumulative += self.latency_buckets.get(i);
            out.push_str(&format!(
                "bf_request_latency_us_bucket{{le=\"{le}\"}} {cumulative}\n"
            ));
        }
        cumulative += self.latency_buckets.get(LATENCY_BUCKETS_US.len());
        out.push_str(&format!(
            "bf_request_latency_us_bucket{{le=\"+Inf\"}} {cumulative}\n"
        ));
        out.push_str(&format!(
            "bf_request_latency_us_sum {}\n",
            self.latency_sum_us.load(Ordering::Relaxed)
        ));
        out.push_str(&format!("bf_request_latency_us_count {cumulative}\n"));

        out.push_str(
            "# HELP bf_phase_latency_us Per-phase /predict latency histogram (microseconds).\n",
        );
        out.push_str("# TYPE bf_phase_latency_us histogram\n");
        for phase in Phase::ALL {
            let label = phase.label();
            let buckets = &self.phase_buckets[phase.index()];
            let mut cumulative = 0u64;
            for (i, le) in LATENCY_BUCKETS_US.iter().enumerate() {
                cumulative += buckets.get(i);
                out.push_str(&format!(
                    "bf_phase_latency_us_bucket{{phase=\"{label}\",le=\"{le}\"}} {cumulative}\n"
                ));
            }
            cumulative += buckets.get(LATENCY_BUCKETS_US.len());
            out.push_str(&format!(
                "bf_phase_latency_us_bucket{{phase=\"{label}\",le=\"+Inf\"}} {cumulative}\n"
            ));
            out.push_str(&format!(
                "bf_phase_latency_us_sum{{phase=\"{label}\"}} {}\n",
                self.phase_sum_us.get(phase.index())
            ));
            out.push_str(&format!(
                "bf_phase_latency_us_count{{phase=\"{label}\"}} {cumulative}\n"
            ));
        }

        let (hits, misses) = self.cache_counts();
        out.push_str("# HELP bf_prediction_cache Prediction LRU cache statistics.\n");
        out.push_str("# TYPE bf_prediction_cache_hits_total counter\n");
        out.push_str(&format!("bf_prediction_cache_hits_total {hits}\n"));
        out.push_str("# TYPE bf_prediction_cache_misses_total counter\n");
        out.push_str(&format!("bf_prediction_cache_misses_total {misses}\n"));
        out.push_str("# TYPE bf_prediction_cache_entries gauge\n");
        out.push_str(&format!("bf_prediction_cache_entries {cache_len}\n"));
        out.push_str("# TYPE bf_prediction_cache_capacity gauge\n");
        out.push_str(&format!("bf_prediction_cache_capacity {cache_capacity}\n"));
        out.push_str("# HELP bf_cache_evictions_total Prediction-cache evictions, per model.\n");
        out.push_str("# TYPE bf_cache_evictions_total counter\n");
        for (model, n) in self.cache_evictions.lock().unwrap().iter() {
            out.push_str(&format!(
                "bf_cache_evictions_total{{model=\"{model:016x}\"}} {n}\n"
            ));
        }

        out.push_str("# HELP bf_queue_depth In-flight /predict jobs (queued + executing).\n");
        out.push_str("# TYPE bf_queue_depth gauge\n");
        out.push_str(&format!("bf_queue_depth {}\n", self.queue_depth()));
        out.push_str(
            "# HELP bf_queue_rejections_total Requests rejected with 429 at the admission bound.\n",
        );
        out.push_str("# TYPE bf_queue_rejections_total counter\n");
        out.push_str(&format!(
            "bf_queue_rejections_total {}\n",
            self.queue_rejections()
        ));

        out.push_str(
            "# HELP bf_predict_batch_rows Rows per coalesced forest evaluation (micro-batching).\n",
        );
        out.push_str("# TYPE bf_predict_batch_rows histogram\n");
        let mut cumulative = 0u64;
        for (i, le) in BATCH_BUCKETS.iter().enumerate() {
            cumulative += self.batch_buckets.get(i);
            out.push_str(&format!(
                "bf_predict_batch_rows_bucket{{le=\"{le}\"}} {cumulative}\n"
            ));
        }
        cumulative += self.batch_buckets.get(BATCH_BUCKETS.len());
        out.push_str(&format!(
            "bf_predict_batch_rows_bucket{{le=\"+Inf\"}} {cumulative}\n"
        ));
        out.push_str(&format!(
            "bf_predict_batch_rows_sum {}\n",
            self.batch_sum.load(Ordering::Relaxed)
        ));
        out.push_str(&format!("bf_predict_batch_rows_count {cumulative}\n"));

        // The training-time launch-memoization cache (process-wide). Idle
        // on a pure serving process, but a `serve` run that trained in the
        // same process (or future on-line refits) shows up here.
        let sim = gpu_sim::memo::global_cache_stats();
        out.push_str("# HELP bf_sim_cache Launch-memoization cache (gpu_sim::memo).\n");
        out.push_str("# TYPE bf_sim_cache_hits_total counter\n");
        out.push_str(&format!("bf_sim_cache_hits_total {}\n", sim.hits));
        out.push_str("# TYPE bf_sim_cache_misses_total counter\n");
        out.push_str(&format!("bf_sim_cache_misses_total {}\n", sim.misses));
        let disk = gpu_sim::memo::global_disk_cache_stats();
        out.push_str("# TYPE bf_sim_cache_disk_hits_total counter\n");
        out.push_str(&format!("bf_sim_cache_disk_hits_total {}\n", disk.hits));
        out.push_str("# TYPE bf_sim_cache_disk_misses_total counter\n");
        out.push_str(&format!("bf_sim_cache_disk_misses_total {}\n", disk.misses));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_by_route_and_class() {
        let m = Metrics::new();
        m.observe(Route::Predict, 200, 10);
        m.observe(Route::Predict, 422, 80);
        m.observe(Route::Healthz, 200, 5);
        assert_eq!(m.total_requests(), 3);
        assert_eq!(m.requests_on(Route::Predict), 2);
        let text = m.render(0, 128);
        assert!(text.contains("bf_requests_total{route=\"predict\"} 2"));
        assert!(text.contains("bf_responses_total{class=\"2xx\"} 2"));
        assert!(text.contains("bf_responses_total{class=\"4xx\"} 1"));
        assert!(text.contains("bf_request_latency_us_count 3"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = Metrics::new();
        m.observe(Route::Predict, 200, 10); // le=50
        m.observe(Route::Predict, 200, 90); // le=100
        m.observe(Route::Predict, 200, 1_000_000); // +Inf
        let text = m.render(0, 0);
        assert!(text.contains("bf_request_latency_us_bucket{le=\"50\"} 1"));
        assert!(text.contains("bf_request_latency_us_bucket{le=\"100\"} 2"));
        assert!(text.contains("bf_request_latency_us_bucket{le=\"100000\"} 2"));
        assert!(text.contains("bf_request_latency_us_bucket{le=\"+Inf\"} 3"));
    }

    #[test]
    fn phase_histograms_render_per_phase() {
        let m = Metrics::new();
        m.observe_phase(Phase::Parse, 10); // le=50
        m.observe_phase(Phase::Parse, 600); // le=1000
        m.observe_phase(Phase::Predict, 40_000); // le=100000
        let text = m.render(0, 0);
        assert!(text.contains("bf_phase_latency_us_bucket{phase=\"parse\",le=\"50\"} 1"));
        assert!(text.contains("bf_phase_latency_us_bucket{phase=\"parse\",le=\"+Inf\"} 2"));
        assert!(text.contains("bf_phase_latency_us_sum{phase=\"parse\"} 610"));
        assert!(text.contains("bf_phase_latency_us_count{phase=\"parse\"} 2"));
        assert!(text.contains("bf_phase_latency_us_bucket{phase=\"predict\",le=\"100000\"} 1"));
        assert!(text.contains("bf_phase_latency_us_count{phase=\"serialize\"} 0"));
    }

    #[test]
    fn cache_and_sim_counters_render() {
        let m = Metrics::new();
        m.cache_hit();
        m.cache_hit();
        m.cache_miss();
        assert_eq!(m.cache_counts(), (2, 1));
        let text = m.render(1, 1024);
        assert!(text.contains("bf_prediction_cache_hits_total 2"));
        assert!(text.contains("bf_prediction_cache_misses_total 1"));
        assert!(text.contains("bf_prediction_cache_entries 1"));
        assert!(text.contains("bf_sim_cache_hits_total"));
        assert!(text.contains("bf_sim_cache_misses_total"));
    }

    #[test]
    fn cache_evictions_render_per_model() {
        let m = Metrics::new();
        m.cache_evicted(0xabc);
        m.cache_evicted(0xabc);
        m.cache_evicted(0xdef);
        assert_eq!(m.cache_evictions_for(0xabc), 2);
        assert_eq!(m.cache_evictions_for(0xdef), 1);
        assert_eq!(m.cache_evictions_for(0x123), 0);
        let text = m.render(0, 0);
        assert!(text.contains("bf_cache_evictions_total{model=\"0000000000000abc\"} 2"));
        assert!(text.contains("bf_cache_evictions_total{model=\"0000000000000def\"} 1"));
    }

    #[test]
    fn queue_gauge_tracks_enter_exit_and_rejections() {
        let m = Metrics::new();
        m.queue_enter();
        m.queue_enter();
        m.queue_exit();
        m.queue_reject();
        assert_eq!(m.queue_depth(), 1);
        assert_eq!(m.queue_rejections(), 1);
        let text = m.render(0, 0);
        assert!(text.contains("bf_queue_depth 1"));
        assert!(text.contains("bf_queue_rejections_total 1"));
    }

    #[test]
    fn batch_histogram_buckets_are_cumulative() {
        let m = Metrics::new();
        m.observe_batch(1);
        m.observe_batch(2);
        m.observe_batch(7); // le=8
        m.observe_batch(1000); // +Inf
        assert_eq!(m.batch_counts(), (4, 1010));
        let text = m.render(0, 0);
        assert!(text.contains("bf_predict_batch_rows_bucket{le=\"1\"} 1"));
        assert!(text.contains("bf_predict_batch_rows_bucket{le=\"2\"} 2"));
        assert!(text.contains("bf_predict_batch_rows_bucket{le=\"8\"} 3"));
        assert!(text.contains("bf_predict_batch_rows_bucket{le=\"64\"} 3"));
        assert!(text.contains("bf_predict_batch_rows_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("bf_predict_batch_rows_sum 1010"));
        assert!(text.contains("bf_predict_batch_rows_count 4"));
    }
}
