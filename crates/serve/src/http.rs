//! A minimal HTTP/1.1 layer on `std` I/O: just enough request parsing and
//! response writing for the prediction server. Supports persistent
//! connections (`keep-alive`), `Content-Length` bodies, and bounded header
//! and body sizes; anything exotic (chunked uploads, continuations) is
//! rejected rather than guessed at.

use std::io::{BufRead, Write};

/// Maximum accepted size of the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum accepted request-body size.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parse/read failure, mapped to the HTTP status the server should send.
#[derive(Debug)]
pub struct HttpError {
    /// Status code to answer with (400, 413, 431, ...).
    pub status: u16,
    /// Human-readable reason included in the response body.
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> HttpError {
        HttpError {
            status,
            message: message.into(),
        }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Request method, uppercased (`GET`, `POST`, ...).
    pub method: String,
    /// Path portion of the target, without the query string.
    pub path: String,
    /// Raw query string (without `?`), if any.
    pub query: Option<String>,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this request.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .map(|v| v.eq_ignore_ascii_case("close"))
            .unwrap_or(false)
    }

    /// A query parameter's (URL-decoded-enough) value: `?k=5` → `"5"`.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.as_deref()?.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }

    /// Reads one request off a buffered stream. Returns `Ok(None)` on a
    /// clean EOF before any bytes (client closed a kept-alive connection).
    ///
    /// Convenience wrapper over [`RequestParser`] for callers that own the
    /// whole stream for one request. Connections that serve *multiple*
    /// requests must keep one `RequestParser` alive instead: this wrapper
    /// may buffer pipelined bytes beyond the first request, and those bytes
    /// die with the local parser.
    pub fn read_from<R: BufRead>(reader: &mut R) -> Result<Option<Request>, HttpError> {
        let mut parser = RequestParser::new();
        loop {
            if let Some(req) = parser.next_request()? {
                return Ok(Some(req));
            }
            let available = reader
                .fill_buf()
                .map_err(|e| HttpError::new(400, format!("read error: {e}")))?;
            if available.is_empty() {
                return if parser.has_partial() {
                    Err(HttpError::new(400, "connection closed mid-request"))
                } else {
                    Ok(None)
                };
            }
            let n = available.len();
            parser.push(available);
            reader.consume(n);
        }
    }
}

/// A fully parsed request head awaiting its body bytes.
#[derive(Debug)]
struct PendingHead {
    method: String,
    path: String,
    query: Option<String>,
    headers: Vec<(String, String)>,
    content_length: usize,
}

/// Incremental HTTP/1.1 request parser: feed it bytes as they arrive (in
/// chunks of any size, split anywhere) and pull complete requests out.
///
/// The event loop owns one per connection; `push` never allocates more than
/// the byte cap it is about to enforce — the head buffer is bounded by
/// [`MAX_HEAD_BYTES`] and the body buffer is only grown *after* the declared
/// `Content-Length` has been checked against [`MAX_BODY_BYTES`], so a hostile
/// `Content-Length: 99999999999` costs nothing.
///
/// After an `Err` the connection is unusable (the caller answers with the
/// error status and closes); further calls keep returning errors rather than
/// resynchronising mid-stream.
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
    /// Resume point for the head-terminator scan (avoids rescanning the
    /// whole head on every pushed chunk).
    scan: usize,
    /// Parsed head, once the blank line has been seen; `buf` then holds
    /// body bytes only.
    pending: Option<PendingHead>,
    poisoned: bool,
}

impl RequestParser {
    /// A fresh parser with empty buffers.
    pub fn new() -> RequestParser {
        RequestParser::default()
    }

    /// Appends bytes read off the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Whether the stream ends mid-request (bytes buffered or a head
    /// waiting on its body). Used to distinguish a clean keep-alive close
    /// from a truncated request at EOF.
    pub fn has_partial(&self) -> bool {
        self.pending.is_some() || !self.buf.is_empty()
    }

    /// Tries to extract the next complete request from the buffered bytes.
    /// `Ok(None)` means "need more bytes".
    pub fn next_request(&mut self) -> Result<Option<Request>, HttpError> {
        if self.poisoned {
            return Err(HttpError::new(400, "connection already failed parsing"));
        }
        match self.next_request_inner() {
            Ok(r) => Ok(r),
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    fn next_request_inner(&mut self) -> Result<Option<Request>, HttpError> {
        if self.pending.is_none() {
            // Tolerate blank lines before the request line (RFC 9112 §2.2).
            loop {
                if self.buf.starts_with(b"\r\n") {
                    self.buf.drain(..2);
                } else if self.buf.first() == Some(&b'\n') {
                    self.buf.drain(..1);
                } else {
                    break;
                }
            }
            if self.buf == b"\r" {
                return Ok(None); // half a CRLF; wait for the rest
            }
            // Find the blank line ending the head: "\n\r\n" or "\n\n".
            // The scan resumes where the last push left off (backed up two
            // bytes so a terminator straddling chunk boundaries is seen).
            let mut head_end = None; // (head bytes incl. final \n, total consumed)
            let mut i = self.scan;
            while i < self.buf.len() {
                if self.buf[i] == b'\n' {
                    match (self.buf.get(i + 1), self.buf.get(i + 2)) {
                        (Some(b'\n'), _) => {
                            head_end = Some((i + 1, i + 2));
                            break;
                        }
                        (Some(b'\r'), Some(b'\n')) => {
                            head_end = Some((i + 1, i + 3));
                            break;
                        }
                        _ => {}
                    }
                }
                i += 1;
            }
            let Some((head_len, consumed)) = head_end else {
                self.scan = self.buf.len().saturating_sub(2);
                if self.buf.len() > MAX_HEAD_BYTES {
                    return Err(HttpError::new(431, "request head too large"));
                }
                return Ok(None);
            };
            if head_len > MAX_HEAD_BYTES {
                return Err(HttpError::new(431, "request head too large"));
            }
            let head = parse_head(&self.buf[..head_len])?;
            self.buf.drain(..consumed);
            self.scan = 0;
            self.pending = Some(head);
        }

        // Body: the declared length was bounds-checked in `parse_head`
        // before any body buffer could grow.
        let need = self.pending.as_ref().map(|p| p.content_length).unwrap_or(0);
        if self.buf.len() < need {
            return Ok(None);
        }
        let head = self.pending.take().expect("pending head");
        let body: Vec<u8> = self.buf.drain(..need).collect();
        Ok(Some(Request {
            method: head.method,
            path: head.path,
            query: head.query,
            headers: head.headers,
            body,
        }))
    }
}

/// Parses a complete request head (request line + header lines, including
/// the final `\n` but not the blank line).
fn parse_head(raw: &[u8]) -> Result<PendingHead, HttpError> {
    let head = std::str::from_utf8(raw)
        .map_err(|_| HttpError::new(400, "request head is not valid UTF-8"))?;
    let mut lines = head.lines();
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::new(400, "empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "missing method"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "missing request target"))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::new(505, format!("unsupported {version}")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };

    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::new(400, format!("malformed header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::new(501, "chunked request bodies not supported"));
    }

    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::new(400, format!("bad Content-Length {v:?}")))?,
        None => 0,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::new(413, "request body too large"));
    }
    Ok(PendingHead {
        method,
        path,
        query,
        headers,
        content_length,
    })
}

/// The standard reason phrase for the status codes this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// An outgoing response.
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra response headers as `(name, value)` pairs (e.g. the per-request
    /// `X-BF-Trace-Id`).
    pub headers: Vec<(&'static str, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// Adds a response header (builder style).
    pub fn with_header(mut self, name: &'static str, value: String) -> Response {
        self.headers.push((name, value));
        self
    }

    /// A JSON error envelope: `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Response {
        let payload = serde_json::to_string(&ErrorBody {
            error: message.to_string(),
        })
        .unwrap_or_else(|_| "{\"error\":\"internal\"}".to_string());
        Response::json(status, payload)
    }

    /// Writes the response; `close` controls the `Connection` header.
    pub fn write_to<W: Write>(&self, writer: &mut W, close: bool) -> std::io::Result<()> {
        write!(
            writer,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len(),
            if close { "close" } else { "keep-alive" },
        )?;
        for (name, value) in &self.headers {
            write!(writer, "{name}: {value}\r\n")?;
        }
        write!(writer, "\r\n")?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

#[derive(serde::Serialize)]
struct ErrorBody {
    error: String,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        Request::read_from(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let req = parse(
            "POST /predict?debug=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\n{\"a\": 1}\n",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/predict");
        assert_eq!(req.query_param("debug"), Some("1"));
        assert_eq!(req.body, b"{\"a\": 1}\n");
        assert_eq!(req.header("host"), Some("x"));
        assert!(!req.wants_close());
    }

    #[test]
    fn eof_before_any_bytes_is_none() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn rejects_oversized_body_and_bad_length() {
        let big = format!(
            "POST /predict HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(parse(&big).unwrap_err().status, 413);
        let bad = "POST /p HTTP/1.1\r\nContent-Length: nope\r\n\r\n";
        assert_eq!(parse(bad).unwrap_err().status, 400);
    }

    #[test]
    fn rejects_oversized_head() {
        let raw = format!(
            "GET /x HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        assert_eq!(parse(&raw).unwrap_err().status, 431);
    }

    #[test]
    fn connection_close_is_detected() {
        let req = parse("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.wants_close());
    }

    #[test]
    fn incremental_parser_handles_any_chunking() {
        let raw = b"POST /predict?x=1 HTTP/1.1\r\nHost: a\r\nContent-Length: 4\r\n\r\nbodyGET /healthz HTTP/1.1\r\n\r\n";
        // Feed the same byte stream one chunk size at a time; every split
        // must yield the same two requests.
        for chunk in 1..raw.len() {
            let mut parser = RequestParser::new();
            let mut got = Vec::new();
            for piece in raw.chunks(chunk) {
                parser.push(piece);
                while let Some(req) = parser.next_request().unwrap() {
                    got.push(req);
                }
            }
            assert_eq!(got.len(), 2, "chunk size {chunk}");
            assert_eq!(got[0].method, "POST");
            assert_eq!(got[0].body, b"body");
            assert_eq!(got[1].method, "GET");
            assert_eq!(got[1].path, "/healthz");
            assert!(!parser.has_partial());
        }
    }

    #[test]
    fn incremental_parser_reports_partial_state() {
        let mut p = RequestParser::new();
        assert!(!p.has_partial());
        p.push(b"GET /x HTTP/1.1\r\nHost:");
        assert!(p.next_request().unwrap().is_none());
        assert!(p.has_partial());
        p.push(b" a\r\n\r\n");
        assert!(p.next_request().unwrap().is_some());
        assert!(!p.has_partial());
        // A head waiting on its body is also partial.
        p.push(b"POST /p HTTP/1.1\r\nContent-Length: 10\r\n\r\nab");
        assert!(p.next_request().unwrap().is_none());
        assert!(p.has_partial());
    }

    #[test]
    fn incremental_parser_rejects_oversized_content_length_before_buffering() {
        let mut p = RequestParser::new();
        p.push(format!("POST /p HTTP/1.1\r\nContent-Length: {}\r\n\r\n", u128::MAX).as_bytes());
        assert_eq!(p.next_request().unwrap_err().status, 400); // overflows usize parse
        let mut p = RequestParser::new();
        p.push(
            format!(
                "POST /p HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                MAX_BODY_BYTES + 1
            )
            .as_bytes(),
        );
        assert_eq!(p.next_request().unwrap_err().status, 413);
    }

    #[test]
    fn incremental_parser_caps_head_growth_without_terminator() {
        let mut p = RequestParser::new();
        let filler = vec![b'a'; 4096];
        let mut status = None;
        for _ in 0..=(MAX_HEAD_BYTES / filler.len() + 1) {
            p.push(&filler);
            match p.next_request() {
                Ok(None) => {}
                Err(e) => {
                    status = Some(e.status);
                    break;
                }
                Ok(Some(_)) => panic!("garbage parsed as a request"),
            }
        }
        assert_eq!(status, Some(431));
        // Poisoned after the error.
        assert!(p.next_request().is_err());
    }

    #[test]
    fn incremental_parser_skips_leading_blank_lines() {
        let mut p = RequestParser::new();
        p.push(b"\r\n\n\r\nGET /x HTTP/1.1\r\n\r\n");
        let req = p.next_request().unwrap().unwrap();
        assert_eq!(req.path, "/x");
    }

    #[test]
    fn response_writes_wire_format() {
        let mut buf = Vec::new();
        Response::json(200, "{\"ok\":true}".into())
            .write_to(&mut buf, true)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn extra_headers_are_written_before_the_body() {
        let mut buf = Vec::new();
        Response::json(200, "{}".into())
            .with_header("X-BF-Trace-Id", "bf-1234".into())
            .write_to(&mut buf, false)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("X-BF-Trace-Id: bf-1234\r\n"));
        let head_end = text.find("\r\n\r\n").unwrap();
        assert!(text.find("X-BF-Trace-Id").unwrap() < head_end);
        assert!(text.ends_with("{}"));
    }

    #[test]
    fn error_envelope_is_json() {
        let r = Response::error(422, "gpu mismatch");
        assert_eq!(r.status, 422);
        assert_eq!(
            String::from_utf8(r.body).unwrap(),
            "{\"error\":\"gpu mismatch\"}"
        );
    }
}
