//! A minimal HTTP/1.1 layer on `std` I/O: just enough request parsing and
//! response writing for the prediction server. Supports persistent
//! connections (`keep-alive`), `Content-Length` bodies, and bounded header
//! and body sizes; anything exotic (chunked uploads, continuations) is
//! rejected rather than guessed at.

use std::io::{BufRead, Write};

/// Maximum accepted size of the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum accepted request-body size.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parse/read failure, mapped to the HTTP status the server should send.
#[derive(Debug)]
pub struct HttpError {
    /// Status code to answer with (400, 413, 431, ...).
    pub status: u16,
    /// Human-readable reason included in the response body.
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> HttpError {
        HttpError {
            status,
            message: message.into(),
        }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Request method, uppercased (`GET`, `POST`, ...).
    pub method: String,
    /// Path portion of the target, without the query string.
    pub path: String,
    /// Raw query string (without `?`), if any.
    pub query: Option<String>,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this request.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .map(|v| v.eq_ignore_ascii_case("close"))
            .unwrap_or(false)
    }

    /// A query parameter's (URL-decoded-enough) value: `?k=5` → `"5"`.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.as_deref()?.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }

    /// Reads one request off a buffered stream. Returns `Ok(None)` on a
    /// clean EOF before any bytes (client closed a kept-alive connection).
    pub fn read_from<R: BufRead>(reader: &mut R) -> Result<Option<Request>, HttpError> {
        let mut head = Vec::new();
        // Read up to the blank line, byte-capped.
        loop {
            let mut line = Vec::new();
            let n = read_line(reader, &mut line, MAX_HEAD_BYTES - head.len())?;
            if n == 0 {
                if head.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::new(400, "connection closed mid-request"));
            }
            if line == b"\r\n" || line == b"\n" {
                if head.is_empty() {
                    continue; // tolerate leading blank lines (RFC 9112 §2.2)
                }
                break;
            }
            head.extend_from_slice(&line);
            if head.len() >= MAX_HEAD_BYTES {
                return Err(HttpError::new(431, "request head too large"));
            }
        }
        let head = String::from_utf8(head)
            .map_err(|_| HttpError::new(400, "request head is not valid UTF-8"))?;
        let mut lines = head.lines();
        let request_line = lines
            .next()
            .ok_or_else(|| HttpError::new(400, "empty request"))?;
        let mut parts = request_line.split_whitespace();
        let method = parts
            .next()
            .ok_or_else(|| HttpError::new(400, "missing method"))?
            .to_ascii_uppercase();
        let target = parts
            .next()
            .ok_or_else(|| HttpError::new(400, "missing request target"))?;
        let version = parts
            .next()
            .ok_or_else(|| HttpError::new(400, "missing HTTP version"))?;
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::new(505, format!("unsupported {version}")));
        }
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), Some(q.to_string())),
            None => (target.to_string(), None),
        };

        let mut headers = Vec::new();
        for line in lines {
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| HttpError::new(400, format!("malformed header line {line:?}")))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }

        if headers
            .iter()
            .any(|(n, v)| n == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
        {
            return Err(HttpError::new(501, "chunked request bodies not supported"));
        }

        let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
            Some((_, v)) => v
                .parse::<usize>()
                .map_err(|_| HttpError::new(400, format!("bad Content-Length {v:?}")))?,
            None => 0,
        };
        if content_length > MAX_BODY_BYTES {
            return Err(HttpError::new(413, "request body too large"));
        }
        let mut body = vec![0u8; content_length];
        if content_length > 0 {
            std::io::Read::read_exact(reader, &mut body)
                .map_err(|e| HttpError::new(400, format!("short body read: {e}")))?;
        }
        Ok(Some(Request {
            method,
            path,
            query,
            headers,
            body,
        }))
    }
}

/// Reads one `\n`-terminated line (CR retained), capped at `max` bytes.
/// Returns the number of bytes read (0 on EOF).
fn read_line<R: BufRead>(
    reader: &mut R,
    out: &mut Vec<u8>,
    max: usize,
) -> Result<usize, HttpError> {
    let mut taken = 0usize;
    loop {
        let available = reader
            .fill_buf()
            .map_err(|e| HttpError::new(400, format!("read error: {e}")))?;
        if available.is_empty() {
            return Ok(taken);
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(i) => {
                out.extend_from_slice(&available[..=i]);
                reader.consume(i + 1);
                return Ok(taken + i + 1);
            }
            None => {
                let n = available.len();
                out.extend_from_slice(available);
                reader.consume(n);
                taken += n;
                if taken > max {
                    return Err(HttpError::new(431, "header line too long"));
                }
            }
        }
    }
}

/// The standard reason phrase for the status codes this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// An outgoing response.
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra response headers as `(name, value)` pairs (e.g. the per-request
    /// `X-BF-Trace-Id`).
    pub headers: Vec<(&'static str, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// Adds a response header (builder style).
    pub fn with_header(mut self, name: &'static str, value: String) -> Response {
        self.headers.push((name, value));
        self
    }

    /// A JSON error envelope: `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Response {
        let payload = serde_json::to_string(&ErrorBody {
            error: message.to_string(),
        })
        .unwrap_or_else(|_| "{\"error\":\"internal\"}".to_string());
        Response::json(status, payload)
    }

    /// Writes the response; `close` controls the `Connection` header.
    pub fn write_to<W: Write>(&self, writer: &mut W, close: bool) -> std::io::Result<()> {
        write!(
            writer,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len(),
            if close { "close" } else { "keep-alive" },
        )?;
        for (name, value) in &self.headers {
            write!(writer, "{name}: {value}\r\n")?;
        }
        write!(writer, "\r\n")?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

#[derive(serde::Serialize)]
struct ErrorBody {
    error: String,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        Request::read_from(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let req = parse(
            "POST /predict?debug=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\n{\"a\": 1}\n",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/predict");
        assert_eq!(req.query_param("debug"), Some("1"));
        assert_eq!(req.body, b"{\"a\": 1}\n");
        assert_eq!(req.header("host"), Some("x"));
        assert!(!req.wants_close());
    }

    #[test]
    fn eof_before_any_bytes_is_none() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn rejects_oversized_body_and_bad_length() {
        let big = format!(
            "POST /predict HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(parse(&big).unwrap_err().status, 413);
        let bad = "POST /p HTTP/1.1\r\nContent-Length: nope\r\n\r\n";
        assert_eq!(parse(bad).unwrap_err().status, 400);
    }

    #[test]
    fn rejects_oversized_head() {
        let raw = format!(
            "GET /x HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        assert_eq!(parse(&raw).unwrap_err().status, 431);
    }

    #[test]
    fn connection_close_is_detected() {
        let req = parse("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.wants_close());
    }

    #[test]
    fn response_writes_wire_format() {
        let mut buf = Vec::new();
        Response::json(200, "{\"ok\":true}".into())
            .write_to(&mut buf, true)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn extra_headers_are_written_before_the_body() {
        let mut buf = Vec::new();
        Response::json(200, "{}".into())
            .with_header("X-BF-Trace-Id", "bf-1234".into())
            .write_to(&mut buf, false)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("X-BF-Trace-Id: bf-1234\r\n"));
        let head_end = text.find("\r\n\r\n").unwrap();
        assert!(text.find("X-BF-Trace-Id").unwrap() < head_end);
        assert!(text.ends_with("{}"));
    }

    #[test]
    fn error_envelope_is_json() {
        let r = Response::error(422, "gpu mismatch");
        assert_eq!(r.status, 422);
        assert_eq!(
            String::from_utf8(r.body).unwrap(),
            "{\"error\":\"gpu mismatch\"}"
        );
    }
}
