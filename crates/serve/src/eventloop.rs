//! The nonblocking serving engine: one readiness-driven event loop
//! (`epoll`) owning every connection, plus a small pool of prediction
//! workers behind a bounded admission queue.
//!
//! ```text
//!             epoll_wait
//!   listener ───────────► accept (nonblocking)
//!   sockets  ───────────► read → RequestParser → dispatch
//!                             ├─ non-predict: handled inline, response
//!                             │  queued at its sequence number
//!                             └─ POST /predict:
//!                                  queue full → 429 + Retry-After
//!                                  else       → admission queue
//!   wake pipe ──────────► drain worker completions → flush per-conn
//!
//!   worker: pop job, wait ≤ batch_window for more (≤ max_batch),
//!           parse all, ONE coalesced forest pass, render responses,
//!           push completions, wake the loop
//! ```
//!
//! Correctness notes:
//!
//! * **Pipelining** — requests on one connection get ascending sequence
//!   numbers; completed responses park in a `BTreeMap` until every earlier
//!   sequence has been appended to the write buffer, so responses always
//!   leave in request order no matter how workers interleave.
//! * **Backpressure** — the admission bound counts in-flight `/predict`
//!   jobs (queued + executing). At the bound the loop answers `429` with
//!   `Retry-After` immediately instead of queueing without limit; rejected
//!   requests never touch a worker.
//! * **Graceful shutdown** — on [`crate::ServerHandle::stop`] the loop
//!   deregisters the listener, stops reading, finishes queued and
//!   executing jobs, flushes every pending response, then joins the
//!   workers. A hard deadline bounds the drain against stuck peers.

#![cfg(target_os = "linux")]

use crate::http::{HttpError, Request, RequestParser, Response};
use crate::metrics::Route;
use crate::server::process_predict_jobs;
use crate::server::{
    elapsed_us, next_trace_id, predict_model_key, resolve_predict_target, traced_handle,
    PredictJob, ServeConfig, ServerState,
};
use crate::sys::{
    Epoll, EpollEvent, WakePipe, Waker, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
};
use bf_registry::RegistryReader;
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

const LISTENER_TOKEN: u64 = u64::MAX;
const WAKE_TOKEN: u64 = u64::MAX - 1;
/// Hard bound on how long a graceful drain waits for stuck peers.
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);

fn token_for(gen: u32, idx: usize) -> u64 {
    ((gen as u64) << 32) | idx as u64
}

/// One response finished out of order, parked until its turn on the wire.
struct Done {
    bytes: Vec<u8>,
    close: bool,
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    /// Bytes accepted by the kernel so far start at `out_pos`.
    out: Vec<u8>,
    out_pos: usize,
    /// Sequence number assigned to the next parsed request.
    next_seq: u64,
    /// Next sequence expected on the wire.
    flush_seq: u64,
    /// Completed responses waiting for earlier sequences to flush.
    ready: BTreeMap<u64, Done>,
    /// Jobs dispatched to workers and not yet completed.
    inflight: usize,
    /// No further reads: client EOF, `Connection: close`, a parse error,
    /// or a draining server.
    stop_reading: bool,
    /// Close once the backlog has flushed.
    close_when_flushed: bool,
    /// Unusable socket; close regardless of backlog.
    broken: bool,
    /// Currently registered epoll interest.
    interest: u32,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            parser: RequestParser::new(),
            out: Vec::new(),
            out_pos: 0,
            next_seq: 0,
            flush_seq: 0,
            ready: BTreeMap::new(),
            inflight: 0,
            stop_reading: false,
            close_when_flushed: false,
            broken: false,
            interest: EPOLLIN | EPOLLRDHUP,
        }
    }

    /// Moves in-order completed responses into the write buffer.
    fn flush_ready(&mut self) {
        while let Some(done) = self.ready.remove(&self.flush_seq) {
            self.out.extend_from_slice(&done.bytes);
            if done.close {
                self.close_when_flushed = true;
            }
            self.flush_seq += 1;
        }
    }

    /// Writes what the socket will take. `false` means the peer is gone.
    fn try_write(&mut self) -> bool {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return false,
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
        true
    }

    /// Anything still owed to the peer?
    fn has_backlog(&self) -> bool {
        !self.out.is_empty() || !self.ready.is_empty() || self.inflight > 0
    }

    fn should_close(&self) -> bool {
        self.broken || ((self.close_when_flushed || self.stop_reading) && !self.has_backlog())
    }

    /// Re-arms epoll interest to match what the connection can make
    /// progress on.
    fn sync_interest(&mut self, epoll: &Epoll, token: u64) {
        let mut want = 0u32;
        if !self.stop_reading {
            want |= EPOLLIN | EPOLLRDHUP;
        }
        if !self.out.is_empty() {
            want |= EPOLLOUT;
        }
        if want != self.interest && epoll.modify(self.stream.as_raw_fd(), want, token).is_ok() {
            self.interest = want;
        }
    }
}

/// Queues a rendered response at its sequence slot.
fn respond_inline(conn: &mut Conn, seq: u64, response: Response, trace_id: String, close: bool) {
    let response = response.with_header("X-BF-Trace-Id", trace_id);
    let mut bytes = Vec::with_capacity(256 + response.body.len());
    let _ = response.write_to(&mut bytes, close);
    conn.ready.insert(seq, Done { bytes, close });
}

/// A `/predict` job with its delivery coordinates.
struct QueuedJob {
    token: u64,
    seq: u64,
    close: bool,
    job: PredictJob,
}

/// A worker's finished response, headed back to the event loop.
struct Completion {
    token: u64,
    seq: u64,
    bytes: Vec<u8>,
    close: bool,
}

/// The bounded admission queue feeding the prediction workers.
#[derive(Default)]
struct JobQueue {
    inner: Mutex<QueueInner>,
    cond: Condvar,
}

#[derive(Default)]
struct QueueInner {
    jobs: VecDeque<QueuedJob>,
    quit: bool,
}

impl JobQueue {
    fn push(&self, job: QueuedJob) {
        self.inner.lock().unwrap().jobs.push_back(job);
        self.cond.notify_one();
    }

    fn quit(&self) {
        self.inner.lock().unwrap().quit = true;
        self.cond.notify_all();
    }

    /// Blocks for the first job, then coalesces whatever else arrives
    /// within `window` (up to `max_batch`) into one micro-batch. A zero
    /// window takes only what is already queued — batches grow with
    /// backlog but a lone request is never delayed. Returns `None` when
    /// the queue is shut down and empty.
    fn pop_batch(&self, window: Duration, max_batch: usize) -> Option<Vec<QueuedJob>> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(first) = inner.jobs.pop_front() {
                let mut batch = vec![first];
                if window.is_zero() {
                    while batch.len() < max_batch {
                        match inner.jobs.pop_front() {
                            Some(j) => batch.push(j),
                            None => break,
                        }
                    }
                    return Some(batch);
                }
                let deadline = Instant::now() + window;
                loop {
                    while batch.len() < max_batch {
                        match inner.jobs.pop_front() {
                            Some(j) => batch.push(j),
                            None => break,
                        }
                    }
                    if batch.len() >= max_batch || inner.quit {
                        break;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    if !inner.jobs.is_empty() {
                        continue;
                    }
                    let (guard, timeout) = self.cond.wait_timeout(inner, deadline - now).unwrap();
                    inner = guard;
                    if timeout.timed_out() && inner.jobs.is_empty() {
                        break;
                    }
                }
                return Some(batch);
            }
            if inner.quit {
                return None;
            }
            inner = self.cond.wait(inner).unwrap();
        }
    }
}

/// A prediction worker: pop a micro-batch, run one coalesced forest pass,
/// ship rendered responses back, wake the loop.
fn worker_loop(
    state: Arc<ServerState>,
    queue: Arc<JobQueue>,
    completions: Arc<Mutex<Vec<Completion>>>,
    waker: Waker,
    window: Duration,
    max_batch: usize,
) {
    while let Some(batch) = queue.pop_batch(window, max_batch) {
        let (meta, jobs): (Vec<(u64, u64, bool)>, Vec<PredictJob>) = batch
            .into_iter()
            .map(|qj| ((qj.token, qj.seq, qj.close), qj.job))
            .unzip();
        let responses = process_predict_jobs(&state, &jobs);
        let mut out = Vec::with_capacity(jobs.len());
        for (((token, seq, close), job), response) in meta.into_iter().zip(&jobs).zip(responses) {
            let response = response.with_header("X-BF-Trace-Id", job.trace_id.clone());
            let mut bytes = Vec::with_capacity(256 + response.body.len());
            let _ = response.write_to(&mut bytes, close);
            out.push(Completion {
                token,
                seq,
                bytes,
                close,
            });
        }
        completions.lock().unwrap().extend(out);
        waker.wake();
    }
}

struct Slot {
    gen: u32,
    conn: Option<Conn>,
}

/// Reads everything the socket has, parses complete requests, and
/// dispatches each (inline or to the admission queue).
fn handle_readable(
    conn: &mut Conn,
    token: u64,
    state: &ServerState,
    registry_reader: &mut RegistryReader,
    queue: &JobQueue,
    max_queue: usize,
) {
    let mut eof = false;
    let mut buf = [0u8; 16 * 1024];
    loop {
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                eof = true;
                break;
            }
            Ok(n) => {
                conn.parser.push(&buf[..n]);
                if n < buf.len() {
                    break; // level-triggered epoll re-reports any rest
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.broken = true;
                return;
            }
        }
    }
    while !conn.stop_reading {
        match conn.parser.next_request() {
            Ok(Some(request)) => dispatch(
                conn,
                token,
                request,
                state,
                registry_reader,
                queue,
                max_queue,
            ),
            Ok(None) => break,
            Err(HttpError { status, message }) => {
                // Same accounting as the blocking engine: parse failures
                // land on Route::Other and close the connection.
                let started = Instant::now();
                let trace_id = next_trace_id();
                state
                    .metrics
                    .observe(Route::Other, status, elapsed_us(started));
                let seq = conn.next_seq;
                conn.next_seq += 1;
                respond_inline(conn, seq, Response::error(status, &message), trace_id, true);
                conn.stop_reading = true;
            }
        }
    }
    if eof {
        if !conn.stop_reading && conn.parser.has_partial() {
            let started = Instant::now();
            let trace_id = next_trace_id();
            state
                .metrics
                .observe(Route::Other, 400, elapsed_us(started));
            let seq = conn.next_seq;
            conn.next_seq += 1;
            respond_inline(
                conn,
                seq,
                Response::error(400, "connection closed mid-request"),
                trace_id,
                true,
            );
        }
        conn.stop_reading = true;
    }
}

/// Routes one parsed request: `/predict` (and its per-model variants) is
/// resolved to a model *here* — so a hot swap cannot change what the
/// request predicts with while it waits — then goes through admission
/// control to the workers; everything else is answered inline.
fn dispatch(
    conn: &mut Conn,
    token: u64,
    request: Request,
    state: &ServerState,
    registry_reader: &mut RegistryReader,
    queue: &JobQueue,
    max_queue: usize,
) {
    let started = Instant::now();
    let trace_id = next_trace_id();
    let close = request.wants_close();
    let seq = conn.next_seq;
    conn.next_seq += 1;
    if close {
        // Honor `Connection: close`: this is the last request we parse.
        conn.stop_reading = true;
    }
    let predict_key = if request.method == "POST" {
        predict_model_key(&request.path)
    } else {
        None
    };
    if let Some(key) = predict_key {
        let resolved = match resolve_predict_target(&request.path, key, registry_reader) {
            Ok(r) => r,
            Err(response) => {
                state
                    .metrics
                    .observe(Route::Predict, response.status, elapsed_us(started));
                respond_inline(conn, seq, response, trace_id, close);
                return;
            }
        };
        if state.metrics.queue_depth() >= max_queue as u64 {
            state.metrics.queue_reject();
            bf_trace::counter!("serve.queue.rejections");
            let response = Response::error(429, "prediction queue is full; retry shortly")
                .with_header("Retry-After", "1".to_string());
            state
                .metrics
                .observe(Route::Predict, 429, elapsed_us(started));
            respond_inline(conn, seq, response, trace_id, close);
        } else {
            state.metrics.queue_enter();
            conn.inflight += 1;
            queue.push(QueuedJob {
                token,
                seq,
                close,
                job: PredictJob {
                    request,
                    started,
                    trace_id,
                    resolved,
                },
            });
        }
    } else {
        let (route, response) = traced_handle(&request, state, registry_reader, &trace_id);
        state
            .metrics
            .observe(route, response.status, elapsed_us(started));
        respond_inline(conn, seq, response, trace_id, close);
    }
}

fn close_conn(slots: &mut [Slot], free: &mut Vec<usize>, epoll: &Epoll, idx: usize) {
    if let Some(conn) = slots[idx].conn.take() {
        let _ = epoll.delete(conn.stream.as_raw_fd());
        slots[idx].gen = slots[idx].gen.wrapping_add(1);
        free.push(idx);
    }
}

/// Flush + write + (close | re-arm) one connection after any activity.
fn service_conn(slots: &mut [Slot], free: &mut Vec<usize>, epoll: &Epoll, idx: usize) {
    let gen = slots[idx].gen;
    let token = token_for(gen, idx);
    let Some(conn) = slots[idx].conn.as_mut() else {
        return;
    };
    conn.flush_ready();
    let alive = conn.try_write();
    if !alive || conn.should_close() {
        close_conn(slots, free, epoll, idx);
        return;
    }
    conn.sync_interest(epoll, token);
}

/// Runs the event loop until shutdown. Consumes the listener; returns once
/// in-flight work has drained and the workers have joined.
pub(crate) fn run(listener: TcpListener, state: Arc<ServerState>, config: &ServeConfig) {
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    let epoll = Epoll::new().expect("epoll_create1");
    let wake = WakePipe::new().expect("wake pipe");
    epoll
        .add(listener.as_raw_fd(), EPOLLIN, LISTENER_TOKEN)
        .expect("register listener");
    epoll
        .add(wake.read_fd(), EPOLLIN, WAKE_TOKEN)
        .expect("register wake pipe");

    let queue = Arc::new(JobQueue::default());
    let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));
    let max_queue = config.max_queue.max(1);
    let workers: Vec<_> = (0..config.threads.max(1))
        .map(|i| {
            let state = Arc::clone(&state);
            let queue = Arc::clone(&queue);
            let completions = Arc::clone(&completions);
            let waker = wake.waker();
            let window = config.batch_window;
            let max_batch = config.max_batch.max(1);
            std::thread::Builder::new()
                .name(format!("bf-serve-worker-{i}"))
                .spawn(move || worker_loop(state, queue, completions, waker, window, max_batch))
                .expect("spawn prediction worker")
        })
        .collect();

    let mut slots: Vec<Slot> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    // The loop's registry view: one atomic epoch check per resolve, a
    // table re-read only after a publication.
    let mut registry_reader = state.registry.reader();
    let mut events = vec![
        EpollEvent {
            events: 0,
            token: 0
        };
        256
    ];
    let mut draining = false;
    let mut drain_started = Instant::now();

    loop {
        if !draining && state.shutdown.load(Ordering::SeqCst) {
            draining = true;
            drain_started = Instant::now();
            let _ = epoll.delete(listener.as_raw_fd());
            // Stop reading everywhere; idle connections close right away,
            // the rest flush their backlog first.
            for idx in 0..slots.len() {
                if let Some(conn) = slots[idx].conn.as_mut() {
                    conn.stop_reading = true;
                }
                service_conn(&mut slots, &mut free, &epoll, idx);
            }
        }
        if draining {
            let quiet = state.metrics.queue_depth() == 0 && slots.iter().all(|s| s.conn.is_none());
            if quiet || drain_started.elapsed() > DRAIN_DEADLINE {
                break;
            }
        }
        let timeout_ms = if draining { 20 } else { 500 };
        let ready = match epoll.wait(&mut events, timeout_ms) {
            Ok(r) => r,
            Err(_) => break,
        };
        let mut accept_pending = false;
        let mut woken = false;
        let mut touched: Vec<(usize, u32)> = Vec::new();
        for ev in ready {
            match ev.token {
                LISTENER_TOKEN => accept_pending = true,
                WAKE_TOKEN => woken = true,
                token => touched.push(((token & 0xffff_ffff) as usize, ev.events)),
            }
        }

        if accept_pending && !draining {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(true);
                        let _ = stream.set_nodelay(true);
                        let idx = free.pop().unwrap_or_else(|| {
                            slots.push(Slot { gen: 0, conn: None });
                            slots.len() - 1
                        });
                        let token = token_for(slots[idx].gen, idx);
                        if epoll
                            .add(stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, token)
                            .is_ok()
                        {
                            slots[idx].conn = Some(Conn::new(stream));
                        } else {
                            free.push(idx);
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
        }

        for (idx, ev_mask) in touched {
            if idx >= slots.len() || slots[idx].conn.is_none() {
                continue; // closed earlier in this batch; gen'd token is stale
            }
            let token = token_for(slots[idx].gen, idx);
            if ev_mask & (EPOLLERR | EPOLLHUP) != 0 {
                close_conn(&mut slots, &mut free, &epoll, idx);
                continue;
            }
            if ev_mask & (EPOLLIN | EPOLLRDHUP) != 0 {
                let conn = slots[idx].conn.as_mut().expect("live conn");
                if !conn.stop_reading {
                    handle_readable(conn, token, &state, &mut registry_reader, &queue, max_queue);
                }
            }
            service_conn(&mut slots, &mut free, &epoll, idx);
        }

        if woken {
            wake.drain();
        }
        // Always sweep completions: a wake byte can coalesce with other
        // events or races, so delivery must not depend on seeing it.
        let done: Vec<Completion> = std::mem::take(&mut *completions.lock().unwrap());
        for completion in done {
            state.metrics.queue_exit();
            let idx = (completion.token & 0xffff_ffff) as usize;
            let gen = (completion.token >> 32) as u32;
            if idx >= slots.len() || slots[idx].gen != gen {
                continue; // connection died while the job was in flight
            }
            let Some(conn) = slots[idx].conn.as_mut() else {
                continue;
            };
            conn.inflight -= 1;
            conn.ready.insert(
                completion.seq,
                Done {
                    bytes: completion.bytes,
                    close: completion.close,
                },
            );
            service_conn(&mut slots, &mut free, &epoll, idx);
        }
    }

    // Workers finish whatever is still queued, then exit.
    queue.quit();
    for w in workers {
        let _ = w.join();
    }
}
