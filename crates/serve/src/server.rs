//! The prediction server, in two interchangeable engines:
//!
//! * [`ServeMode::EventLoop`] (default on Linux) — a nonblocking,
//!   readiness-driven event loop (`epoll`) with per-connection incremental
//!   parsers, HTTP/1.1 keep-alive and pipelining, a bounded admission queue
//!   (fast `429 Too Many Requests` + `Retry-After` when full), and adaptive
//!   micro-batching: concurrent `/predict` requests are coalesced into one
//!   forest pass. See [`crate::eventloop`].
//! * [`ServeMode::Threads`] — the original bounded worker-thread pool over
//!   blocking reads. Kept as the comparison baseline for `bench_serve` and
//!   as the fallback on non-Linux hosts.
//!
//! Both engines share the same routing, validation, prediction, metrics,
//! and cache code in this module, so their responses are byte-identical.
//!
//! Routes:
//!
//! * `POST /predict` — JSON query → predicted time + per-counter
//!   predictions. The body may also be a JSON *array* of queries; the
//!   answer is then an array, evaluated through the forest in one batched
//!   pass and bit-identical to asking one by one.
//! * `GET /bottleneck[?k=N]` — top-k permutation-importance findings.
//! * `GET /healthz` — liveness + bundle identity.
//! * `GET /metrics` — Prometheus-style text exposition.
//!
//! Repeated queries are answered from an LRU cache keyed on
//! `(bundle content id, exact query bits)`. Query vectors are canonicalized
//! before keying: non-finite characteristics are rejected with 422 (NaN
//! bit patterns would otherwise fragment the key space — and a NaN query
//! is meaningless to the forest anyway), and negative zero collapses to
//! `+0.0` so `-0.0` and `0.0` — equal to every tree split — share one
//! cache entry.

use crate::bundle::{ModelBundle, Prediction};
use crate::http::{HttpError, Request, RequestParser, Response};
use crate::lru::LruCache;
use crate::metrics::{Metrics, Phase, Route};
use bf_forest::FlatForest;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Which serving engine to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// Bounded worker-thread pool over blocking reads (legacy baseline).
    Threads,
    /// Nonblocking epoll event loop with micro-batching (Linux; falls back
    /// to [`ServeMode::Threads`] elsewhere).
    EventLoop,
}

impl Default for ServeMode {
    fn default() -> Self {
        if cfg!(target_os = "linux") {
            ServeMode::EventLoop
        } else {
            ServeMode::Threads
        }
    }
}

impl ServeMode {
    /// Parses a CLI-style mode name.
    pub fn from_name(name: &str) -> Option<ServeMode> {
        match name {
            "threads" | "legacy" => Some(ServeMode::Threads),
            "event-loop" | "eventloop" | "epoll" => Some(ServeMode::EventLoop),
            _ => None,
        }
    }

    /// The canonical CLI name.
    pub fn name(self) -> &'static str {
        match self {
            ServeMode::Threads => "threads",
            ServeMode::EventLoop => "event-loop",
        }
    }
}

/// Tuning knobs for [`PredictServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (connection handlers in [`ServeMode::Threads`],
    /// prediction workers in [`ServeMode::EventLoop`]).
    pub threads: usize,
    /// Capacity of the prediction LRU cache (entries).
    pub cache_capacity: usize,
    /// Per-connection read timeout ([`ServeMode::Threads`] only; the event
    /// loop never blocks on a read).
    pub read_timeout: Duration,
    /// Serving engine.
    pub mode: ServeMode,
    /// Admission bound: maximum in-flight `/predict` jobs (queued plus
    /// executing). Further predictions get a fast `429` + `Retry-After`
    /// instead of unbounded queueing. Event-loop mode only.
    pub max_queue: usize,
    /// How long a prediction worker waits for more requests to coalesce
    /// into one batched forest pass. Zero (the default) adds no artificial
    /// delay: a worker batches whatever has already queued up behind it,
    /// so batches grow naturally with backlog and stay at one row when the
    /// server is keeping up. A positive window trades first-request latency
    /// for larger batches. Event-loop mode only.
    pub batch_window: Duration,
    /// Largest micro-batch a worker will coalesce.
    pub max_batch: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            cache_capacity: 4096,
            read_timeout: Duration::from_secs(30),
            mode: ServeMode::default(),
            max_queue: 1024,
            batch_window: Duration::ZERO,
            max_batch: 64,
        }
    }
}

/// Parses and validates a `host:port` listen address, resolving hostnames
/// like `localhost`. Errors spell out what was wrong.
pub fn parse_addr(addr: &str) -> Result<SocketAddr, String> {
    if let Ok(sa) = addr.parse::<SocketAddr>() {
        return Ok(sa);
    }
    if !addr.contains(':') {
        return Err(format!(
            "invalid --addr {addr:?}: expected host:port (e.g. 127.0.0.1:7878)"
        ));
    }
    match addr.to_socket_addrs() {
        Ok(mut it) => it
            .next()
            .ok_or_else(|| format!("invalid --addr {addr:?}: resolved to no addresses")),
        Err(e) => Err(format!(
            "invalid --addr {addr:?}: {e} (expected host:port, e.g. 127.0.0.1:7878)"
        )),
    }
}

/// Shared state every worker sees.
pub(crate) struct ServerState {
    pub(crate) bundle: ModelBundle,
    pub(crate) bundle_id: u64,
    /// The reduced forest compiled once into the level-order batch layout,
    /// so micro-batches skip the per-call flatten.
    pub(crate) flat: FlatForest,
    pub(crate) metrics: Metrics,
    pub(crate) cache: Mutex<LruCache<(u64, Vec<u64>), Prediction>>,
    pub(crate) cache_capacity: usize,
    pub(crate) shutdown: AtomicBool,
}

/// A bound, not-yet-running server.
pub struct PredictServer {
    listener: TcpListener,
    state: Arc<ServerState>,
    config: ServeConfig,
}

/// A remote control for a running server: its address and a `stop` switch.
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the server to shut down gracefully: stop accepting, finish
    /// in-flight requests, flush, exit. The dummy connection unblocks a
    /// blocking acceptor (threads mode) or wakes `epoll_wait` (event loop).
    pub fn stop(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
    }
}

impl PredictServer {
    /// Binds the listener and prepares shared state (including the flat
    /// forest layout used by batched prediction).
    pub fn bind(addr: &str, bundle: ModelBundle, config: ServeConfig) -> Result<Self, String> {
        let sock_addr = parse_addr(addr)?;
        let listener =
            TcpListener::bind(sock_addr).map_err(|e| format!("bind {sock_addr}: {e}"))?;
        let bundle_id = bundle.content_id();
        let cache_capacity = config.cache_capacity.max(1);
        let flat = FlatForest::from_forest(&bundle.predictor.model.reduced_forest);
        Ok(PredictServer {
            listener,
            state: Arc::new(ServerState {
                bundle,
                bundle_id,
                flat,
                metrics: Metrics::new(),
                cache: Mutex::new(LruCache::new(cache_capacity)),
                cache_capacity,
                shutdown: AtomicBool::new(false),
            }),
            config,
        })
    }

    /// The actual bound address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has addr")
    }

    /// A handle usable to stop the server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
            addr: self.local_addr(),
        }
    }

    /// Runs the configured engine until [`ServerHandle::stop`]; returns
    /// once in-flight work has drained.
    pub fn run(self) {
        match self.config.mode {
            ServeMode::Threads => self.run_threads(),
            ServeMode::EventLoop => {
                #[cfg(target_os = "linux")]
                {
                    crate::eventloop::run(self.listener, self.state, &self.config);
                }
                #[cfg(not(target_os = "linux"))]
                {
                    self.run_threads();
                }
            }
        }
    }

    /// The legacy engine: a bounded worker-thread pool over blocking reads.
    /// Accepted connections are dispatched over a bounded channel (the
    /// acceptor blocks when all workers are busy and the backlog is full);
    /// each worker owns a connection until it closes.
    fn run_threads(self) {
        let threads = self.config.threads.max(1);
        // Bounded dispatch: at most 2 connections queued per worker.
        let (tx, rx): (SyncSender<TcpStream>, Receiver<TcpStream>) =
            std::sync::mpsc::sync_channel(threads * 2);
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&self.state);
            let timeout = self.config.read_timeout;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("bf-serve-{i}"))
                    .spawn(move || loop {
                        let stream = match rx.lock().unwrap().recv() {
                            Ok(s) => s,
                            Err(_) => break, // acceptor dropped the sender
                        };
                        serve_connection(stream, &state, timeout);
                    })
                    .expect("spawn worker"),
            );
        }
        for stream in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(s) => {
                    if tx.send(s).is_err() {
                        break;
                    }
                }
                Err(_) => continue,
            }
        }
        drop(tx);
        for w in workers {
            let _ = w.join();
        }
    }

    /// Runs the server on a background thread; the returned handle stops it.
    pub fn spawn(self) -> (ServerHandle, std::thread::JoinHandle<()>) {
        let handle = self.handle();
        let join = std::thread::Builder::new()
            .name("bf-serve-accept".into())
            .spawn(move || self.run())
            .expect("spawn accept loop");
        (handle, join)
    }
}

/// Mints a process-unique request trace id: a boot-time salt (so ids from
/// different server runs don't collide in aggregated logs) plus a sequence
/// number. Echoed back to clients as the `X-BF-Trace-Id` response header.
pub(crate) fn next_trace_id() -> String {
    static SALT: OnceLock<u64> = OnceLock::new();
    static SEQ: AtomicU64 = AtomicU64::new(1);
    let salt = *SALT.get_or_init(|| {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15)
    });
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    format!("bf-{:08x}-{seq:08x}", (salt ^ (salt >> 32)) as u32)
}

/// Reads the next request off a blocking buffered stream through a
/// persistent [`RequestParser`], so pipelined bytes buffered past one
/// request survive for the next iteration. `Ok(None)` is a clean EOF
/// between requests.
fn read_request_blocking<R: BufRead>(
    parser: &mut RequestParser,
    reader: &mut R,
) -> Result<Option<Request>, HttpError> {
    loop {
        if let Some(req) = parser.next_request()? {
            return Ok(Some(req));
        }
        let available = match reader.fill_buf() {
            Ok(a) => a,
            Err(e) => {
                return Err(HttpError {
                    status: 400,
                    message: format!("read error: {e}"),
                })
            }
        };
        if available.is_empty() {
            return if parser.has_partial() {
                Err(HttpError {
                    status: 400,
                    message: "connection closed mid-request".into(),
                })
            } else {
                Ok(None)
            };
        }
        let n = available.len();
        parser.push(available);
        reader.consume(n);
    }
}

/// Serves every request on one connection (threads mode).
fn serve_connection(stream: TcpStream, state: &ServerState, timeout: Duration) {
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    let mut parser = RequestParser::new();
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let started = Instant::now();
        let trace_id = next_trace_id();
        let request = match read_request_blocking(&mut parser, &mut reader) {
            Ok(Some(r)) => r,
            Ok(None) => return, // client closed between requests
            Err(HttpError { status, message }) => {
                state
                    .metrics
                    .observe(Route::Other, status, elapsed_us(started));
                let response =
                    Response::error(status, &message).with_header("X-BF-Trace-Id", trace_id);
                let _ = response.write_to(&mut writer, true);
                return;
            }
        };
        let close = request.wants_close();
        let (route, response) = traced_handle(&request, state, &trace_id);
        let response = response.with_header("X-BF-Trace-Id", trace_id);
        state
            .metrics
            .observe(route, response.status, elapsed_us(started));
        if response.write_to(&mut writer, close).is_err() || close {
            return;
        }
    }
}

/// Routes one request inside a `request` trace span. Shared between the
/// thread-pool engine and the event loop's inline (non-predict) path.
pub(crate) fn traced_handle(
    request: &Request,
    state: &ServerState,
    trace_id: &str,
) -> (Route, Response) {
    let mut span = bf_trace::span!(
        "request",
        method = request.method.as_str(),
        path = request.path.as_str(),
    );
    if span.is_active() {
        span.attr("trace_id", trace_id);
    }
    let (route, response) = handle_request(request, state);
    if span.is_active() {
        span.attr("status", response.status);
    }
    (route, response)
}

pub(crate) fn elapsed_us(started: Instant) -> u64 {
    started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

/// A `POST /predict` body. Either `characteristics` (exact vector, bundle
/// order) or `size` (+ optional secondaries) must be given.
#[derive(Debug, Deserialize)]
struct PredictRequest {
    /// Workload name, validated against the bundle when present.
    workload: Option<String>,
    /// Target GPU name, validated against the bundle when present.
    gpu: Option<String>,
    /// Primary problem size.
    size: Option<f64>,
    /// Threads per block (reduce workloads).
    threads: Option<f64>,
    /// Stencil sweep count.
    sweeps: Option<f64>,
    /// Full characteristic vector, bypassing the named fields.
    characteristics: Option<Vec<f64>>,
}

/// A `POST /predict` answer.
#[derive(Debug, Serialize)]
struct PredictResponse {
    workload: String,
    gpu: String,
    characteristics: Vec<f64>,
    predicted_ms: f64,
    /// `(counter, predicted value)` pairs in retained-feature order.
    counters: Vec<(String, f64)>,
    /// Whether the answer came from the prediction cache.
    cached: bool,
}

#[derive(Debug, Serialize)]
struct HealthResponse {
    status: String,
    workload: String,
    gpu: String,
    schema_version: u32,
    bundle_id: String,
    trees: usize,
    selected: Vec<String>,
}

#[derive(Debug, Serialize)]
struct BottleneckResponse {
    workload: String,
    gpu: String,
    findings: Vec<blackforest::bottleneck::BottleneckFinding>,
}

/// Routes one request. Returns the route label for metrics plus the answer.
pub(crate) fn handle_request(request: &Request, state: &ServerState) -> (Route, Response) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/predict") => (Route::Predict, handle_predict(request, state)),
        ("GET", "/bottleneck") => (Route::Bottleneck, handle_bottleneck(request, state)),
        ("GET", "/healthz") => (Route::Healthz, handle_healthz(state)),
        ("GET", "/metrics") => {
            let body = state
                .metrics
                .render(state.cache.lock().unwrap().len(), state.cache_capacity);
            (Route::Metrics, Response::text(200, body))
        }
        (_, "/predict" | "/bottleneck" | "/healthz" | "/metrics") => (
            Route::Other,
            Response::error(405, "method not allowed for this path"),
        ),
        _ => (
            Route::Other,
            Response::error(404, &format!("no such route {}", request.path)),
        ),
    }
}

/// The validated rows of one `/predict` request.
pub(crate) struct PredictItems {
    /// One canonicalized characteristic vector per queried point.
    rows: Vec<Vec<f64>>,
    /// Whether the body was a JSON array (the answer mirrors the shape).
    batch: bool,
}

/// One queued `/predict` request, as handed to a prediction worker.
#[cfg_attr(not(target_os = "linux"), allow(dead_code))]
pub(crate) struct PredictJob {
    pub(crate) request: Request,
    pub(crate) started: Instant,
    pub(crate) trace_id: String,
}

/// Handles a `/predict` request sequentially (threads mode and unit tests):
/// the single-job case of the worker path below, with identical phase
/// accounting.
fn handle_predict(request: &Request, state: &ServerState) -> Response {
    // Parse phase: body decode, JSON parse, query validation.
    let parse_started = Instant::now();
    let parsed = {
        let _span = bf_trace::span!("parse", body_bytes = request.body.len());
        parse_predict_items(request, state)
    };
    state
        .metrics
        .observe_phase(Phase::Parse, elapsed_us(parse_started));
    let items = match parsed {
        Ok(items) => items,
        Err(response) => return response,
    };

    // Predict phase: cache lookups, one forest pass over the misses.
    let predict_started = Instant::now();
    let answered = {
        let mut span = bf_trace::span!("predict");
        let answered = predict_rows(state, &items.rows);
        if span.is_active() {
            if let Ok(results) = &answered {
                span.attr("rows", results.len() as u64);
                span.attr("cached", results.iter().all(|(_, c)| *c));
            }
        }
        answered
    };
    state
        .metrics
        .observe_phase(Phase::Predict, elapsed_us(predict_started));
    let results = match answered {
        Ok(results) => results,
        Err(msg) => return Response::error(500, &format!("prediction failed: {msg}")),
    };

    // Serialize phase: building and encoding the answer.
    let serialize_started = Instant::now();
    let response = {
        let _span = bf_trace::span!("serialize");
        render_predictions(state, &items, results)
    };
    state
        .metrics
        .observe_phase(Phase::Serialize, elapsed_us(serialize_started));
    response
}

/// Processes one micro-batch of `/predict` jobs pulled off the admission
/// queue: every job is parsed, then *all* their rows go through the forest
/// in one coalesced pass, then per-job responses are rendered. Per-request
/// metric and phase counts are identical to [`handle_predict`]; route
/// metrics (`observe`) are recorded here too, so the event loop only ships
/// bytes. Returns one response per job, in order.
#[cfg_attr(not(target_os = "linux"), allow(dead_code))]
pub(crate) fn process_predict_jobs(state: &ServerState, jobs: &[PredictJob]) -> Vec<Response> {
    // Parse every job first so the rows can be coalesced.
    let mut parsed: Vec<Result<PredictItems, Response>> = Vec::with_capacity(jobs.len());
    for job in jobs {
        let parse_started = Instant::now();
        let r = {
            let _span = bf_trace::span!("parse", body_bytes = job.request.body.len());
            parse_predict_items(&job.request, state)
        };
        state
            .metrics
            .observe_phase(Phase::Parse, elapsed_us(parse_started));
        parsed.push(r);
    }

    // One forest pass over the union of all parsed rows. (Two identical
    // misses inside one micro-batch are both evaluated rather than one
    // waiting on the other's cache fill — same answer either way.)
    let union: Vec<Vec<f64>> = parsed
        .iter()
        .flat_map(|p| p.as_ref().ok().map(|i| i.rows.clone()).unwrap_or_default())
        .collect();
    let predict_started = Instant::now();
    let outcome = if union.is_empty() {
        Ok(Vec::new())
    } else {
        let mut span = bf_trace::span!("predict");
        let outcome = predict_rows(state, &union);
        if span.is_active() {
            span.attr("rows", union.len() as u64);
            span.attr("jobs", jobs.len() as u64);
        }
        outcome
    };
    let predict_us = elapsed_us(predict_started);

    // Split the results back per job and render.
    let mut responses = Vec::with_capacity(jobs.len());
    let mut cursor = 0usize;
    for (job, p) in jobs.iter().zip(parsed) {
        let response = match p {
            Err(response) => response,
            Ok(items) => {
                state.metrics.observe_phase(Phase::Predict, predict_us);
                match &outcome {
                    Err(msg) => Response::error(500, &format!("prediction failed: {msg}")),
                    Ok(results) => {
                        let slice = results[cursor..cursor + items.rows.len()].to_vec();
                        cursor += items.rows.len();
                        let serialize_started = Instant::now();
                        let response = {
                            let _span = bf_trace::span!("serialize");
                            render_predictions(state, &items, slice)
                        };
                        state
                            .metrics
                            .observe_phase(Phase::Serialize, elapsed_us(serialize_started));
                        response
                    }
                }
            }
        };
        let mut span = bf_trace::span!(
            "request",
            method = job.request.method.as_str(),
            path = job.request.path.as_str(),
        );
        if span.is_active() {
            span.attr("trace_id", job.trace_id.as_str());
            span.attr("status", response.status);
            span.attr("batched_with", jobs.len() as u64);
        }
        drop(span);
        state
            .metrics
            .observe(Route::Predict, response.status, elapsed_us(job.started));
        responses.push(response);
    }
    responses
}

/// Evaluates canonicalized characteristic rows: per-row cache lookups, then
/// one pass per tree over all misses through the pre-flattened forest.
/// Returns `(prediction, was_cached)` per row, in order. Bit-identical to
/// calling [`ModelBundle::predict`] row by row.
pub(crate) fn predict_rows(
    state: &ServerState,
    rows: &[Vec<f64>],
) -> Result<Vec<(Prediction, bool)>, String> {
    let mut out: Vec<Option<(Prediction, bool)>> = Vec::with_capacity(rows.len());
    out.resize_with(rows.len(), || None);
    let mut misses = Vec::new();
    {
        let mut cache = state.cache.lock().unwrap();
        for (i, chars) in rows.iter().enumerate() {
            let key = (
                state.bundle_id,
                chars.iter().map(|c| c.to_bits()).collect::<Vec<u64>>(),
            );
            match cache.get(&key).cloned() {
                Some(p) => out[i] = Some((p, true)),
                None => misses.push((i, key)),
            }
        }
    }
    for _ in 0..(rows.len() - misses.len()) {
        state.metrics.cache_hit();
        bf_trace::counter!("serve.predict_cache.hits");
    }
    for _ in 0..misses.len() {
        state.metrics.cache_miss();
        bf_trace::counter!("serve.predict_cache.misses");
    }

    if !misses.is_empty() {
        let predictor = &state.bundle.predictor;
        let want = predictor.counters.characteristics.len();
        for (i, _) in &misses {
            if rows[*i].len() != want {
                return Err(format!(
                    "expected {want} characteristics, got {}",
                    rows[*i].len()
                ));
            }
        }
        // Counter models per row (cheap, closed-form), then the reduced
        // forest over the whole miss set in one pass per tree. The counter
        // rows double as the exposed per-counter predictions — exactly the
        // values `ModelBundle::predict` reports.
        let counter_rows: Vec<Vec<f64>> = misses
            .iter()
            .map(|(i, _)| predictor.counters.predict(&rows[*i]))
            .collect();
        let times = state
            .flat
            .predict_batch(&counter_rows)
            .map_err(|e| e.to_string())?;
        state.metrics.observe_batch(misses.len() as u64);
        let mut cache = state.cache.lock().unwrap();
        for (((i, key), values), predicted_ms) in misses.into_iter().zip(counter_rows).zip(times) {
            let counters = predictor
                .counters
                .models
                .iter()
                .zip(values)
                .map(|(m, v)| (m.counter.clone(), v))
                .collect();
            let p = Prediction {
                predicted_ms,
                counters,
            };
            cache.insert(key, p.clone());
            out[i] = Some((p, false));
        }
    }
    Ok(out.into_iter().map(|o| o.expect("row answered")).collect())
}

/// Renders the answer for one `/predict` request: a single object, or an
/// array mirroring an array body.
fn render_predictions(
    state: &ServerState,
    items: &PredictItems,
    results: Vec<(Prediction, bool)>,
) -> Response {
    let payloads: Vec<PredictResponse> = items
        .rows
        .iter()
        .zip(results)
        .map(|(chars, (prediction, cached))| PredictResponse {
            workload: state.bundle.workload.clone(),
            gpu: state.bundle.gpu_name.clone(),
            characteristics: chars.clone(),
            predicted_ms: prediction.predicted_ms,
            counters: prediction.counters,
            cached,
        })
        .collect();
    let encoded = if items.batch {
        serde_json::to_string(&payloads)
    } else {
        serde_json::to_string(&payloads[0])
    };
    match encoded {
        Ok(json) => Response::json(200, json),
        Err(e) => Response::error(500, &format!("serialize response: {e}")),
    }
}

/// The parse/validate half of `/predict`: from raw body bytes to the exact
/// canonicalized characteristic rows the forest expects, or the error
/// response to send. A body whose first non-whitespace byte is `[` is a
/// batch of queries; anything else is a single query.
pub(crate) fn parse_predict_items(
    request: &Request,
    state: &ServerState,
) -> Result<PredictItems, Response> {
    let body = match std::str::from_utf8(&request.body) {
        Ok(s) => s,
        Err(_) => return Err(Response::error(400, "request body is not UTF-8")),
    };
    let is_batch = body
        .bytes()
        .find(|b| !b.is_ascii_whitespace())
        .map(|b| b == b'[')
        .unwrap_or(false);
    if !is_batch {
        let query: PredictRequest = match serde_json::from_str(body) {
            Ok(q) => q,
            Err(e) => return Err(Response::error(400, &format!("bad JSON body: {e}"))),
        };
        let row =
            chars_for_query(query, state).map_err(|(status, msg)| Response::error(status, &msg))?;
        return Ok(PredictItems {
            rows: vec![row],
            batch: false,
        });
    }
    let queries: Vec<PredictRequest> = match serde_json::from_str(body) {
        Ok(q) => q,
        Err(e) => return Err(Response::error(400, &format!("bad JSON body: {e}"))),
    };
    if queries.is_empty() {
        return Err(Response::error(400, "batch body must not be empty"));
    }
    let rows = queries
        .into_iter()
        .enumerate()
        .map(|(i, q)| {
            chars_for_query(q, state)
                .map_err(|(status, msg)| Response::error(status, &format!("item {i}: {msg}")))
        })
        .collect::<Result<Vec<_>, Response>>()?;
    Ok(PredictItems { rows, batch: true })
}

/// Validates one query against the bundle and resolves it to a
/// canonicalized characteristic vector.
fn chars_for_query(query: PredictRequest, state: &ServerState) -> Result<Vec<f64>, (u16, String)> {
    let bundle = &state.bundle;

    if let Some(w) = &query.workload {
        let matches = match (blackforest::Workload::from_name(w), bundle.workload()) {
            (Some(a), Some(b)) => a == b,
            _ => w.eq_ignore_ascii_case(&bundle.workload),
        };
        if !matches {
            return Err((
                422,
                format!(
                    "bundle was trained for workload {:?}, not {w:?}",
                    bundle.workload
                ),
            ));
        }
    }
    if let Some(g) = &query.gpu {
        if !g.eq_ignore_ascii_case(&bundle.gpu_name) {
            return Err((
                422,
                format!(
                    "bundle was trained on {} (fingerprint {:#x}); predictions for {g:?} \
                     need a bundle trained on that GPU",
                    bundle.gpu_name, bundle.gpu_fingerprint
                ),
            ));
        }
    }

    let chars = if let Some(chars) = query.characteristics {
        if chars.len() != bundle.characteristics.len() {
            return Err((
                422,
                format!(
                    "expected {} characteristics {:?}, got {}",
                    bundle.characteristics.len(),
                    bundle.characteristics,
                    chars.len()
                ),
            ));
        }
        chars
    } else {
        let size = match query.size {
            Some(s) if s.is_finite() && s > 0.0 => s,
            Some(_) => return Err((422, "size must be a positive finite number".into())),
            None => return Err((400, "body needs either size or characteristics".into())),
        };
        bundle
            .characteristics_for(size, query.threads, query.sweeps)
            .map_err(|msg| (422, msg))?
    };
    canonicalize_chars(chars)
}

/// Canonicalizes a characteristic vector for prediction and cache keying:
/// non-finite values are a 422 (a NaN/inf query is meaningless to the
/// forest, and NaN's many bit patterns would fragment the bitwise cache
/// key), and `-0.0` collapses to `+0.0` (equal to every tree threshold, so
/// both spellings must share one cache entry).
fn canonicalize_chars(mut chars: Vec<f64>) -> Result<Vec<f64>, (u16, String)> {
    for (i, c) in chars.iter_mut().enumerate() {
        if !c.is_finite() {
            return Err((422, format!("characteristic {i} must be finite, got {c}")));
        }
        if *c == 0.0 {
            *c = 0.0; // normalize -0.0
        }
    }
    Ok(chars)
}

fn handle_bottleneck(request: &Request, state: &ServerState) -> Response {
    let findings = &state.bundle.bottlenecks.findings;
    let k = match request.query_param("k") {
        Some(raw) => match raw.parse::<usize>() {
            Ok(k) if k >= 1 => k,
            _ => return Response::error(400, &format!("bad k={raw:?}: expected integer >= 1")),
        },
        None => findings.len(),
    };
    let payload = BottleneckResponse {
        workload: state.bundle.workload.clone(),
        gpu: state.bundle.gpu_name.clone(),
        findings: findings.iter().take(k).cloned().collect(),
    };
    match serde_json::to_string(&payload) {
        Ok(json) => Response::json(200, json),
        Err(e) => Response::error(500, &format!("serialize response: {e}")),
    }
}

fn handle_healthz(state: &ServerState) -> Response {
    let payload = HealthResponse {
        status: "ok".into(),
        workload: state.bundle.workload.clone(),
        gpu: state.bundle.gpu_name.clone(),
        schema_version: state.bundle.schema_version,
        bundle_id: format!("{:016x}", state.bundle_id),
        trees: state.bundle.predictor.model.reduced_forest.n_trees(),
        selected: state.bundle.selected.clone(),
    };
    match serde_json::to_string(&payload) {
        Ok(json) => Response::json(200, json),
        Err(e) => Response::error(500, &format!("serialize response: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_addr_accepts_sockets_and_hostnames() {
        assert_eq!(
            parse_addr("127.0.0.1:7878").unwrap(),
            "127.0.0.1:7878".parse::<SocketAddr>().unwrap()
        );
        assert!(parse_addr("localhost:0").is_ok());
        let e = parse_addr("not-an-addr").unwrap_err();
        assert!(e.contains("host:port"), "{e}");
        assert!(parse_addr("127.0.0.1:notaport").is_err());
    }

    #[test]
    fn serve_mode_names_round_trip() {
        for mode in [ServeMode::Threads, ServeMode::EventLoop] {
            assert_eq!(ServeMode::from_name(mode.name()), Some(mode));
        }
        assert_eq!(ServeMode::from_name("legacy"), Some(ServeMode::Threads));
        assert_eq!(ServeMode::from_name("epoll"), Some(ServeMode::EventLoop));
        assert_eq!(ServeMode::from_name("tokio"), None);
    }

    #[test]
    fn canonicalize_rejects_non_finite_and_collapses_negative_zero() {
        let ok = canonicalize_chars(vec![4096.0, -0.0, 2.5]).unwrap();
        assert_eq!(ok[1].to_bits(), 0.0f64.to_bits(), "-0.0 must become +0.0");
        assert_eq!(ok, vec![4096.0, 0.0, 2.5]);
        let err = canonicalize_chars(vec![1.0, f64::NAN]).unwrap_err();
        assert_eq!(err.0, 422);
        assert!(err.1.contains("characteristic 1"), "{}", err.1);
        assert_eq!(canonicalize_chars(vec![f64::INFINITY]).unwrap_err().0, 422);
        assert_eq!(
            canonicalize_chars(vec![f64::NEG_INFINITY]).unwrap_err().0,
            422
        );
    }
}
