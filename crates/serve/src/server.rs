//! The prediction server, in two interchangeable engines:
//!
//! * [`ServeMode::EventLoop`] (default on Linux) — a nonblocking,
//!   readiness-driven event loop (`epoll`) with per-connection incremental
//!   parsers, HTTP/1.1 keep-alive and pipelining, a bounded admission queue
//!   (fast `429 Too Many Requests` + `Retry-After` when full), and adaptive
//!   micro-batching: concurrent `/predict` requests are coalesced into one
//!   forest pass. See [`crate::eventloop`].
//! * [`ServeMode::Threads`] — the original bounded worker-thread pool over
//!   blocking reads. Kept as the comparison baseline for `bench_serve` and
//!   as the fallback on non-Linux hosts.
//!
//! Both engines share the same routing, validation, prediction, metrics,
//! and cache code in this module, so their responses are byte-identical.
//!
//! Since PR 8 the server fronts a [`Registry`] of N concurrently loaded
//! bundles instead of one frozen bundle. Prediction requests resolve their
//! model **at dispatch time** and carry the resolved `Arc` for their whole
//! lifetime, so an in-flight request never fails or mixes models across a
//! hot swap; new requests see the new routing table on their next resolve
//! (one atomic epoch check — the hot path never blocks on a reload).
//!
//! Routes:
//!
//! * `POST /predict` — JSON query → predicted time + per-counter
//!   predictions, answered by the `default` alias. The body may also be a
//!   JSON *array* of queries; the answer is then an array, evaluated
//!   through the forest in one batched pass and bit-identical to asking
//!   one by one.
//! * `POST /v1/models/{id-or-alias}/predict` — the same, addressed to a
//!   specific content id (16 hex digits) or alias.
//! * `GET /v1/models` — the registry inventory (models, aliases, draining).
//! * `GET /v1/models/shadow/report` — the streaming shadow divergence
//!   report.
//! * `POST /v1/models/load|unload|alias` — admin mutations; `403` unless
//!   the server was started with the admin API enabled, `409` on unknown
//!   aliases, GPU-fingerprint mismatches, and unload-while-aliased.
//! * `GET /bottleneck[?k=N]` — top-k permutation-importance findings of
//!   the default model.
//! * `GET /healthz` — liveness + registry identity.
//! * `GET /readyz` — readiness: `200` only once the `default` alias
//!   resolves to a warmed bundle, `503` before (and during initial load).
//! * `GET /metrics` — Prometheus-style text exposition (server + registry
//!   + shadow counters).
//!
//! Repeated queries are answered from an LRU cache keyed on
//! `(resolved bundle content id, exact query bits)` — the content id is
//! part of the key, so an alias swap can never serve a stale model's
//! cached prediction. Query vectors are canonicalized before keying:
//! non-finite characteristics are rejected with 422 (NaN bit patterns
//! would otherwise fragment the key space — and a NaN query is
//! meaningless to the forest anyway), and negative zero collapses to
//! `+0.0` so `-0.0` and `0.0` — equal to every tree split — share one
//! cache entry.

use crate::http::{HttpError, Request, RequestParser, Response};
use crate::lru::LruCache;
use crate::metrics::{Metrics, Phase, Route};
use bf_registry::bundle::{ModelBundle, Prediction};
use bf_registry::registry::parse_id_hex;
use bf_registry::{
    AliasUpdate, LoadedModel, Registry, RegistryError, RegistryReader, Resolved, ShadowJob, Split,
};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Which serving engine to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// Bounded worker-thread pool over blocking reads (legacy baseline).
    Threads,
    /// Nonblocking epoll event loop with micro-batching (Linux; falls back
    /// to [`ServeMode::Threads`] elsewhere).
    EventLoop,
}

impl Default for ServeMode {
    fn default() -> Self {
        if cfg!(target_os = "linux") {
            ServeMode::EventLoop
        } else {
            ServeMode::Threads
        }
    }
}

impl ServeMode {
    /// Parses a CLI-style mode name.
    pub fn from_name(name: &str) -> Option<ServeMode> {
        match name {
            "threads" | "legacy" => Some(ServeMode::Threads),
            "event-loop" | "eventloop" | "epoll" => Some(ServeMode::EventLoop),
            _ => None,
        }
    }

    /// The canonical CLI name.
    pub fn name(self) -> &'static str {
        match self {
            ServeMode::Threads => "threads",
            ServeMode::EventLoop => "event-loop",
        }
    }
}

/// Tuning knobs for [`PredictServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (connection handlers in [`ServeMode::Threads`],
    /// prediction workers in [`ServeMode::EventLoop`]).
    pub threads: usize,
    /// Capacity of the prediction LRU cache (entries).
    pub cache_capacity: usize,
    /// Per-connection read timeout ([`ServeMode::Threads`] only; the event
    /// loop never blocks on a read).
    pub read_timeout: Duration,
    /// Serving engine.
    pub mode: ServeMode,
    /// Admission bound: maximum in-flight `/predict` jobs (queued plus
    /// executing). Further predictions get a fast `429` + `Retry-After`
    /// instead of unbounded queueing. Event-loop mode only.
    pub max_queue: usize,
    /// How long a prediction worker waits for more requests to coalesce
    /// into one batched forest pass. Zero (the default) adds no artificial
    /// delay: a worker batches whatever has already queued up behind it,
    /// so batches grow naturally with backlog and stay at one row when the
    /// server is keeping up. A positive window trades first-request latency
    /// for larger batches. Event-loop mode only.
    pub batch_window: Duration,
    /// Largest micro-batch a worker will coalesce.
    pub max_batch: usize,
    /// Enables the mutating admin API (`POST /v1/models/load|unload|alias`).
    /// Off by default: a server exposed without `--admin` answers those
    /// routes with `403`.
    pub admin: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            cache_capacity: 4096,
            read_timeout: Duration::from_secs(30),
            mode: ServeMode::default(),
            max_queue: 1024,
            batch_window: Duration::ZERO,
            max_batch: 64,
            admin: false,
        }
    }
}

/// Parses and validates a `host:port` listen address, resolving hostnames
/// like `localhost`. Errors spell out what was wrong.
pub fn parse_addr(addr: &str) -> Result<SocketAddr, String> {
    if let Ok(sa) = addr.parse::<SocketAddr>() {
        return Ok(sa);
    }
    if !addr.contains(':') {
        return Err(format!(
            "invalid --addr {addr:?}: expected host:port (e.g. 127.0.0.1:7878)"
        ));
    }
    match addr.to_socket_addrs() {
        Ok(mut it) => it
            .next()
            .ok_or_else(|| format!("invalid --addr {addr:?}: resolved to no addresses")),
        Err(e) => Err(format!(
            "invalid --addr {addr:?}: {e} (expected host:port, e.g. 127.0.0.1:7878)"
        )),
    }
}

/// Shared state every worker sees.
pub(crate) struct ServerState {
    /// The model registry: every loaded bundle, alias routing, shadow
    /// engine, and drain graveyard.
    pub(crate) registry: Arc<Registry>,
    pub(crate) metrics: Metrics,
    pub(crate) cache: Mutex<LruCache<(u64, Vec<u64>), Prediction>>,
    pub(crate) cache_capacity: usize,
    /// Whether the mutating admin routes are enabled.
    pub(crate) admin: bool,
    pub(crate) shutdown: AtomicBool,
}

/// A bound, not-yet-running server.
pub struct PredictServer {
    listener: TcpListener,
    state: Arc<ServerState>,
    config: ServeConfig,
}

/// A remote control for a running server: its address, registry, and a
/// `stop` switch.
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry the server routes from — usable to load bundles and
    /// swap aliases in-process (tests, benches, embedded operators).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.state.registry)
    }

    /// Asks the server to shut down gracefully: stop accepting, finish
    /// in-flight requests, flush, exit. The dummy connection unblocks a
    /// blocking acceptor (threads mode) or wakes `epoll_wait` (event loop).
    pub fn stop(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
    }
}

impl PredictServer {
    /// Binds the listener around a single bundle: a fresh registry is
    /// created, the bundle loaded (compiled + warmed) and published as the
    /// `default` alias. Compatibility constructor — multi-model callers
    /// use [`PredictServer::bind_registry`].
    pub fn bind(addr: &str, bundle: ModelBundle, config: ServeConfig) -> Result<Self, String> {
        let registry = Arc::new(Registry::new());
        let id = registry
            .load_bundle(bundle)
            .map_err(|e| format!("load bundle: {e}"))?;
        registry
            .set_alias(AliasUpdate {
                alias: "default".into(),
                id: Some(id),
                create: true,
                ..AliasUpdate::default()
            })
            .map_err(|e| format!("alias default: {e}"))?;
        Self::bind_registry(addr, registry, config)
    }

    /// Binds the listener over an existing registry. The registry may
    /// still be empty: the server answers `503` on `/readyz` (and on
    /// `/predict`) until a `default` alias is published, which makes
    /// "bind the socket first, load bundles behind it" the natural
    /// zero-downtime startup order.
    pub fn bind_registry(
        addr: &str,
        registry: Arc<Registry>,
        config: ServeConfig,
    ) -> Result<Self, String> {
        let sock_addr = parse_addr(addr)?;
        let listener =
            TcpListener::bind(sock_addr).map_err(|e| format!("bind {sock_addr}: {e}"))?;
        let cache_capacity = config.cache_capacity.max(1);
        Ok(PredictServer {
            listener,
            state: Arc::new(ServerState {
                registry,
                metrics: Metrics::new(),
                cache: Mutex::new(LruCache::new(cache_capacity)),
                cache_capacity,
                admin: config.admin,
                shutdown: AtomicBool::new(false),
            }),
            config,
        })
    }

    /// The actual bound address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has addr")
    }

    /// A handle usable to stop the server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
            addr: self.local_addr(),
        }
    }

    /// Runs the configured engine until [`ServerHandle::stop`]; returns
    /// once in-flight work has drained.
    pub fn run(self) {
        match self.config.mode {
            ServeMode::Threads => self.run_threads(),
            ServeMode::EventLoop => {
                #[cfg(target_os = "linux")]
                {
                    crate::eventloop::run(self.listener, self.state, &self.config);
                }
                #[cfg(not(target_os = "linux"))]
                {
                    self.run_threads();
                }
            }
        }
    }

    /// The legacy engine: a bounded worker-thread pool over blocking reads.
    /// Accepted connections are dispatched over a bounded channel (the
    /// acceptor blocks when all workers are busy and the backlog is full);
    /// each worker owns a connection until it closes.
    fn run_threads(self) {
        let threads = self.config.threads.max(1);
        // Bounded dispatch: at most 2 connections queued per worker.
        let (tx, rx): (SyncSender<TcpStream>, Receiver<TcpStream>) =
            std::sync::mpsc::sync_channel(threads * 2);
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&self.state);
            let timeout = self.config.read_timeout;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("bf-serve-{i}"))
                    .spawn(move || loop {
                        let stream = match rx.lock().unwrap().recv() {
                            Ok(s) => s,
                            Err(_) => break, // acceptor dropped the sender
                        };
                        serve_connection(stream, &state, timeout);
                    })
                    .expect("spawn worker"),
            );
        }
        for stream in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(s) => {
                    if tx.send(s).is_err() {
                        break;
                    }
                }
                Err(_) => continue,
            }
        }
        drop(tx);
        for w in workers {
            let _ = w.join();
        }
    }

    /// Runs the server on a background thread; the returned handle stops it.
    pub fn spawn(self) -> (ServerHandle, std::thread::JoinHandle<()>) {
        let handle = self.handle();
        let join = std::thread::Builder::new()
            .name("bf-serve-accept".into())
            .spawn(move || self.run())
            .expect("spawn accept loop");
        (handle, join)
    }
}

/// Mints a process-unique request trace id: a boot-time salt (so ids from
/// different server runs don't collide in aggregated logs) plus a sequence
/// number. Echoed back to clients as the `X-BF-Trace-Id` response header.
pub(crate) fn next_trace_id() -> String {
    static SALT: OnceLock<u64> = OnceLock::new();
    static SEQ: AtomicU64 = AtomicU64::new(1);
    let salt = *SALT.get_or_init(|| {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15)
    });
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    format!("bf-{:08x}-{seq:08x}", (salt ^ (salt >> 32)) as u32)
}

/// Reads the next request off a blocking buffered stream through a
/// persistent [`RequestParser`], so pipelined bytes buffered past one
/// request survive for the next iteration. `Ok(None)` is a clean EOF
/// between requests.
fn read_request_blocking<R: BufRead>(
    parser: &mut RequestParser,
    reader: &mut R,
) -> Result<Option<Request>, HttpError> {
    loop {
        if let Some(req) = parser.next_request()? {
            return Ok(Some(req));
        }
        let available = match reader.fill_buf() {
            Ok(a) => a,
            Err(e) => {
                return Err(HttpError {
                    status: 400,
                    message: format!("read error: {e}"),
                })
            }
        };
        if available.is_empty() {
            return if parser.has_partial() {
                Err(HttpError {
                    status: 400,
                    message: "connection closed mid-request".into(),
                })
            } else {
                Ok(None)
            };
        }
        let n = available.len();
        parser.push(available);
        reader.consume(n);
    }
}

/// Serves every request on one connection (threads mode). The connection
/// owns a registry reader: model resolution costs one atomic epoch check
/// per request.
fn serve_connection(stream: TcpStream, state: &ServerState, timeout: Duration) {
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    let mut parser = RequestParser::new();
    let mut registry_reader = state.registry.reader();
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let started = Instant::now();
        let trace_id = next_trace_id();
        let request = match read_request_blocking(&mut parser, &mut reader) {
            Ok(Some(r)) => r,
            Ok(None) => return, // client closed between requests
            Err(HttpError { status, message }) => {
                state
                    .metrics
                    .observe(Route::Other, status, elapsed_us(started));
                let response =
                    Response::error(status, &message).with_header("X-BF-Trace-Id", trace_id);
                let _ = response.write_to(&mut writer, true);
                return;
            }
        };
        let close = request.wants_close();
        let (route, response) = traced_handle(&request, state, &mut registry_reader, &trace_id);
        let response = response.with_header("X-BF-Trace-Id", trace_id);
        state
            .metrics
            .observe(route, response.status, elapsed_us(started));
        if response.write_to(&mut writer, close).is_err() || close {
            return;
        }
    }
}

/// Routes one request inside a `request` trace span. Shared between the
/// thread-pool engine and the event loop's inline (non-predict) path.
pub(crate) fn traced_handle(
    request: &Request,
    state: &ServerState,
    registry_reader: &mut RegistryReader,
    trace_id: &str,
) -> (Route, Response) {
    let mut span = bf_trace::span!(
        "request",
        method = request.method.as_str(),
        path = request.path.as_str(),
    );
    if span.is_active() {
        span.attr("trace_id", trace_id);
    }
    let (route, response) = handle_request(request, state, registry_reader);
    if span.is_active() {
        span.attr("status", response.status);
    }
    (route, response)
}

pub(crate) fn elapsed_us(started: Instant) -> u64 {
    started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

/// A `POST /predict` body. Either `characteristics` (exact vector, bundle
/// order) or `size` (+ optional secondaries) must be given.
#[derive(Debug, Deserialize)]
struct PredictRequest {
    /// Workload name, validated against the bundle when present.
    workload: Option<String>,
    /// Target GPU name, validated against the bundle when present.
    gpu: Option<String>,
    /// Primary problem size.
    size: Option<f64>,
    /// Threads per block (reduce workloads).
    threads: Option<f64>,
    /// Stencil sweep count.
    sweeps: Option<f64>,
    /// Full characteristic vector, bypassing the named fields.
    characteristics: Option<Vec<f64>>,
}

/// A `POST /predict` answer.
#[derive(Debug, Serialize)]
struct PredictResponse {
    workload: String,
    gpu: String,
    /// Content id of the bundle that answered (16 hex digits) — the
    /// client-visible attribution used by the hot-reload tests.
    model: String,
    characteristics: Vec<f64>,
    predicted_ms: f64,
    /// `(counter, predicted value)` pairs in retained-feature order.
    counters: Vec<(String, f64)>,
    /// Whether the answer came from the prediction cache.
    cached: bool,
}

#[derive(Debug, Serialize)]
struct HealthResponse {
    status: String,
    workload: String,
    gpu: String,
    schema_version: u32,
    bundle_id: String,
    trees: usize,
    selected: Vec<String>,
}

#[derive(Debug, Serialize)]
struct ReadyResponse {
    ready: bool,
    /// Content id of the default model when ready.
    default: Option<String>,
    /// What is missing when not ready.
    reason: Option<String>,
}

#[derive(Debug, Serialize)]
struct BottleneckResponse {
    workload: String,
    gpu: String,
    findings: Vec<blackforest::bottleneck::BottleneckFinding>,
}

/// The predict-target key a path addresses: `/predict` is the `default`
/// alias; `/v1/models/{key}/predict` names a content id or alias.
pub(crate) fn predict_model_key(path: &str) -> Option<&str> {
    if path == "/predict" {
        return Some("default");
    }
    let rest = path.strip_prefix("/v1/models/")?;
    let key = rest.strip_suffix("/predict")?;
    (!key.is_empty() && !key.contains('/')).then_some(key)
}

/// Resolves a predict target, mapping failures to the HTTP answer: a bare
/// `/predict` with no ready default is `503` (the server is up but not
/// ready), an explicitly addressed unknown model is `404`.
pub(crate) fn resolve_predict_target(
    path: &str,
    key: &str,
    registry_reader: &mut RegistryReader,
) -> Result<Resolved, Response> {
    registry_reader.resolve(key).map_err(|e| {
        if path == "/predict" {
            Response::error(
                503,
                &format!("no ready model at alias \"default\" ({e}); load a bundle first"),
            )
        } else {
            Response::error(e.http_status().max(404), &e.to_string())
        }
    })
}

/// Routes one request. Returns the route label for metrics plus the answer.
pub(crate) fn handle_request(
    request: &Request,
    state: &ServerState,
    registry_reader: &mut RegistryReader,
) -> (Route, Response) {
    // Revalidate the reader's cached table (one atomic load) on every
    // request, not just resolves — otherwise a reader serving only
    // non-predict traffic would pin a retired table's models and stall
    // their drain.
    let _ = registry_reader.table();
    let method = request.method.as_str();
    let path = request.path.as_str();
    if let Some(key) = predict_model_key(path) {
        if method != "POST" {
            return (
                Route::Other,
                Response::error(405, "method not allowed for this path"),
            );
        }
        let resolved = match resolve_predict_target(path, key, registry_reader) {
            Ok(r) => r,
            Err(response) => return (Route::Predict, response),
        };
        return (Route::Predict, handle_predict(request, state, &resolved));
    }
    match (method, path) {
        ("GET", "/bottleneck") => (Route::Bottleneck, handle_bottleneck(request, state)),
        ("GET", "/healthz") => (Route::Healthz, handle_healthz(state)),
        ("GET", "/readyz") => (Route::Healthz, handle_readyz(state)),
        ("GET", "/metrics") => {
            let body = state
                .metrics
                .render(state.cache.lock().unwrap().len(), state.cache_capacity)
                + &state.registry.render_metrics();
            (Route::Metrics, Response::text(200, body))
        }
        ("GET", "/v1/models") => (Route::Models, handle_models_list(state)),
        ("GET", "/v1/models/shadow/report") => (Route::Models, handle_shadow_report(state)),
        ("POST", "/v1/models/load") => (Route::Admin, handle_admin_load(request, state)),
        ("POST", "/v1/models/unload") => (Route::Admin, handle_admin_unload(request, state)),
        ("POST", "/v1/models/alias") => (Route::Admin, handle_admin_alias(request, state)),
        (
            _,
            "/predict"
            | "/bottleneck"
            | "/healthz"
            | "/readyz"
            | "/metrics"
            | "/v1/models"
            | "/v1/models/shadow/report"
            | "/v1/models/load"
            | "/v1/models/unload"
            | "/v1/models/alias",
        ) => (
            Route::Other,
            Response::error(405, "method not allowed for this path"),
        ),
        _ => (
            Route::Other,
            Response::error(404, &format!("no such route {}", request.path)),
        ),
    }
}

/// The validated rows of one `/predict` request.
pub(crate) struct PredictItems {
    /// One canonicalized characteristic vector per queried point.
    rows: Vec<Vec<f64>>,
    /// Whether the body was a JSON array (the answer mirrors the shape).
    batch: bool,
}

/// One queued `/predict` request, as handed to a prediction worker. The
/// model was resolved at dispatch time: swaps concurrent with the queue
/// wait cannot change (or mix) what this request predicts with.
#[cfg_attr(not(target_os = "linux"), allow(dead_code))]
pub(crate) struct PredictJob {
    pub(crate) request: Request,
    pub(crate) started: Instant,
    pub(crate) trace_id: String,
    pub(crate) resolved: Resolved,
}

/// Handles a `/predict` request sequentially (threads mode and unit tests):
/// the single-job case of the worker path below, with identical phase
/// accounting.
fn handle_predict(request: &Request, state: &ServerState, resolved: &Resolved) -> Response {
    // Parse phase: body decode, JSON parse, query validation.
    let parse_started = Instant::now();
    let parsed = {
        let _span = bf_trace::span!("parse", body_bytes = request.body.len());
        parse_predict_items(request, &resolved.model)
    };
    state
        .metrics
        .observe_phase(Phase::Parse, elapsed_us(parse_started));
    let items = match parsed {
        Ok(items) => items,
        Err(response) => return response,
    };

    // Predict phase: cache lookups, one forest pass over the misses.
    let predict_started = Instant::now();
    let answered = {
        let mut span = bf_trace::span!("predict");
        let answered = predict_rows(state, &resolved.model, &items.rows);
        if span.is_active() {
            if let Ok(results) = &answered {
                span.attr("rows", results.len() as u64);
                span.attr("cached", results.iter().all(|(_, c)| *c));
            }
        }
        answered
    };
    state
        .metrics
        .observe_phase(Phase::Predict, elapsed_us(predict_started));
    let results = match answered {
        Ok(results) => results,
        Err(msg) => return Response::error(500, &format!("prediction failed: {msg}")),
    };
    resolved.model.record_served(items.rows.len() as u64);
    submit_shadow(state, resolved, &items.rows, &results);

    // Serialize phase: building and encoding the answer.
    let serialize_started = Instant::now();
    let response = {
        let _span = bf_trace::span!("serialize");
        render_predictions(&resolved.model, &items, results)
    };
    state
        .metrics
        .observe_phase(Phase::Serialize, elapsed_us(serialize_started));
    response
}

/// Replays an answered request against the resolved shadow model, off the
/// hot path (bounded queue, drop-on-full — never blocks the caller).
fn submit_shadow(
    state: &ServerState,
    resolved: &Resolved,
    rows: &[Vec<f64>],
    results: &[(Prediction, bool)],
) {
    let Some(shadow) = &resolved.shadow else {
        return;
    };
    state.registry.submit_shadow(ShadowJob {
        shadow: Arc::clone(shadow),
        primary_id: resolved.model.content_id,
        workload: resolved.model.bundle.workload.clone(),
        rows: rows.to_vec(),
        primary_ms: results.iter().map(|(p, _)| p.predicted_ms).collect(),
    });
}

/// Per-job outcome of a coalesced forest pass: `(prediction, cache hit)`
/// per row, or the render-time error message.
type JobPredictions = Result<Vec<(Prediction, bool)>, String>;

/// Processes one micro-batch of `/predict` jobs pulled off the admission
/// queue: every job is parsed, then the rows of jobs sharing a resolved
/// model are coalesced into one forest pass per model, then per-job
/// responses are rendered. Per-request metric and phase counts are
/// identical to [`handle_predict`]; route metrics (`observe`) are recorded
/// here too, so the event loop only ships bytes. Returns one response per
/// job, in order.
#[cfg_attr(not(target_os = "linux"), allow(dead_code))]
pub(crate) fn process_predict_jobs(state: &ServerState, jobs: &[PredictJob]) -> Vec<Response> {
    // Parse every job first so the rows can be coalesced.
    let mut parsed: Vec<Result<PredictItems, Response>> = Vec::with_capacity(jobs.len());
    for job in jobs {
        let parse_started = Instant::now();
        let r = {
            let _span = bf_trace::span!("parse", body_bytes = job.request.body.len());
            parse_predict_items(&job.request, &job.resolved.model)
        };
        state
            .metrics
            .observe_phase(Phase::Parse, elapsed_us(parse_started));
        parsed.push(r);
    }

    // Group parse-clean jobs by resolved model: one forest pass per model
    // over the union of its jobs' rows. (A batch spanning a hot swap
    // simply forms two groups — jobs never mix models.)
    let mut groups: Vec<(u64, Vec<usize>)> = Vec::new();
    for (j, p) in parsed.iter().enumerate() {
        if p.is_err() {
            continue;
        }
        let id = jobs[j].resolved.model.content_id;
        match groups.iter_mut().find(|(gid, _)| *gid == id) {
            Some((_, members)) => members.push(j),
            None => groups.push((id, vec![j])),
        }
    }
    let predict_started = Instant::now();
    let mut job_results: Vec<Option<JobPredictions>> = (0..jobs.len()).map(|_| None).collect();
    for (_, members) in &groups {
        let model = &jobs[members[0]].resolved.model;
        let union: Vec<Vec<f64>> = members
            .iter()
            .flat_map(|&j| {
                parsed[j]
                    .as_ref()
                    .ok()
                    .map(|i| i.rows.clone())
                    .unwrap_or_default()
            })
            .collect();
        let mut span = bf_trace::span!("predict");
        let outcome = predict_rows(state, model, &union);
        if span.is_active() {
            span.attr("rows", union.len() as u64);
            span.attr("jobs", members.len() as u64);
            span.attr("model", model.id_hex().as_str());
        }
        drop(span);
        match outcome {
            Ok(results) => {
                let mut cursor = 0usize;
                for &j in members {
                    let n = parsed[j].as_ref().map(|i| i.rows.len()).unwrap_or(0);
                    job_results[j] = Some(Ok(results[cursor..cursor + n].to_vec()));
                    cursor += n;
                }
            }
            Err(msg) => {
                for &j in members {
                    job_results[j] = Some(Err(msg.clone()));
                }
            }
        }
    }
    let predict_us = elapsed_us(predict_started);

    // Render per job.
    let mut responses = Vec::with_capacity(jobs.len());
    for ((job, p), outcome) in jobs.iter().zip(parsed).zip(job_results) {
        let response = match p {
            Err(response) => response,
            Ok(items) => {
                state.metrics.observe_phase(Phase::Predict, predict_us);
                match outcome.expect("parsed job was grouped") {
                    Err(msg) => Response::error(500, &format!("prediction failed: {msg}")),
                    Ok(results) => {
                        job.resolved.model.record_served(items.rows.len() as u64);
                        submit_shadow(state, &job.resolved, &items.rows, &results);
                        let serialize_started = Instant::now();
                        let response = {
                            let _span = bf_trace::span!("serialize");
                            render_predictions(&job.resolved.model, &items, results)
                        };
                        state
                            .metrics
                            .observe_phase(Phase::Serialize, elapsed_us(serialize_started));
                        response
                    }
                }
            }
        };
        let mut span = bf_trace::span!(
            "request",
            method = job.request.method.as_str(),
            path = job.request.path.as_str(),
        );
        if span.is_active() {
            span.attr("trace_id", job.trace_id.as_str());
            span.attr("status", response.status);
            span.attr("batched_with", jobs.len() as u64);
        }
        drop(span);
        state
            .metrics
            .observe(Route::Predict, response.status, elapsed_us(job.started));
        responses.push(response);
    }
    responses
}

/// Evaluates canonicalized characteristic rows against one resolved model:
/// per-row cache lookups, then one pass per tree over all misses through
/// the model's pre-flattened forest. Returns `(prediction, was_cached)`
/// per row, in order. Bit-identical to calling [`ModelBundle::predict`]
/// row by row.
pub(crate) fn predict_rows(
    state: &ServerState,
    model: &Arc<LoadedModel>,
    rows: &[Vec<f64>],
) -> Result<Vec<(Prediction, bool)>, String> {
    let mut out: Vec<Option<(Prediction, bool)>> = Vec::with_capacity(rows.len());
    out.resize_with(rows.len(), || None);
    let mut misses = Vec::new();
    {
        let mut cache = state.cache.lock().unwrap();
        for (i, chars) in rows.iter().enumerate() {
            let key = (
                model.content_id,
                chars.iter().map(|c| c.to_bits()).collect::<Vec<u64>>(),
            );
            // The multi-model cache-scoping invariant: every key carries
            // the *resolved* bundle's content id, so an alias swap can
            // never surface another model's cached prediction.
            debug_assert_eq!(key.0, model.bundle.content_id());
            match cache.get(&key).cloned() {
                Some(p) => out[i] = Some((p, true)),
                None => misses.push((i, key)),
            }
        }
    }
    for _ in 0..(rows.len() - misses.len()) {
        state.metrics.cache_hit();
        bf_trace::counter!("serve.predict_cache.hits");
    }
    for _ in 0..misses.len() {
        state.metrics.cache_miss();
        bf_trace::counter!("serve.predict_cache.misses");
    }

    if !misses.is_empty() {
        let predictor = &model.bundle.predictor;
        let want = predictor.counters.characteristics.len();
        for (i, _) in &misses {
            if rows[*i].len() != want {
                return Err(format!(
                    "expected {want} characteristics, got {}",
                    rows[*i].len()
                ));
            }
        }
        // Counter models per row (cheap, closed-form), then the reduced
        // forest over the whole miss set in one pass per tree. The counter
        // rows double as the exposed per-counter predictions — exactly the
        // values `ModelBundle::predict` reports.
        let counter_rows: Vec<Vec<f64>> = misses
            .iter()
            .map(|(i, _)| predictor.counters.predict(&rows[*i]))
            .collect();
        let times = model
            .flat
            .predict_batch(&counter_rows)
            .map_err(|e| e.to_string())?;
        state.metrics.observe_batch(misses.len() as u64);
        let mut cache = state.cache.lock().unwrap();
        for (((i, key), values), predicted_ms) in misses.into_iter().zip(counter_rows).zip(times) {
            let counters = predictor
                .counters
                .models
                .iter()
                .zip(values)
                .map(|(m, v)| (m.counter.clone(), v))
                .collect();
            let p = Prediction {
                predicted_ms,
                counters,
            };
            if let Some((evicted_key, _)) = cache.insert(key, p.clone()) {
                state.metrics.cache_evicted(evicted_key.0);
                bf_trace::counter!("serve.predict_cache.evictions");
            }
            out[i] = Some((p, false));
        }
    }
    Ok(out.into_iter().map(|o| o.expect("row answered")).collect())
}

/// Renders the answer for one `/predict` request: a single object, or an
/// array mirroring an array body.
fn render_predictions(
    model: &LoadedModel,
    items: &PredictItems,
    results: Vec<(Prediction, bool)>,
) -> Response {
    let payloads: Vec<PredictResponse> = items
        .rows
        .iter()
        .zip(results)
        .map(|(chars, (prediction, cached))| PredictResponse {
            workload: model.bundle.workload.clone(),
            gpu: model.bundle.gpu_name.clone(),
            model: model.id_hex(),
            characteristics: chars.clone(),
            predicted_ms: prediction.predicted_ms,
            counters: prediction.counters,
            cached,
        })
        .collect();
    let encoded = if items.batch {
        serde_json::to_string(&payloads)
    } else {
        serde_json::to_string(&payloads[0])
    };
    match encoded {
        Ok(json) => Response::json(200, json),
        Err(e) => Response::error(500, &format!("serialize response: {e}")),
    }
}

/// The parse/validate half of `/predict`: from raw body bytes to the exact
/// canonicalized characteristic rows the forest expects, or the error
/// response to send. A body whose first non-whitespace byte is `[` is a
/// batch of queries; anything else is a single query.
pub(crate) fn parse_predict_items(
    request: &Request,
    model: &LoadedModel,
) -> Result<PredictItems, Response> {
    let body = match std::str::from_utf8(&request.body) {
        Ok(s) => s,
        Err(_) => return Err(Response::error(400, "request body is not UTF-8")),
    };
    let is_batch = body
        .bytes()
        .find(|b| !b.is_ascii_whitespace())
        .map(|b| b == b'[')
        .unwrap_or(false);
    if !is_batch {
        let query: PredictRequest = match serde_json::from_str(body) {
            Ok(q) => q,
            Err(e) => return Err(Response::error(400, &format!("bad JSON body: {e}"))),
        };
        let row = chars_for_query(query, &model.bundle)
            .map_err(|(status, msg)| Response::error(status, &msg))?;
        return Ok(PredictItems {
            rows: vec![row],
            batch: false,
        });
    }
    let queries: Vec<PredictRequest> = match serde_json::from_str(body) {
        Ok(q) => q,
        Err(e) => return Err(Response::error(400, &format!("bad JSON body: {e}"))),
    };
    if queries.is_empty() {
        return Err(Response::error(400, "batch body must not be empty"));
    }
    let rows = queries
        .into_iter()
        .enumerate()
        .map(|(i, q)| {
            chars_for_query(q, &model.bundle)
                .map_err(|(status, msg)| Response::error(status, &format!("item {i}: {msg}")))
        })
        .collect::<Result<Vec<_>, Response>>()?;
    Ok(PredictItems { rows, batch: true })
}

/// Validates one query against the bundle and resolves it to a
/// canonicalized characteristic vector.
fn chars_for_query(query: PredictRequest, bundle: &ModelBundle) -> Result<Vec<f64>, (u16, String)> {
    if let Some(w) = &query.workload {
        let matches = match (blackforest::Workload::from_name(w), bundle.workload()) {
            (Some(a), Some(b)) => a == b,
            _ => w.eq_ignore_ascii_case(&bundle.workload),
        };
        if !matches {
            return Err((
                422,
                format!(
                    "bundle was trained for workload {:?}, not {w:?}",
                    bundle.workload
                ),
            ));
        }
    }
    if let Some(g) = &query.gpu {
        if !g.eq_ignore_ascii_case(&bundle.gpu_name) {
            return Err((
                422,
                format!(
                    "bundle was trained on {} (fingerprint {:#x}); predictions for {g:?} \
                     need a bundle trained on that GPU",
                    bundle.gpu_name, bundle.gpu_fingerprint
                ),
            ));
        }
    }

    let chars = if let Some(chars) = query.characteristics {
        if chars.len() != bundle.characteristics.len() {
            return Err((
                422,
                format!(
                    "expected {} characteristics {:?}, got {}",
                    bundle.characteristics.len(),
                    bundle.characteristics,
                    chars.len()
                ),
            ));
        }
        chars
    } else {
        let size = match query.size {
            Some(s) if s.is_finite() && s > 0.0 => s,
            Some(_) => return Err((422, "size must be a positive finite number".into())),
            None => return Err((400, "body needs either size or characteristics".into())),
        };
        bundle
            .characteristics_for(size, query.threads, query.sweeps)
            .map_err(|msg| (422, msg))?
    };
    canonicalize_chars(chars)
}

/// Canonicalizes a characteristic vector for prediction and cache keying:
/// non-finite values are a 422 (a NaN/inf query is meaningless to the
/// forest, and NaN's many bit patterns would fragment the bitwise cache
/// key), and `-0.0` collapses to `+0.0` (equal to every tree threshold, so
/// both spellings must share one cache entry).
fn canonicalize_chars(mut chars: Vec<f64>) -> Result<Vec<f64>, (u16, String)> {
    for (i, c) in chars.iter_mut().enumerate() {
        if !c.is_finite() {
            return Err((422, format!("characteristic {i} must be finite, got {c}")));
        }
        if *c == 0.0 {
            *c = 0.0; // normalize -0.0
        }
    }
    Ok(chars)
}

fn handle_bottleneck(request: &Request, state: &ServerState) -> Response {
    let resolved = match state.registry.resolve("default") {
        Ok(r) => r,
        Err(e) => {
            return Response::error(503, &format!("no ready model at alias \"default\" ({e})"))
        }
    };
    let bundle = &resolved.model.bundle;
    let findings = &bundle.bottlenecks.findings;
    let k = match request.query_param("k") {
        Some(raw) => match raw.parse::<usize>() {
            Ok(k) if k >= 1 => k,
            _ => return Response::error(400, &format!("bad k={raw:?}: expected integer >= 1")),
        },
        None => findings.len(),
    };
    let payload = BottleneckResponse {
        workload: bundle.workload.clone(),
        gpu: bundle.gpu_name.clone(),
        findings: findings.iter().take(k).cloned().collect(),
    };
    match serde_json::to_string(&payload) {
        Ok(json) => Response::json(200, json),
        Err(e) => Response::error(500, &format!("serialize response: {e}")),
    }
}

/// Liveness: always `200` while the process serves; identifies the default
/// model when one is published.
fn handle_healthz(state: &ServerState) -> Response {
    match state.registry.resolve("default") {
        Ok(resolved) => {
            let bundle = &resolved.model.bundle;
            let payload = HealthResponse {
                status: "ok".into(),
                workload: bundle.workload.clone(),
                gpu: bundle.gpu_name.clone(),
                schema_version: bundle.schema_version,
                bundle_id: resolved.model.id_hex(),
                trees: resolved.model.flat.n_trees(),
                selected: bundle.selected.clone(),
            };
            match serde_json::to_string(&payload) {
                Ok(json) => Response::json(200, json),
                Err(e) => Response::error(500, &format!("serialize response: {e}")),
            }
        }
        // Alive but not ready: liveness stays 200 — readiness is /readyz.
        Err(_) => Response::json(
            200,
            "{\"status\":\"ok\",\"workload\":null,\"bundle_id\":null}".into(),
        ),
    }
}

/// Readiness: `200` only once the `default` alias resolves to a loaded
/// (and therefore warmed — warm-up precedes publication) bundle; `503`
/// before, including during initial load.
fn handle_readyz(state: &ServerState) -> Response {
    let (status, payload) = match state.registry.resolve("default") {
        Ok(resolved) => (
            200,
            ReadyResponse {
                ready: true,
                default: Some(resolved.model.id_hex()),
                reason: None,
            },
        ),
        Err(e) => (
            503,
            ReadyResponse {
                ready: false,
                default: None,
                reason: Some(e.to_string()),
            },
        ),
    };
    match serde_json::to_string(&payload) {
        Ok(json) => Response::json(status, json),
        Err(e) => Response::error(500, &format!("serialize response: {e}")),
    }
}

fn handle_models_list(state: &ServerState) -> Response {
    match serde_json::to_string(&state.registry.list()) {
        Ok(json) => Response::json(200, json),
        Err(e) => Response::error(500, &format!("serialize response: {e}")),
    }
}

fn handle_shadow_report(state: &ServerState) -> Response {
    match serde_json::to_string(&state.registry.shadow_report()) {
        Ok(json) => Response::json(200, json),
        Err(e) => Response::error(500, &format!("serialize response: {e}")),
    }
}

/// Decodes an admin JSON body, with the admin gate applied first.
fn admin_body<T: serde::Deserialize>(
    request: &Request,
    state: &ServerState,
) -> Result<T, Response> {
    if !state.admin {
        return Err(Response::error(
            403,
            "admin API disabled; restart the server with --admin to enable \
             /v1/models/load|unload|alias",
        ));
    }
    let body = std::str::from_utf8(&request.body)
        .map_err(|_| Response::error(400, "request body is not UTF-8"))?;
    serde_json::from_str(body).map_err(|e| Response::error(400, &format!("bad JSON body: {e}")))
}

fn registry_error_response(e: &RegistryError) -> Response {
    Response::error(e.http_status(), &e.to_string())
}

#[derive(Deserialize)]
struct AdminLoadBody {
    /// Path of the bundle JSON to load, resolved on the server host.
    path: String,
}

fn handle_admin_load(request: &Request, state: &ServerState) -> Response {
    let body: AdminLoadBody = match admin_body(request, state) {
        Ok(b) => b,
        Err(r) => return r,
    };
    match state.registry.load_path(Path::new(&body.path)) {
        Ok(id) => Response::json(200, format!("{{\"id\":\"{id:016x}\",\"loaded\":true}}")),
        Err(e) => registry_error_response(&e),
    }
}

#[derive(Deserialize)]
struct AdminUnloadBody {
    /// Content id (16 hex digits) of the model to unload.
    id: String,
}

fn handle_admin_unload(request: &Request, state: &ServerState) -> Response {
    let body: AdminUnloadBody = match admin_body(request, state) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let Some(id) = parse_id_hex(&body.id) else {
        return Response::error(
            400,
            &format!("bad id {:?}: expected 16 hex digits", body.id),
        );
    };
    match state.registry.unload(id) {
        Ok(()) => {
            let draining = state.registry.sweep_drained();
            Response::json(
                200,
                format!("{{\"id\":\"{id:016x}\",\"unloaded\":true,\"draining\":{draining}}}"),
            )
        }
        Err(e) => registry_error_response(&e),
    }
}

#[derive(Deserialize)]
struct AdminSplitBody {
    /// Secondary model id (16 hex digits).
    id: String,
    /// Percent of traffic (0–100) to the secondary.
    percent: u8,
}

#[derive(Deserialize)]
struct AdminAliasBody {
    /// Alias to create or update.
    alias: String,
    /// New primary model id (16 hex digits); omitted keeps the current.
    id: Option<String>,
    /// Create the alias if missing (otherwise 409).
    create: Option<bool>,
    /// Allow a GPU-fingerprint change (otherwise 409).
    force: Option<bool>,
    /// Percentage A/B split to install (replaces any existing).
    split: Option<AdminSplitBody>,
    /// Shadow model id (16 hex digits) to attach (replaces any existing).
    shadow: Option<String>,
}

fn handle_admin_alias(request: &Request, state: &ServerState) -> Response {
    let body: AdminAliasBody = match admin_body(request, state) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let parse_id = |field: &str, raw: &str| -> Result<u64, Response> {
        parse_id_hex(raw).ok_or_else(|| {
            Response::error(400, &format!("bad {field} {raw:?}: expected 16 hex digits"))
        })
    };
    let id = match body
        .id
        .as_deref()
        .map(|raw| parse_id("id", raw))
        .transpose()
    {
        Ok(id) => id,
        Err(r) => return r,
    };
    let shadow = match body
        .shadow
        .as_deref()
        .map(|raw| parse_id("shadow", raw))
        .transpose()
    {
        Ok(s) => s,
        Err(r) => return r,
    };
    let split = match body
        .split
        .as_ref()
        .map(|s| {
            parse_id("split.id", &s.id).map(|secondary| Split {
                secondary,
                percent: s.percent,
            })
        })
        .transpose()
    {
        Ok(s) => s,
        Err(r) => return r,
    };
    let update = AliasUpdate {
        alias: body.alias.clone(),
        id,
        create: body.create.unwrap_or(false),
        force: body.force.unwrap_or(false),
        split,
        shadow,
    };
    match state.registry.set_alias(update) {
        Ok(target) => Response::json(
            200,
            format!(
                "{{\"alias\":{:?},\"primary\":\"{:016x}\"}}",
                body.alias, target.primary
            ),
        ),
        Err(e) => registry_error_response(&e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_addr_accepts_sockets_and_hostnames() {
        assert_eq!(
            parse_addr("127.0.0.1:7878").unwrap(),
            "127.0.0.1:7878".parse::<SocketAddr>().unwrap()
        );
        assert!(parse_addr("localhost:0").is_ok());
        let e = parse_addr("not-an-addr").unwrap_err();
        assert!(e.contains("host:port"), "{e}");
        assert!(parse_addr("127.0.0.1:notaport").is_err());
    }

    #[test]
    fn serve_mode_names_round_trip() {
        for mode in [ServeMode::Threads, ServeMode::EventLoop] {
            assert_eq!(ServeMode::from_name(mode.name()), Some(mode));
        }
        assert_eq!(ServeMode::from_name("legacy"), Some(ServeMode::Threads));
        assert_eq!(ServeMode::from_name("epoll"), Some(ServeMode::EventLoop));
        assert_eq!(ServeMode::from_name("tokio"), None);
    }

    #[test]
    fn canonicalize_rejects_non_finite_and_collapses_negative_zero() {
        let ok = canonicalize_chars(vec![4096.0, -0.0, 2.5]).unwrap();
        assert_eq!(ok[1].to_bits(), 0.0f64.to_bits(), "-0.0 must become +0.0");
        assert_eq!(ok, vec![4096.0, 0.0, 2.5]);
        let err = canonicalize_chars(vec![1.0, f64::NAN]).unwrap_err();
        assert_eq!(err.0, 422);
        assert!(err.1.contains("characteristic 1"), "{}", err.1);
        assert_eq!(canonicalize_chars(vec![f64::INFINITY]).unwrap_err().0, 422);
        assert_eq!(
            canonicalize_chars(vec![f64::NEG_INFINITY]).unwrap_err().0,
            422
        );
    }

    #[test]
    fn predict_model_key_routes_root_and_versioned_paths() {
        assert_eq!(predict_model_key("/predict"), Some("default"));
        assert_eq!(
            predict_model_key("/v1/models/canary/predict"),
            Some("canary")
        );
        assert_eq!(
            predict_model_key("/v1/models/00000000000000ab/predict"),
            Some("00000000000000ab")
        );
        assert_eq!(predict_model_key("/v1/models"), None);
        assert_eq!(predict_model_key("/v1/models//predict"), None);
        assert_eq!(predict_model_key("/v1/models/a/b/predict"), None);
        assert_eq!(predict_model_key("/v1/models/shadow/report"), None);
        assert_eq!(predict_model_key("/healthz"), None);
    }
}
