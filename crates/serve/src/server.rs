//! The prediction server: a bounded worker-thread pool over
//! `std::net::TcpListener`, serving a loaded [`ModelBundle`].
//!
//! Accepted connections are dispatched to workers over a bounded channel
//! (the acceptor blocks when all workers are busy and the backlog is full —
//! natural backpressure instead of unbounded queueing). Each worker owns a
//! connection until it closes, serving any number of kept-alive requests.
//!
//! Routes:
//!
//! * `POST /predict` — JSON query → predicted time + per-counter predictions.
//! * `GET /bottleneck[?k=N]` — top-k permutation-importance findings.
//! * `GET /healthz` — liveness + bundle identity.
//! * `GET /metrics` — Prometheus-style text exposition.
//!
//! Repeated queries are answered from an LRU cache keyed on
//! `(bundle content id, exact query bits)` so a busy client never re-walks
//! the forest for a size it already asked about.

use crate::bundle::{ModelBundle, Prediction};
use crate::http::{HttpError, Request, Response};
use crate::lru::LruCache;
use crate::metrics::{Metrics, Phase, Route};
use serde::{Deserialize, Serialize};
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Tuning knobs for [`PredictServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads handling connections.
    pub threads: usize,
    /// Capacity of the prediction LRU cache (entries).
    pub cache_capacity: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            cache_capacity: 4096,
            read_timeout: Duration::from_secs(30),
        }
    }
}

/// Parses and validates a `host:port` listen address, resolving hostnames
/// like `localhost`. Errors spell out what was wrong.
pub fn parse_addr(addr: &str) -> Result<SocketAddr, String> {
    if let Ok(sa) = addr.parse::<SocketAddr>() {
        return Ok(sa);
    }
    if !addr.contains(':') {
        return Err(format!(
            "invalid --addr {addr:?}: expected host:port (e.g. 127.0.0.1:7878)"
        ));
    }
    match addr.to_socket_addrs() {
        Ok(mut it) => it
            .next()
            .ok_or_else(|| format!("invalid --addr {addr:?}: resolved to no addresses")),
        Err(e) => Err(format!(
            "invalid --addr {addr:?}: {e} (expected host:port, e.g. 127.0.0.1:7878)"
        )),
    }
}

/// Shared state every worker sees.
struct ServerState {
    bundle: ModelBundle,
    bundle_id: u64,
    metrics: Metrics,
    cache: Mutex<LruCache<(u64, Vec<u64>), Prediction>>,
    cache_capacity: usize,
    shutdown: AtomicBool,
}

/// A bound, not-yet-running server.
pub struct PredictServer {
    listener: TcpListener,
    state: Arc<ServerState>,
    config: ServeConfig,
}

/// A remote control for a running server: its address and a `stop` switch.
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the accept loop to exit, unblocking it with a dummy connection.
    pub fn stop(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor; any error just means it is already gone.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
    }
}

impl PredictServer {
    /// Binds the listener and prepares shared state.
    pub fn bind(addr: &str, bundle: ModelBundle, config: ServeConfig) -> Result<Self, String> {
        let sock_addr = parse_addr(addr)?;
        let listener =
            TcpListener::bind(sock_addr).map_err(|e| format!("bind {sock_addr}: {e}"))?;
        let bundle_id = bundle.content_id();
        let cache_capacity = config.cache_capacity.max(1);
        Ok(PredictServer {
            listener,
            state: Arc::new(ServerState {
                bundle,
                bundle_id,
                metrics: Metrics::new(),
                cache: Mutex::new(LruCache::new(cache_capacity)),
                cache_capacity,
                shutdown: AtomicBool::new(false),
            }),
            config,
        })
    }

    /// The actual bound address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has addr")
    }

    /// A handle usable to stop the server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
            addr: self.local_addr(),
        }
    }

    /// Runs the accept loop until [`ServerHandle::stop`]; returns once all
    /// workers have drained.
    pub fn run(self) {
        let threads = self.config.threads.max(1);
        // Bounded dispatch: at most 2 connections queued per worker.
        let (tx, rx): (SyncSender<TcpStream>, Receiver<TcpStream>) =
            std::sync::mpsc::sync_channel(threads * 2);
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&self.state);
            let timeout = self.config.read_timeout;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("bf-serve-{i}"))
                    .spawn(move || loop {
                        let stream = match rx.lock().unwrap().recv() {
                            Ok(s) => s,
                            Err(_) => break, // acceptor dropped the sender
                        };
                        serve_connection(stream, &state, timeout);
                    })
                    .expect("spawn worker"),
            );
        }
        for stream in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(s) => {
                    if tx.send(s).is_err() {
                        break;
                    }
                }
                Err(_) => continue,
            }
        }
        drop(tx);
        for w in workers {
            let _ = w.join();
        }
    }

    /// Runs the server on a background thread; the returned handle stops it.
    pub fn spawn(self) -> (ServerHandle, std::thread::JoinHandle<()>) {
        let handle = self.handle();
        let join = std::thread::Builder::new()
            .name("bf-serve-accept".into())
            .spawn(move || self.run())
            .expect("spawn accept loop");
        (handle, join)
    }
}

/// Mints a process-unique request trace id: a boot-time salt (so ids from
/// different server runs don't collide in aggregated logs) plus a sequence
/// number. Echoed back to clients as the `X-BF-Trace-Id` response header.
fn next_trace_id() -> String {
    static SALT: OnceLock<u64> = OnceLock::new();
    static SEQ: AtomicU64 = AtomicU64::new(1);
    let salt = *SALT.get_or_init(|| {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15)
    });
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    format!("bf-{:08x}-{seq:08x}", (salt ^ (salt >> 32)) as u32)
}

/// Serves every request on one connection.
fn serve_connection(stream: TcpStream, state: &ServerState, timeout: Duration) {
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let started = Instant::now();
        let trace_id = next_trace_id();
        let request = match Request::read_from(&mut reader) {
            Ok(Some(r)) => r,
            Ok(None) => return, // client closed between requests
            Err(HttpError { status, message }) => {
                state
                    .metrics
                    .observe(Route::Other, status, elapsed_us(started));
                let response =
                    Response::error(status, &message).with_header("X-BF-Trace-Id", trace_id);
                let _ = response.write_to(&mut writer, true);
                return;
            }
        };
        let close = request.wants_close();
        let (route, response) = {
            let mut span = bf_trace::span!(
                "request",
                method = request.method.as_str(),
                path = request.path.as_str(),
            );
            if span.is_active() {
                span.attr("trace_id", trace_id.as_str());
            }
            let (route, response) = handle_request(&request, state);
            if span.is_active() {
                span.attr("status", response.status);
            }
            (route, response)
        };
        let response = response.with_header("X-BF-Trace-Id", trace_id);
        state
            .metrics
            .observe(route, response.status, elapsed_us(started));
        if response.write_to(&mut writer, close).is_err() || close {
            return;
        }
    }
}

fn elapsed_us(started: Instant) -> u64 {
    started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

/// A `POST /predict` body. Either `characteristics` (exact vector, bundle
/// order) or `size` (+ optional secondaries) must be given.
#[derive(Debug, Deserialize)]
struct PredictRequest {
    /// Workload name, validated against the bundle when present.
    workload: Option<String>,
    /// Target GPU name, validated against the bundle when present.
    gpu: Option<String>,
    /// Primary problem size.
    size: Option<f64>,
    /// Threads per block (reduce workloads).
    threads: Option<f64>,
    /// Stencil sweep count.
    sweeps: Option<f64>,
    /// Full characteristic vector, bypassing the named fields.
    characteristics: Option<Vec<f64>>,
}

/// A `POST /predict` answer.
#[derive(Debug, Serialize)]
struct PredictResponse {
    workload: String,
    gpu: String,
    characteristics: Vec<f64>,
    predicted_ms: f64,
    /// `(counter, predicted value)` pairs in retained-feature order.
    counters: Vec<(String, f64)>,
    /// Whether the answer came from the prediction cache.
    cached: bool,
}

#[derive(Debug, Serialize)]
struct HealthResponse {
    status: String,
    workload: String,
    gpu: String,
    schema_version: u32,
    bundle_id: String,
    trees: usize,
    selected: Vec<String>,
}

#[derive(Debug, Serialize)]
struct BottleneckResponse {
    workload: String,
    gpu: String,
    findings: Vec<blackforest::bottleneck::BottleneckFinding>,
}

/// Routes one request. Returns the route label for metrics plus the answer.
fn handle_request(request: &Request, state: &ServerState) -> (Route, Response) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/predict") => (Route::Predict, handle_predict(request, state)),
        ("GET", "/bottleneck") => (Route::Bottleneck, handle_bottleneck(request, state)),
        ("GET", "/healthz") => (Route::Healthz, handle_healthz(state)),
        ("GET", "/metrics") => {
            let body = state
                .metrics
                .render(state.cache.lock().unwrap().len(), state.cache_capacity);
            (Route::Metrics, Response::text(200, body))
        }
        (_, "/predict" | "/bottleneck" | "/healthz" | "/metrics") => (
            Route::Other,
            Response::error(405, "method not allowed for this path"),
        ),
        _ => (
            Route::Other,
            Response::error(404, &format!("no such route {}", request.path)),
        ),
    }
}

fn handle_predict(request: &Request, state: &ServerState) -> Response {
    // Parse phase: body decode, JSON parse, query validation.
    let parse_started = Instant::now();
    let parsed = {
        let _span = bf_trace::span!("parse", body_bytes = request.body.len());
        parse_predict_chars(request, state)
    };
    state
        .metrics
        .observe_phase(Phase::Parse, elapsed_us(parse_started));
    let chars = match parsed {
        Ok(chars) => chars,
        Err(response) => return response,
    };

    // Predict phase: cache lookup, forest walk on a miss.
    let predict_started = Instant::now();
    let bundle = &state.bundle;
    let answered = {
        let mut span = bf_trace::span!("predict");
        let key = (
            state.bundle_id,
            chars.iter().map(|c| c.to_bits()).collect::<Vec<u64>>(),
        );
        let cached = state.cache.lock().unwrap().get(&key).cloned();
        let answered = match cached {
            Some(p) => {
                state.metrics.cache_hit();
                bf_trace::counter!("serve.predict_cache.hits");
                Ok((p, true))
            }
            None => {
                state.metrics.cache_miss();
                bf_trace::counter!("serve.predict_cache.misses");
                match bundle.predict(&chars) {
                    Ok(p) => {
                        state.cache.lock().unwrap().insert(key, p.clone());
                        Ok((p, false))
                    }
                    Err(msg) => Err(Response::error(500, &format!("prediction failed: {msg}"))),
                }
            }
        };
        if span.is_active() {
            if let Ok((_, was_cached)) = &answered {
                span.attr("cached", *was_cached);
            }
        }
        answered
    };
    state
        .metrics
        .observe_phase(Phase::Predict, elapsed_us(predict_started));
    let (prediction, was_cached) = match answered {
        Ok(hit) => hit,
        Err(response) => return response,
    };

    // Serialize phase: building and encoding the answer.
    let serialize_started = Instant::now();
    let response = {
        let _span = bf_trace::span!("serialize");
        let payload = PredictResponse {
            workload: bundle.workload.clone(),
            gpu: bundle.gpu_name.clone(),
            characteristics: chars,
            predicted_ms: prediction.predicted_ms,
            counters: prediction.counters,
            cached: was_cached,
        };
        match serde_json::to_string(&payload) {
            Ok(json) => Response::json(200, json),
            Err(e) => Response::error(500, &format!("serialize response: {e}")),
        }
    };
    state
        .metrics
        .observe_phase(Phase::Serialize, elapsed_us(serialize_started));
    response
}

/// The parse/validate half of `/predict`: from raw body bytes to the exact
/// characteristic vector the forest expects, or the error response to send.
fn parse_predict_chars(request: &Request, state: &ServerState) -> Result<Vec<f64>, Response> {
    let body = match std::str::from_utf8(&request.body) {
        Ok(s) => s,
        Err(_) => return Err(Response::error(400, "request body is not UTF-8")),
    };
    let query: PredictRequest = match serde_json::from_str(body) {
        Ok(q) => q,
        Err(e) => return Err(Response::error(400, &format!("bad JSON body: {e}"))),
    };
    let bundle = &state.bundle;

    if let Some(w) = &query.workload {
        let matches = match (blackforest::Workload::from_name(w), bundle.workload()) {
            (Some(a), Some(b)) => a == b,
            _ => w.eq_ignore_ascii_case(&bundle.workload),
        };
        if !matches {
            return Err(Response::error(
                422,
                &format!(
                    "bundle was trained for workload {:?}, not {w:?}",
                    bundle.workload
                ),
            ));
        }
    }
    if let Some(g) = &query.gpu {
        if !g.eq_ignore_ascii_case(&bundle.gpu_name) {
            return Err(Response::error(
                422,
                &format!(
                    "bundle was trained on {} (fingerprint {:#x}); predictions for {g:?} \
                     need a bundle trained on that GPU",
                    bundle.gpu_name, bundle.gpu_fingerprint
                ),
            ));
        }
    }

    if let Some(chars) = query.characteristics {
        if chars.len() != bundle.characteristics.len() {
            return Err(Response::error(
                422,
                &format!(
                    "expected {} characteristics {:?}, got {}",
                    bundle.characteristics.len(),
                    bundle.characteristics,
                    chars.len()
                ),
            ));
        }
        Ok(chars)
    } else {
        let size = match query.size {
            Some(s) if s.is_finite() && s > 0.0 => s,
            Some(_) => {
                return Err(Response::error(
                    422,
                    "size must be a positive finite number",
                ))
            }
            None => {
                return Err(Response::error(
                    400,
                    "body needs either size or characteristics",
                ))
            }
        };
        bundle
            .characteristics_for(size, query.threads, query.sweeps)
            .map_err(|msg| Response::error(422, &msg))
    }
}

fn handle_bottleneck(request: &Request, state: &ServerState) -> Response {
    let findings = &state.bundle.bottlenecks.findings;
    let k = match request.query_param("k") {
        Some(raw) => match raw.parse::<usize>() {
            Ok(k) if k >= 1 => k,
            _ => return Response::error(400, &format!("bad k={raw:?}: expected integer >= 1")),
        },
        None => findings.len(),
    };
    let payload = BottleneckResponse {
        workload: state.bundle.workload.clone(),
        gpu: state.bundle.gpu_name.clone(),
        findings: findings.iter().take(k).cloned().collect(),
    };
    match serde_json::to_string(&payload) {
        Ok(json) => Response::json(200, json),
        Err(e) => Response::error(500, &format!("serialize response: {e}")),
    }
}

fn handle_healthz(state: &ServerState) -> Response {
    let payload = HealthResponse {
        status: "ok".into(),
        workload: state.bundle.workload.clone(),
        gpu: state.bundle.gpu_name.clone(),
        schema_version: state.bundle.schema_version,
        bundle_id: format!("{:016x}", state.bundle_id),
        trees: state.bundle.predictor.model.reduced_forest.n_trees(),
        selected: state.bundle.selected.clone(),
    };
    match serde_json::to_string(&payload) {
        Ok(json) => Response::json(200, json),
        Err(e) => Response::error(500, &format!("serialize response: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_addr_accepts_sockets_and_hostnames() {
        assert_eq!(
            parse_addr("127.0.0.1:7878").unwrap(),
            "127.0.0.1:7878".parse::<SocketAddr>().unwrap()
        );
        assert!(parse_addr("localhost:0").is_ok());
        let e = parse_addr("not-an-addr").unwrap_err();
        assert!(e.contains("host:port"), "{e}");
        assert!(parse_addr("127.0.0.1:notaport").is_err());
    }
}
