//! # bf-serve
//!
//! The serving layer of the BlackForest toolchain: durable model-artifact
//! bundles plus a dependency-free multi-threaded HTTP prediction server.
//!
//! The paper's end product is a *predictor* — a trained random forest
//! chained with per-counter GLM/MARS models that answers "what will this
//! kernel's execution time be at size N on GPU G" — but the training
//! pipeline is expensive (a full profiling sweep plus forest fits). This
//! crate splits train-time from query-time:
//!
//! * [`bundle`] — a versioned JSON [`bundle::ModelBundle`] persisting the
//!   fitted prediction chain, feature schema, training-GPU fingerprint, and
//!   sweep provenance, with a loader that rejects foreign files and
//!   mismatched schema versions up front.
//! * [`server`] — a `std::net` HTTP/1.1 server serving `POST /predict`
//!   (single or batched), `GET /bottleneck`, `GET /healthz`, and
//!   `GET /metrics` from a loaded bundle. Two engines share the handler
//!   stack: the default nonblocking epoll event loop (Linux; keep-alive,
//!   pipelining, adaptive micro-batching, bounded admission with fast 429s,
//!   graceful drain) and the legacy blocking thread pool
//!   ([`server::ServeMode::Threads`]), kept as a portable fallback and as
//!   the baseline for `bench_serve`. No new dependencies: the whole stack
//!   is `std` + the already-vendored serde (epoll is reached through a
//!   local `extern "C"` shim against the libc `std` already links).
//! * [`lru`] — the O(1) LRU cache memoizing whole query → prediction
//!   results.
//! * [`metrics`] — lock-free request/latency/cache counters with a
//!   Prometheus-style text exposition (including the process-wide
//!   [`gpu_sim::memo`] simulation-cache counters).
//! * [`http`] — the minimal request parser / response writer underneath.
//!
//! Bundle predictions are bit-identical to in-memory
//! [`blackforest::predict::ProblemScalingPredictor::predict`] calls: the
//! bundle stores the same structs the trainer produced, serialized through
//! exact round-trip float encoding.

pub mod bundle;
#[cfg(target_os = "linux")]
mod eventloop;
pub mod http;
pub mod lru;
pub mod metrics;
pub mod server;
#[cfg(target_os = "linux")]
mod sys;

pub use bundle::{BundleError, ModelBundle, Prediction, SweepMeta, SCHEMA_VERSION};
pub use lru::LruCache;
pub use metrics::Metrics;
pub use server::{parse_addr, PredictServer, ServeConfig, ServeMode, ServerHandle};
