//! # bf-serve
//!
//! The serving layer of the BlackForest toolchain: a dependency-free HTTP
//! prediction server over a hot-reloadable, multi-model registry.
//!
//! The paper's end product is a *predictor* — a trained random forest
//! chained with per-counter GLM/MARS models that answers "what will this
//! kernel's execution time be at size N on GPU G" — but the training
//! pipeline is expensive (a full profiling sweep plus forest fits). This
//! crate is the query-time half:
//!
//! * [`server`] — a `std::net` HTTP/1.1 server serving `POST /predict`
//!   (single or batched; also addressable per model at
//!   `POST /v1/models/{id-or-alias}/predict`), `GET /bottleneck`,
//!   `GET /healthz`, `GET /readyz`, `GET /metrics`, the registry
//!   inventory at `GET /v1/models`, the shadow divergence report at
//!   `GET /v1/models/shadow/report`, and the opt-in admin API
//!   (`POST /v1/models/load|unload|alias`). Two engines share the handler
//!   stack: the default nonblocking epoll event loop (Linux; keep-alive,
//!   pipelining, adaptive micro-batching, bounded admission with fast 429s,
//!   graceful drain) and the legacy blocking thread pool
//!   ([`server::ServeMode::Threads`]), kept as a portable fallback and as
//!   the baseline for `bench_serve`. No new dependencies: the whole stack
//!   is `std` + the already-vendored serde (epoll is reached through a
//!   local `extern "C"` shim against the libc `std` already links).
//! * [`bf_registry`] (re-exported here) — the concurrent model registry:
//!   N loaded [`ModelBundle`]s addressed by content id and mutable
//!   aliases, epoch-validated lock-free reads, zero-downtime hot swap
//!   with drain tracking, percentage A/B splits, and asynchronous shadow
//!   replay with a streaming divergence report. The versioned JSON bundle
//!   format itself lives in [`bundle`] (re-exported
//!   `bf_registry::bundle`).
//! * [`lru`] — the O(1) LRU cache memoizing whole query → prediction
//!   results, keyed by `(bundle content id, query bits)`.
//! * [`metrics`] — lock-free request/latency/cache counters with a
//!   Prometheus-style text exposition (including the process-wide
//!   [`gpu_sim::memo`] simulation-cache counters and per-model eviction
//!   counts).
//! * [`http`] — the minimal request parser / response writer underneath.
//!
//! Bundle predictions are bit-identical to in-memory
//! [`blackforest::predict::ProblemScalingPredictor::predict`] calls: the
//! bundle stores the same structs the trainer produced, serialized through
//! exact round-trip float encoding.

#[cfg(target_os = "linux")]
mod eventloop;
pub mod http;
pub mod lru;
pub mod metrics;
pub mod server;
#[cfg(target_os = "linux")]
mod sys;

/// The bundle format, now owned by `bf-registry`; re-exported so
/// `bf_serve::bundle::ModelBundle` paths keep working.
pub use bf_registry::bundle;
pub use bf_registry::{
    AliasInfo, AliasTarget, AliasUpdate, BundleError, DrainInfo, LoadedModel, ModelBundle,
    ModelInfo, ModelsReport, Prediction, Registry, RegistryError, RegistryReader, Resolved,
    ShadowReport, Split, SweepMeta, WorkloadDelta, SCHEMA_VERSION,
};
pub use lru::LruCache;
pub use metrics::Metrics;
pub use server::{parse_addr, PredictServer, ServeConfig, ServeMode, ServerHandle};
