//! A small, dependency-free O(1) LRU cache.
//!
//! Implemented as a slab-backed doubly-linked list plus a `HashMap` from
//! key to slab slot: `get` promotes to the front, `insert` evicts the back
//! when full. Used by the prediction server to memoize whole query →
//! prediction results (the launch-level [`gpu_sim::memo`] cache memoizes a
//! different layer: simulations during *training*).

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used map.
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Entry<K, V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> LruCache<K, V> {
        let capacity = capacity.max(1);
        LruCache {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Unlinks slot `i` from the recency list.
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Links slot `i` at the front (most recently used).
    fn link_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Looks a key up, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let i = *self.map.get(key)?;
        if i != self.head {
            self.unlink(i);
            self.link_front(i);
        }
        Some(&self.slab[i].value)
    }

    /// Inserts (or replaces) a key, evicting the least-recently-used entry
    /// when at capacity. Returns the evicted `(key, value)` pair, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&i) = self.map.get(&key) {
            self.slab[i].value = value;
            if i != self.head {
                self.unlink(i);
                self.link_front(i);
            }
            return None;
        }
        let evicted = if self.map.len() == self.capacity {
            let i = self.tail;
            self.unlink(i);
            let slot = &mut self.slab[i];
            let old_key = slot.key.clone();
            self.map.remove(&old_key);
            let old_value = std::mem::replace(&mut slot.value, value);
            slot.key = key.clone();
            self.map.insert(key, i);
            self.link_front(i);
            return Some((old_key, old_value));
        } else {
            None
        };
        let i = if let Some(i) = self.free.pop() {
            self.slab[i] = Entry {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            };
            i
        } else {
            self.slab.push(Entry {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.slab.len() - 1
        };
        self.map.insert(key, i);
        self.link_front(i);
        evicted
    }

    /// Removes every entry, keeping the allocation.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32, &'static str> = LruCache::new(2);
        assert!(c.insert(1, "one").is_none());
        assert!(c.insert(2, "two").is_none());
        assert_eq!(c.get(&1), Some(&"one")); // promote 1; 2 is now LRU
        let evicted = c.insert(3, "three").unwrap();
        assert_eq!(evicted.0, 2);
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(&"one"));
        assert_eq!(c.get(&3), Some(&"three"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn replacing_a_key_promotes_without_evicting() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert!(c.insert(1, 11).is_none());
        assert_eq!(c.get(&1), Some(&11));
        // 2 was LRU, so inserting a third key evicts it.
        assert_eq!(c.insert(3, 30).unwrap().0, 2);
    }

    #[test]
    fn capacity_one_always_holds_the_newest() {
        let mut c: LruCache<u32, u32> = LruCache::new(1);
        for i in 0..10 {
            c.insert(i, i * 2);
            assert_eq!(c.len(), 1);
            assert_eq!(c.get(&i), Some(&(i * 2)));
        }
    }

    #[test]
    fn heavy_churn_stays_consistent() {
        let mut c: LruCache<u64, u64> = LruCache::new(16);
        for i in 0..10_000u64 {
            c.insert(i % 37, i);
            let probe = (i * 7) % 37;
            if let Some(&v) = c.get(&probe) {
                // Values stored under key k are always ≡ k (mod 37).
                assert_eq!(v % 37, probe);
            }
            assert!(c.len() <= 16);
        }
    }

    #[test]
    fn clear_resets() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        c.insert(1, 1);
        c.insert(2, 2);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.get(&1), None);
        c.insert(3, 3);
        assert_eq!(c.get(&3), Some(&3));
    }
}
