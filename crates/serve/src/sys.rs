//! Thin epoll/pipe FFI for the event loop — Linux only, zero external crates.
//!
//! `std` already links libc, so the handful of syscall wrappers the
//! readiness loop needs can be declared directly; this is the same
//! vendored-libc pattern the rest of the workspace uses for missing
//! dependencies. Everything is wrapped in RAII types ([`Epoll`],
//! [`WakePipe`]) so raw fds never leak past this module.

#![cfg(target_os = "linux")]

use std::io;
use std::os::unix::io::RawFd;

/// Readable.
pub const EPOLLIN: u32 = 0x001;
/// Writable.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported; no need to register).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (always reported; no need to register).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write side.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLL_CLOEXEC: i32 = 0x80000;
const O_NONBLOCK: i32 = 0x800;
const O_CLOEXEC: i32 = 0x80000;

const EAGAIN: i32 = 11;

/// Mirror of the kernel's `struct epoll_event`. Packed on x86-64 (the
/// kernel ABI quirk); naturally aligned elsewhere.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Ready-event mask (`EPOLLIN` | ...).
    pub events: u32,
    /// Caller-chosen token identifying the fd.
    pub token: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn pipe2(fds: *mut i32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

/// An epoll instance; closed on drop.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, token };
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers an fd with the given interest mask and token.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes an fd's interest mask.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregisters an fd.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        // The event argument is ignored for DEL on modern kernels but must
        // be non-null for pre-2.6.9 compatibility; pass a dummy.
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits up to `timeout_ms` for events, filling `buf`. Returns the
    /// ready slice; EINTR is reported as an empty slice.
    pub fn wait<'a>(
        &self,
        buf: &'a mut [EpollEvent],
        timeout_ms: i32,
    ) -> io::Result<&'a [EpollEvent]> {
        let rc = unsafe { epoll_wait(self.fd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(&buf[..0]);
            }
            return Err(err);
        }
        Ok(&buf[..rc as usize])
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// A nonblocking self-pipe: worker threads write a byte to wake the event
/// loop out of `epoll_wait` when a completion is ready.
pub struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl WakePipe {
    /// Creates the pipe (both ends nonblocking, close-on-exec).
    pub fn new() -> io::Result<WakePipe> {
        let mut fds = [0i32; 2];
        let rc = unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(WakePipe {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }

    /// The fd the event loop registers for `EPOLLIN`.
    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// A cloneable writer for worker threads.
    pub fn waker(&self) -> Waker {
        Waker { fd: self.write_fd }
    }

    /// Drains pending wake bytes (called by the event loop on readiness).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                break; // empty (EAGAIN) or closed — either way, drained
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

/// The write end of a [`WakePipe`]. Copyable into worker threads; the pipe
/// outlives the workers (the event loop joins them before dropping it).
#[derive(Clone, Copy)]
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Writes one wake byte. A full pipe (EAGAIN) means a wake is already
    /// pending, which is all we need.
    pub fn wake(&self) {
        let byte = 1u8;
        let rc = unsafe { write(self.fd, &byte, 1) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            debug_assert!(
                err.raw_os_error() == Some(EAGAIN),
                "wake pipe write failed: {err}"
            );
        }
    }
}

// Waker is just an fd written with a single atomic syscall.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_pipe_round_trips_and_drains() {
        let pipe = WakePipe::new().unwrap();
        let waker = pipe.waker();
        let epoll = Epoll::new().unwrap();
        epoll.add(pipe.read_fd(), EPOLLIN, 7).unwrap();

        let mut buf = [EpollEvent {
            events: 0,
            token: 0,
        }; 4];
        // Nothing pending: times out empty.
        assert!(epoll.wait(&mut buf, 0).unwrap().is_empty());

        waker.wake();
        waker.wake();
        let ready = epoll.wait(&mut buf, 1000).unwrap();
        assert_eq!(ready.len(), 1);
        let (token, events) = {
            let ev = ready[0];
            (ev.token, ev.events)
        };
        assert_eq!(token, 7);
        assert!(events & EPOLLIN != 0);

        pipe.drain();
        assert!(epoll.wait(&mut buf, 0).unwrap().is_empty());
    }

    #[test]
    fn epoll_watches_socket_readiness() {
        use std::io::Write as _;
        use std::os::unix::io::AsRawFd;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let epoll = Epoll::new().unwrap();
        epoll.add(listener.as_raw_fd(), EPOLLIN, 1).unwrap();

        let mut client = std::net::TcpStream::connect(addr).unwrap();
        let mut buf = [EpollEvent {
            events: 0,
            token: 0,
        }; 4];
        let ready = epoll.wait(&mut buf, 2000).unwrap();
        assert!(ready.iter().any(|e| e.token == 1));

        let (server_side, _) = listener.accept().unwrap();
        epoll
            .add(server_side.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 2)
            .unwrap();
        client.write_all(b"ping").unwrap();
        let ready = epoll.wait(&mut buf, 2000).unwrap();
        assert!(ready
            .iter()
            .any(|e| e.token == 2 && e.events & EPOLLIN != 0));

        epoll.delete(server_side.as_raw_fd()).unwrap();
        epoll.delete(listener.as_raw_fd()).unwrap();
    }
}
