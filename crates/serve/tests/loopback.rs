//! End-to-end serving test: train a quick reduce sweep, save a bundle,
//! serve it on an ephemeral loopback port, and check that the HTTP answers
//! agree with in-memory predictions to the last bit while the metrics
//! counters track every request.

use bf_serve::{ModelBundle, PredictServer, ServeConfig};
use blackforest::{BlackForest, ModelConfig, Workload};
use gpu_sim::GpuConfig;
use serde::Deserialize;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

#[derive(Debug, Deserialize)]
struct PredictBody {
    predicted_ms: f64,
    characteristics: Vec<f64>,
    counters: Vec<(String, f64)>,
    cached: bool,
}

/// A one-shot HTTP client: sends one request on a fresh connection with
/// `Connection: close` and returns `(status, head, body)`.
fn roundtrip_full(addr: SocketAddr, request_head: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let raw = format!(
        "{request_head}\r\nHost: loopback\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let (head, payload) = response
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    (status, head, payload)
}

fn roundtrip(addr: SocketAddr, request_head: &str, body: &str) -> (u16, String) {
    let (status, _, payload) = roundtrip_full(addr, request_head, body);
    (status, payload)
}

/// The `X-BF-Trace-Id` value out of a response head.
fn trace_id(head: &str) -> String {
    head.lines()
        .find_map(|l| l.strip_prefix("X-BF-Trace-Id: "))
        .unwrap_or_else(|| panic!("response has no X-BF-Trace-Id header:\n{head}"))
        .to_string()
}

fn post_predict(addr: SocketAddr, body: &str) -> (u16, String) {
    roundtrip(addr, "POST /predict HTTP/1.1", body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    roundtrip(addr, &format!("GET {path} HTTP/1.1"), "")
}

/// Pulls `name{labels} value` or `name value` out of a metrics exposition.
fn metric(text: &str, needle: &str) -> u64 {
    text.lines()
        .find(|l| l.starts_with(needle))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {needle} missing"))
}

#[test]
fn loopback_predictions_match_in_memory_bit_for_bit() {
    // Train a quick reduce sweep and bundle it.
    let gpu = GpuConfig::gtx580();
    let bf = BlackForest::new(gpu.clone()).with_config(ModelConfig::quick(77));
    let sizes: Vec<usize> = (12..=15).map(|e| 1usize << e).collect();
    let report = bf
        .analyze(
            Workload::Reduce(bf_kernels::reduce::ReduceVariant::Reduce1),
            &sizes,
        )
        .expect("train quick reduce sweep");
    let bundle = ModelBundle::from_report(&report, &gpu, &sizes, true);

    let dir = std::env::temp_dir().join("bf_serve_loopback");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("reduce1.bundle.json");
    bundle.save(&path).expect("save bundle");
    let loaded = ModelBundle::load(&path).expect("load bundle");

    // Serve the loaded bundle on an ephemeral port.
    let server = PredictServer::bind(
        "127.0.0.1:0",
        loaded.clone(),
        ServeConfig {
            threads: 4,
            cache_capacity: 64,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let (handle, join) = server.spawn();
    let addr = handle.addr();

    // Health first. Every response carries a distinct request trace id.
    let (status, head, health) = roundtrip_full(addr, "GET /healthz HTTP/1.1", "");
    assert_eq!(status, 200, "{health}");
    assert!(health.contains("\"workload\":\"reduce1\""), "{health}");
    let first_id = trace_id(&head);
    assert!(first_id.starts_with("bf-"), "{first_id}");
    let (_, head2, _) = roundtrip_full(addr, "GET /healthz HTTP/1.1", "");
    let second_id = trace_id(&head2);
    assert_ne!(first_id, second_id, "trace ids must be per-request");

    // Served predictions agree with the in-memory chain bit-for-bit.
    for (size, threads) in [(4096.0, 64.0), (8192.0, 256.0), (20000.0, 512.0)] {
        let (status, body) = post_predict(
            addr,
            &format!("{{\"workload\": \"reduce1\", \"size\": {size}, \"threads\": {threads}}}"),
        );
        assert_eq!(status, 200, "{body}");
        let parsed: PredictBody = serde_json::from_str(&body).expect("predict body json");
        assert_eq!(parsed.characteristics, vec![size, threads]);
        let expected = report.predictor.predict(&[size, threads]).unwrap();
        assert_eq!(
            parsed.predicted_ms.to_bits(),
            expected.to_bits(),
            "served {} vs in-memory {expected}",
            parsed.predicted_ms
        );
        assert!(!parsed.counters.is_empty());
        assert!(!parsed.cached);
    }

    // The same query again is a cache hit with an identical answer.
    let (_, first) = post_predict(addr, "{\"size\": 4096, \"threads\": 64}");
    let parsed: PredictBody = serde_json::from_str(&first).unwrap();
    assert!(parsed.cached, "repeat query should hit the LRU");
    let expected = report.predictor.predict(&[4096.0, 64.0]).unwrap();
    assert_eq!(parsed.predicted_ms.to_bits(), expected.to_bits());

    // Bottleneck endpoint serves the bundled findings.
    let (status, bn) = get(addr, "/bottleneck?k=3");
    assert_eq!(status, 200);
    assert!(bn.contains("\"findings\""), "{bn}");

    // Bad queries are 4xx, not crashes — and still carry a trace id.
    let (status, head, _) = roundtrip_full(addr, "POST /predict HTTP/1.1", "{not json");
    assert_eq!(status, 400);
    assert!(trace_id(&head).starts_with("bf-"));
    assert_eq!(post_predict(addr, "{}").0, 400);
    assert_eq!(post_predict(addr, "{\"size\": -1}").0, 422);
    assert_eq!(
        post_predict(addr, "{\"size\": 4096, \"workload\": \"matmul\"}").0,
        422
    );
    assert_eq!(
        post_predict(addr, "{\"size\": 4096, \"gpu\": \"k20m\"}").0,
        422
    );
    assert_eq!(get(addr, "/nope").0, 404);

    // Metrics advanced and the counters are consistent: 3 fresh predicts +
    // 1 cached repeat + 5 rejected bodies all hit the predict route.
    let (status, m) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let predict_requests = metric(&m, "bf_requests_total{route=\"predict\"}");
    assert_eq!(predict_requests, 9, "{m}");
    let hits = metric(&m, "bf_prediction_cache_hits_total");
    let misses = metric(&m, "bf_prediction_cache_misses_total");
    assert_eq!(hits, 1);
    assert_eq!(misses, 3);
    // 2xx so far: 2× healthz + 4 successful predicts + bottleneck.
    assert_eq!(metric(&m, "bf_responses_total{class=\"2xx\"}"), 7);
    assert_eq!(metric(&m, "bf_responses_total{class=\"4xx\"}"), 6); // 5 bodies + 404
    assert!(metric(&m, "bf_request_latency_us_bucket{le=\"+Inf\"}") >= 9);

    // Per-phase histograms: every predict request is parsed (9), but only
    // the 4 that validated reach the forest and get serialized.
    assert_eq!(metric(&m, "bf_phase_latency_us_count{phase=\"parse\"}"), 9);
    assert_eq!(
        metric(&m, "bf_phase_latency_us_count{phase=\"predict\"}"),
        4
    );
    assert_eq!(
        metric(&m, "bf_phase_latency_us_count{phase=\"serialize\"}"),
        4
    );

    handle.stop();
    join.join().expect("server thread exits cleanly");
    std::fs::remove_file(path).ok();
}

#[test]
fn sustains_a_thousand_sequential_predictions_with_zero_errors() {
    let gpu = GpuConfig::gtx580();
    let bf = BlackForest::new(gpu.clone()).with_config(ModelConfig::quick(78));
    let sizes: Vec<usize> = (2..=12).map(|k| k * 16).collect();
    let report = bf.analyze(Workload::MatMul, &sizes).expect("train matmul");
    let bundle = ModelBundle::from_report(&report, &gpu, &sizes, true);

    let server = PredictServer::bind(
        "127.0.0.1:0",
        bundle,
        ServeConfig {
            threads: 2,
            cache_capacity: 256,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let (handle, join) = server.spawn();
    let addr = handle.addr();

    const N: usize = 1000;
    let mut errors = 0usize;
    for i in 0..N {
        // 128 distinct sizes, so most queries are LRU hits.
        let size = 32 + (i % 128) * 2;
        let (status, body) = post_predict(addr, &format!("{{\"size\": {size}}}"));
        if status != 200 {
            errors += 1;
            eprintln!("request {i} failed: {status} {body}");
        }
    }
    assert_eq!(errors, 0, "all {N} sequential predictions must succeed");

    let (status, m) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert_eq!(metric(&m, "bf_requests_total{route=\"predict\"}"), N as u64);
    let hits = metric(&m, "bf_prediction_cache_hits_total");
    let misses = metric(&m, "bf_prediction_cache_misses_total");
    assert_eq!(hits + misses, N as u64, "every predict hits the cache path");
    assert_eq!(misses, 128, "one miss per distinct size");
    // A scrape is counted only after its body has rendered, so this
    // exposition covers exactly the N predictions plus nothing else.
    assert_eq!(metric(&m, "bf_responses_total{class=\"2xx\"}"), N as u64);

    handle.stop();
    join.join().expect("server thread exits cleanly");
}
