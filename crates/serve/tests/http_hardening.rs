//! Property tests hardening the HTTP request parser.
//!
//! The event loop feeds [`RequestParser`] whatever byte chunks the kernel
//! hands it — attacker-controlled content, split at arbitrary boundaries.
//! These properties pin the safety contract: no panics on any input, only
//! the documented status codes on rejection, size bounds enforced *before*
//! body allocation, and chunking-invariant parses of valid requests.

use bf_serve::http::{Request, RequestParser, MAX_BODY_BYTES, MAX_HEAD_BYTES};
use proptest::prelude::*;

/// Statuses the parser is allowed to produce; anything else is a bug.
const PARSER_STATUSES: &[u16] = &[400, 413, 431, 501, 505];

/// Drives a parser over `bytes` split into `chunk`-sized pieces, collecting
/// complete requests until exhaustion or the first error.
fn drive(bytes: &[u8], chunk: usize) -> Result<Vec<Request>, u16> {
    let mut parser = RequestParser::new();
    let mut out = Vec::new();
    for piece in bytes.chunks(chunk.max(1)) {
        parser.push(piece);
        loop {
            match parser.next_request() {
                Ok(Some(req)) => out.push(req),
                Ok(None) => break,
                Err(e) => return Err(e.status),
            }
        }
    }
    Ok(out)
}

/// Renders a well-formed request from generated parts.
fn render(path_seed: &[u8], body: &[u8], extra_header: bool) -> Vec<u8> {
    // Path charset restricted to bytes that survive the request-line split.
    let path: String = path_seed
        .iter()
        .map(|b| char::from(b'a' + (b % 26)))
        .collect();
    let mut raw = format!("POST /{path} HTTP/1.1\r\nHost: t\r\n");
    if extra_header {
        raw.push_str("X-Extra: v\r\n");
    }
    raw.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    let mut bytes = raw.into_bytes();
    bytes.extend_from_slice(body);
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes at arbitrary chunkings never panic, and any
    /// rejection uses one of the documented status codes.
    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in prop::collection::vec(any::<u8>(), 0..768),
        chunk in 1usize..96,
    ) {
        match drive(&bytes, chunk) {
            Ok(_) => {}
            Err(status) => prop_assert!(
                PARSER_STATUSES.contains(&status),
                "undocumented status {status}"
            ),
        }
    }

    /// A valid request parses identically no matter where the reads split,
    /// and pipelining a second request behind it yields both.
    #[test]
    fn valid_requests_parse_under_any_split(
        path_seed in prop::collection::vec(any::<u8>(), 1..24),
        body in prop::collection::vec(any::<u8>(), 0..200),
        extra in any::<u8>(),
        chunk in 1usize..64,
    ) {
        let mut bytes = render(&path_seed, &body, extra.is_multiple_of(2));
        bytes.extend_from_slice(b"GET /healthz HTTP/1.1\r\n\r\n");
        let got = drive(&bytes, chunk).expect("valid request rejected");
        prop_assert_eq!(got.len(), 2);
        prop_assert_eq!(&got[0].method, "POST");
        prop_assert_eq!(&got[0].body, &body);
        prop_assert_eq!(&got[1].path, "/healthz");
    }

    /// Truncating a valid request anywhere short of its end yields no
    /// request and no error — just "need more bytes" and a partial flag.
    #[test]
    fn truncated_requests_stay_pending(
        path_seed in prop::collection::vec(any::<u8>(), 1..16),
        body in prop::collection::vec(any::<u8>(), 1..120),
        cut_seed in any::<u64>(),
    ) {
        let bytes = render(&path_seed, &body, false);
        let cut = 1 + (cut_seed as usize) % (bytes.len() - 1);
        let mut parser = RequestParser::new();
        parser.push(&bytes[..cut]);
        let r = parser.next_request();
        prop_assert!(matches!(r, Ok(None)), "truncated parse produced {r:?}");
        prop_assert!(parser.has_partial());
        // Feeding the rest completes it.
        parser.push(&bytes[cut..]);
        let req = parser.next_request().unwrap().expect("completion failed");
        prop_assert_eq!(&req.body, &body);
        prop_assert!(!parser.has_partial());
    }

    /// Oversized declared bodies are rejected with 413 as soon as the head
    /// completes — regardless of chunking, and before any body bytes arrive
    /// (the declared length is never allocated).
    #[test]
    fn oversized_content_length_is_413_before_body_bytes(
        excess in 1usize..(1 << 20),
        chunk in 1usize..64,
    ) {
        let head = format!(
            "POST /p HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + excess
        );
        prop_assert!(matches!(drive(head.as_bytes(), chunk), Err(413)));
    }

    /// Heads that never terminate are cut off with 431 once past the cap.
    #[test]
    fn unterminated_heads_are_431(
        filler in prop::collection::vec(97u8..123, 64..256),
        chunk in 7usize..64,
    ) {
        let mut bytes = b"GET /x HTTP/1.1\r\n".to_vec();
        while bytes.len() <= MAX_HEAD_BYTES + 1 {
            bytes.extend_from_slice(&filler);
            bytes.extend_from_slice(b": v\r\n"); // valid headers, no blank line
        }
        prop_assert!(matches!(drive(&bytes, chunk), Err(431)));
    }

    /// Header lines without a colon are 400 under any chunking.
    #[test]
    fn malformed_header_lines_are_400(
        junk in prop::collection::vec(97u8..123, 1..32),
        chunk in 1usize..32,
    ) {
        let mut bytes = b"GET /x HTTP/1.1\r\n".to_vec();
        bytes.extend_from_slice(&junk); // letters only: no ':' possible
        bytes.extend_from_slice(b"\r\n\r\n");
        prop_assert!(matches!(drive(&bytes, chunk), Err(400)));
    }
}
