//! Production-behaviour e2e tests for the event-loop serving engine:
//! keep-alive reuse, pipelining, batched prediction bit-equality,
//! admission-control 429s, graceful drain, and cache-key canonicalization
//! — all against a real socket, complementing `loopback.rs` (which pins
//! the metric accounting and single-request correctness).

#![cfg(target_os = "linux")]

use bf_serve::{ModelBundle, PredictServer, ServeConfig, ServeMode};
use blackforest::toolchain::AnalysisReport;
use blackforest::{BlackForest, ModelConfig, Workload};
use gpu_sim::GpuConfig;
use serde::Deserialize;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

#[derive(Debug, Deserialize)]
struct PredictBody {
    predicted_ms: f64,
    characteristics: Vec<f64>,
    cached: bool,
}

/// One quick trained reduce bundle shared by every test in this binary
/// (training dominates test wall-clock; the server under test is cheap).
fn trained() -> &'static (ModelBundle, AnalysisReport) {
    static TRAINED: OnceLock<(ModelBundle, AnalysisReport)> = OnceLock::new();
    TRAINED.get_or_init(|| {
        let gpu = GpuConfig::gtx580();
        let bf = BlackForest::new(gpu.clone()).with_config(ModelConfig::quick(79));
        let sizes: Vec<usize> = (12..=15).map(|e| 1usize << e).collect();
        let report = bf
            .analyze(
                Workload::Reduce(bf_kernels::reduce::ReduceVariant::Reduce1),
                &sizes,
            )
            .expect("train quick reduce sweep");
        let bundle = ModelBundle::from_report(&report, &gpu, &sizes, true);
        (bundle, report)
    })
}

fn spawn_server(config: ServeConfig) -> (bf_serve::ServerHandle, std::thread::JoinHandle<()>) {
    let (bundle, _) = trained();
    let server = PredictServer::bind("127.0.0.1:0", bundle.clone(), config).expect("bind");
    server.spawn()
}

fn predict_request(body: &str, close: bool) -> String {
    let conn = if close { "Connection: close\r\n" } else { "" };
    format!(
        "POST /predict HTTP/1.1\r\nHost: loopback\r\n{conn}Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

/// Reads one HTTP/1.1 response (headers + Content-Length body) off a
/// keep-alive connection. Returns `(status, headers, body)`.
fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, String, String) {
    let mut head = String::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read header line");
        assert!(
            n > 0,
            "connection closed mid-response; head so far:\n{head}"
        );
        if line == "\r\n" {
            break;
        }
        head.push_str(&line);
    }
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length header")
        .trim()
        .parse()
        .expect("numeric content length");
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).expect("read body");
    (status, head, String::from_utf8(body).expect("utf-8 body"))
}

/// One-shot request on a fresh `Connection: close` socket.
fn oneshot(addr: SocketAddr, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(predict_request(body, true).as_bytes())
        .expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .unwrap();
    let (head, payload) = response
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    (status, head, payload)
}

fn metric(text: &str, needle: &str) -> u64 {
    text.lines()
        .find(|l| l.starts_with(needle))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {needle} missing"))
}

fn scrape_metrics(addr: SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: l\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
        .split_once("\r\n\r\n")
        .expect("metrics body")
        .1
        .to_string()
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let (handle, join) = spawn_server(ServeConfig::default());
    let addr = handle.addr();
    let (_, report) = trained();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for i in 0..20 {
        let size = 4096.0 + (i * 64) as f64;
        let body = format!("{{\"size\": {size}, \"threads\": 64}}");
        stream
            .write_all(predict_request(&body, false).as_bytes())
            .expect("write");
        let (status, head, payload) = read_response(&mut reader);
        assert_eq!(status, 200, "{payload}");
        assert!(
            !head.contains("Connection: close"),
            "keep-alive response must not close: {head}"
        );
        let parsed: PredictBody = serde_json::from_str(&payload).unwrap();
        let expected = report.predictor.predict(&[size, 64.0]).unwrap();
        assert_eq!(parsed.predicted_ms.to_bits(), expected.to_bits());
    }

    handle.stop();
    join.join().expect("server exits");
}

#[test]
fn pipelined_requests_come_back_in_order() {
    let (handle, join) = spawn_server(ServeConfig::default());
    let addr = handle.addr();

    // Fire all requests before reading any response. Distinct sizes let us
    // verify that response order matches request order exactly.
    let sizes: Vec<f64> = (0..12).map(|i| 2048.0 + (i * 128) as f64).collect();
    let mut wire = String::new();
    for size in &sizes {
        wire.push_str(&predict_request(
            &format!("{{\"size\": {size}, \"threads\": 64}}"),
            false,
        ));
    }
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(wire.as_bytes()).expect("write pipeline");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for size in &sizes {
        let (status, _, payload) = read_response(&mut reader);
        assert_eq!(status, 200, "{payload}");
        let parsed: PredictBody = serde_json::from_str(&payload).unwrap();
        assert_eq!(
            parsed.characteristics[0], *size,
            "pipelined responses must preserve request order"
        );
    }

    handle.stop();
    join.join().expect("server exits");
}

#[test]
fn batched_predictions_match_singles_bit_for_bit() {
    let (handle, join) = spawn_server(ServeConfig::default());
    let addr = handle.addr();
    let (_, report) = trained();

    let sizes: Vec<f64> = (0..8).map(|i| 3000.0 + (i * 500) as f64).collect();
    let batch_body = format!(
        "[{}]",
        sizes
            .iter()
            .map(|s| format!("{{\"size\": {s}, \"threads\": 128}}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let (status, _, payload) = oneshot(addr, &batch_body);
    assert_eq!(status, 200, "{payload}");
    let batched: Vec<PredictBody> = serde_json::from_str(&payload).expect("array response");
    assert_eq!(batched.len(), sizes.len());

    for (size, from_batch) in sizes.iter().zip(&batched) {
        // Bit-identical to the in-memory chain...
        let expected = report.predictor.predict(&[*size, 128.0]).unwrap();
        assert_eq!(
            from_batch.predicted_ms.to_bits(),
            expected.to_bits(),
            "batched prediction for size {size} diverges from in-memory"
        );
        // ...and to a standalone single-query round-trip.
        let (status, _, single) = oneshot(addr, &format!("{{\"size\": {size}, \"threads\": 128}}"));
        assert_eq!(status, 200);
        let single: PredictBody = serde_json::from_str(&single).unwrap();
        assert_eq!(
            single.predicted_ms.to_bits(),
            from_batch.predicted_ms.to_bits()
        );
    }

    // Batch-size histogram saw an 8-row batch.
    let m = scrape_metrics(addr);
    assert!(
        metric(&m, "bf_predict_batch_rows_bucket{le=\"8\"}") >= 1,
        "{m}"
    );
    assert!(metric(&m, "bf_predict_batch_rows_sum") >= 8);

    // An empty batch is a 400, not a panic or an empty 200.
    let (status, _, err) = oneshot(addr, "[]");
    assert_eq!(status, 400, "{err}");

    handle.stop();
    join.join().expect("server exits");
}

#[test]
fn saturated_queue_answers_429_with_retry_after() {
    // One worker, an admission bound of one in-flight prediction, and a
    // long batch window: the first request parks in the worker's coalesce
    // wait, so a second concurrent request must be rejected fast.
    let (handle, join) = spawn_server(ServeConfig {
        threads: 1,
        max_queue: 1,
        batch_window: Duration::from_millis(400),
        mode: ServeMode::EventLoop,
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    let mut first = TcpStream::connect(addr).expect("connect");
    first
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    first
        .write_all(predict_request("{\"size\": 4096, \"threads\": 64}", true).as_bytes())
        .unwrap();
    // Give the loop time to admit the first job into the (now-full) queue.
    std::thread::sleep(Duration::from_millis(150));

    let started = Instant::now();
    let (status, head, body) = oneshot(addr, "{\"size\": 8192, \"threads\": 64}");
    let rejected_in = started.elapsed();
    assert_eq!(status, 429, "{body}");
    assert!(
        head.lines().any(|l| l == "Retry-After: 1"),
        "429 must carry Retry-After: {head}"
    );
    assert!(
        rejected_in < Duration::from_millis(250),
        "rejection must not wait out the batch window (took {rejected_in:?})"
    );

    // The admitted request still completes normally.
    let mut response = String::new();
    first.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");

    let m = scrape_metrics(addr);
    assert_eq!(metric(&m, "bf_queue_rejections_total"), 1, "{m}");
    assert_eq!(
        metric(&m, "bf_queue_depth"),
        0,
        "queue drains after completion"
    );
    assert_eq!(metric(&m, "bf_responses_total{class=\"4xx\"}"), 1, "{m}");

    handle.stop();
    join.join().expect("server exits");
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    // A long batch window holds the job inside the worker when stop()
    // lands, so the drain path must finish executing work and flush the
    // response before the listener thread exits.
    let (handle, join) = spawn_server(ServeConfig {
        threads: 1,
        batch_window: Duration::from_millis(500),
        mode: ServeMode::EventLoop,
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    let (_, report) = trained();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(predict_request("{\"size\": 6144, \"threads\": 64}", true).as_bytes())
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));
    handle.stop();

    // The in-flight prediction is answered, complete and correct, even
    // though shutdown began while it was queued.
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    let payload = response.split_once("\r\n\r\n").unwrap().1;
    let parsed: PredictBody = serde_json::from_str(payload).unwrap();
    let expected = report.predictor.predict(&[6144.0, 64.0]).unwrap();
    assert_eq!(parsed.predicted_ms.to_bits(), expected.to_bits());

    join.join().expect("server drains and exits");
}

#[test]
fn non_finite_characteristics_are_422_and_negative_zero_shares_the_cache_slot() {
    let (handle, join) = spawn_server(ServeConfig::default());
    let addr = handle.addr();

    // JSON `1e999` overflows to +inf at parse time; the server must refuse
    // it before it can poison the bit-pattern cache key.
    let (status, _, body) = oneshot(addr, "{\"characteristics\": [1e999, 64.0]}");
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("finite"), "{body}");
    let (status, _, body) = oneshot(addr, "{\"characteristics\": [4096.0, -1e999]}");
    assert_eq!(status, 422, "{body}");

    // -0.0 and 0.0 compare equal at every tree split, so they must share
    // one cache entry: the second query is a hit, not a fresh miss.
    let (status, _, first) = oneshot(addr, "{\"characteristics\": [4096.0, -0.0]}");
    assert_eq!(status, 200, "{first}");
    let first: PredictBody = serde_json::from_str(&first).unwrap();
    assert!(!first.cached);
    let (status, _, second) = oneshot(addr, "{\"characteristics\": [4096.0, 0.0]}");
    assert_eq!(status, 200, "{second}");
    let second: PredictBody = serde_json::from_str(&second).unwrap();
    assert!(second.cached, "0.0 must hit the entry keyed by -0.0");
    assert_eq!(first.predicted_ms.to_bits(), second.predicted_ms.to_bits());

    handle.stop();
    join.join().expect("server exits");
}
