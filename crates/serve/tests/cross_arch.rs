//! Cross-architecture serving tests over real zoo bundles: a model trained
//! on one GPU generation promoted as `default` for another generation's
//! fingerprint must 409 until forced (the force path must actually serve),
//! a `gpu`-pinned query against the wrong bundle must 422, and a shadow
//! pair spanning two architectures must *report* its divergence instead of
//! erroring. Unlike the synthetic fingerprint-XOR cases in
//! `registry_reload.rs`, both bundles here are genuinely trained — Fermi
//! (line-tagged L1) vs Pascal (sector-tagged L1) — so the fingerprints,
//! architecture tags, and predictions differ for real reasons.

#![cfg(target_os = "linux")]

use bf_serve::{AliasUpdate, ModelBundle, PredictServer, Registry, ServeConfig, ShadowReport};
use blackforest::{BlackForest, ModelConfig, Workload};
use gpu_sim::GpuConfig;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// One quick reduce1 bundle per memory-path extreme of the zoo: GTX580
/// (Fermi) and GTX1080 (Pascal), same workload and sweep so the
/// characteristic schemas match (a legal shadow pair) while the GPU
/// fingerprints and architectures differ.
fn bundles() -> &'static (ModelBundle, ModelBundle) {
    static TRAINED: OnceLock<(ModelBundle, ModelBundle)> = OnceLock::new();
    TRAINED.get_or_init(|| {
        let sizes: Vec<usize> = (12..=15).map(|e| 1usize << e).collect();
        let workload = Workload::Reduce(bf_kernels::reduce::ReduceVariant::Reduce1);
        let train = |gpu: GpuConfig| {
            let bf = BlackForest::new(gpu.clone()).with_config(ModelConfig::quick(91));
            let report = bf.analyze(workload, &sizes).expect("train quick bundle");
            ModelBundle::from_report(&report, &gpu, &sizes, true)
        };
        let fermi = train(GpuConfig::gtx580());
        let pascal = train(GpuConfig::gtx1080());
        assert_eq!(fermi.gpu_arch, "fermi");
        assert_eq!(pascal.gpu_arch, "pascal");
        assert_ne!(
            fermi.gpu_fingerprint, pascal.gpu_fingerprint,
            "different zoo GPUs must fingerprint differently"
        );
        assert_eq!(
            fermi.characteristics, pascal.characteristics,
            "same workload: schemas must match so only the GPU differs"
        );
        (fermi, pascal)
    })
}

fn oneshot(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: loopback\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .unwrap();
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}

fn serve_default(
    bundle: &ModelBundle,
    config: ServeConfig,
) -> (bf_serve::ServerHandle, std::thread::JoinHandle<()>, u64) {
    let registry = Arc::new(Registry::new());
    let id = registry.load_bundle(bundle.clone()).expect("load");
    registry
        .set_alias(AliasUpdate {
            alias: "default".into(),
            id: Some(id),
            create: true,
            ..AliasUpdate::default()
        })
        .expect("alias");
    let server = PredictServer::bind_registry("127.0.0.1:0", registry, config).expect("bind");
    let (handle, join) = server.spawn();
    (handle, join, id)
}

/// Promoting the Pascal-trained bundle over a Fermi-serving `default` is a
/// 409 that names both real fingerprints; `force` completes the swap and
/// the server then answers with the Pascal model, refusing `gpu`-pinned
/// queries for the old GPU with a 422.
#[test]
fn cross_arch_promotion_is_409_until_forced_then_serves() {
    let (fermi, pascal) = bundles();
    let (handle, join, _fermi_id) = serve_default(
        fermi,
        ServeConfig {
            admin: true,
            ..ServeConfig::default()
        },
    );
    let addr = handle.addr();
    let pascal_id = handle
        .registry()
        .load_bundle(pascal.clone())
        .expect("load pascal bundle");

    // Un-forced swap across generations: refused, both fingerprints named.
    let (status, body) = oneshot(
        addr,
        "POST",
        "/v1/models/alias",
        &format!("{{\"alias\": \"default\", \"id\": \"{pascal_id:016x}\"}}"),
    );
    assert_eq!(status, 409, "{body}");
    assert!(body.contains("fingerprint"), "{body}");
    assert!(
        body.contains(&format!("{:#x}", fermi.gpu_fingerprint))
            && body.contains(&format!("{:#x}", pascal.gpu_fingerprint)),
        "409 must name both real fingerprints: {body}"
    );

    // Force path: the swap lands and the very next predict is Pascal's.
    let (status, body) = oneshot(
        addr,
        "POST",
        "/v1/models/alias",
        &format!("{{\"alias\": \"default\", \"id\": \"{pascal_id:016x}\", \"force\": true}}"),
    );
    assert_eq!(status, 200, "{body}");
    let (status, body) = oneshot(
        addr,
        "POST",
        "/predict",
        "{\"size\": 8192, \"threads\": 128}",
    );
    assert_eq!(status, 200, "{body}");
    assert!(
        body.contains(&format!("{pascal_id:016x}")),
        "forced swap must actually serve the cross-arch model: {body}"
    );

    // A query pinned to the old GPU is refused with the trained GPU named;
    // pinned to the new GPU it answers.
    let (status, body) = oneshot(
        addr,
        "POST",
        "/predict",
        "{\"size\": 8192, \"threads\": 128, \"gpu\": \"gtx580\"}",
    );
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("GTX1080"), "{body}");
    let (status, body) = oneshot(
        addr,
        "POST",
        "/predict",
        "{\"size\": 8192, \"threads\": 128, \"gpu\": \"gtx1080\"}",
    );
    assert_eq!(status, 200, "{body}");

    handle.stop();
    join.join().expect("server exits");
}

/// A Pascal shadow behind a Fermi primary replays cleanly: zero errors,
/// every row scored, and the architectural gap shows up as divergence in
/// the report rather than as a failure.
#[test]
fn cross_arch_shadow_reports_divergence_without_errors() {
    let (fermi, pascal) = bundles();
    let (handle, join, fermi_id) = serve_default(fermi, ServeConfig::default());
    let addr = handle.addr();
    let registry = handle.registry();
    let pascal_id = registry
        .load_bundle(pascal.clone())
        .expect("load pascal bundle");
    // Attaching a shadow checks schema compatibility only — architectures
    // may differ; that is the point of shadowing a hardware migration.
    registry
        .set_alias(AliasUpdate {
            alias: "default".into(),
            shadow: Some(pascal_id),
            ..AliasUpdate::default()
        })
        .expect("attach cross-arch shadow");

    let n_requests = 10u64;
    for i in 0..n_requests {
        let q = format!("{{\"size\": {}, \"threads\": 128}}", 4096 + i * 256);
        let (status, body) = oneshot(addr, "POST", "/predict", &q);
        assert_eq!(status, 200, "{body}");
        assert!(
            body.contains(&format!("{fermi_id:016x}")),
            "primary must keep serving while the shadow replays: {body}"
        );
    }

    let deadline = Instant::now() + Duration::from_secs(10);
    let report: ShadowReport = loop {
        let (status, body) = oneshot(addr, "GET", "/v1/models/shadow/report", "");
        assert_eq!(status, 200, "{body}");
        let report: ShadowReport = serde_json::from_str(&body).expect("report decodes");
        if report.requests + report.dropped >= n_requests {
            break report;
        }
        assert!(Instant::now() < deadline, "shadow never caught up: {body}");
        std::thread::sleep(Duration::from_millis(25));
    };
    assert_eq!(
        report.errors, 0,
        "cross-arch replay must score, not error: {report:?}"
    );
    assert!(report.requests > 0, "{report:?}");
    assert!(
        report.max_rel_delta > 0.0,
        "Fermi vs Pascal trainings must genuinely diverge: {report:?}"
    );
    assert!(
        report
            .pairs
            .keys()
            .any(|k| k.contains(&format!("{pascal_id:016x}"))),
        "pairing must name the cross-arch shadow: {report:?}"
    );

    handle.stop();
    join.join().expect("server exits");
}
