//! E2e tests for the model registry behind the event-loop server:
//! readiness gating, zero-downtime hot reload under sustained keep-alive
//! load (zero failed requests, every answer bit-identical to exactly one
//! of the two bundles, drain completes), admin API guards (403/404/409),
//! per-model cache scoping across swaps, and shadow replay reporting —
//! all over a real socket.

#![cfg(target_os = "linux")]

use bf_serve::{
    AliasUpdate, ModelBundle, ModelsReport, PredictServer, Registry, ServeConfig, ShadowReport,
};
use blackforest::{BlackForest, ModelConfig, Workload};
use gpu_sim::GpuConfig;
use serde::Deserialize;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

#[derive(Debug, Deserialize)]
struct PredictBody {
    predicted_ms: f64,
    model: String,
    cached: bool,
}

/// Two distinct quick reduce1 bundles on the same GPU (same fingerprint,
/// same characteristic schema — a legal hot-swap pair), trained once for
/// the whole binary. Different seeds grow different forests, so the two
/// models answer the same query with different bits.
fn bundles() -> &'static (ModelBundle, ModelBundle) {
    static TRAINED: OnceLock<(ModelBundle, ModelBundle)> = OnceLock::new();
    TRAINED.get_or_init(|| {
        let gpu = GpuConfig::gtx580();
        let sizes: Vec<usize> = (12..=15).map(|e| 1usize << e).collect();
        let workload = Workload::Reduce(bf_kernels::reduce::ReduceVariant::Reduce1);
        let mut out = Vec::new();
        for seed in [81u64, 82] {
            let bf = BlackForest::new(gpu.clone()).with_config(ModelConfig::quick(seed));
            let report = bf.analyze(workload, &sizes).expect("train quick bundle");
            out.push(ModelBundle::from_report(&report, &gpu, &sizes, true));
        }
        let b = out.pop().unwrap();
        let a = out.pop().unwrap();
        assert_ne!(
            a.content_id(),
            b.content_id(),
            "fixture needs two distinct models"
        );
        (a, b)
    })
}

fn spawn_with(
    registry: Arc<Registry>,
    config: ServeConfig,
) -> (bf_serve::ServerHandle, std::thread::JoinHandle<()>) {
    let server = PredictServer::bind_registry("127.0.0.1:0", registry, config).expect("bind");
    server.spawn()
}

fn request(method: &str, path: &str, body: &str, close: bool) -> String {
    let conn = if close { "Connection: close\r\n" } else { "" };
    format!(
        "{method} {path} HTTP/1.1\r\nHost: loopback\r\n{conn}Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

/// One-shot request on a fresh `Connection: close` socket.
fn oneshot(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(request(method, path, body, true).as_bytes())
        .expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .unwrap();
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}

/// Reads one HTTP/1.1 response off a keep-alive connection.
fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, String) {
    let mut head = String::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read header line");
        assert!(
            n > 0,
            "connection closed mid-response; head so far:\n{head}"
        );
        if line == "\r\n" {
            break;
        }
        head.push_str(&line);
    }
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length header")
        .trim()
        .parse()
        .expect("numeric content length");
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).expect("read body");
    (status, String::from_utf8(body).expect("utf-8 body"))
}

fn models_report(addr: SocketAddr) -> ModelsReport {
    let (status, body) = oneshot(addr, "GET", "/v1/models", "");
    assert_eq!(status, 200, "{body}");
    serde_json::from_str(&body).expect("models report decodes")
}

fn registry_with_default(bundle: &ModelBundle) -> (Arc<Registry>, u64) {
    let registry = Arc::new(Registry::new());
    let id = registry.load_bundle(bundle.clone()).expect("load");
    registry
        .set_alias(AliasUpdate {
            alias: "default".into(),
            id: Some(id),
            create: true,
            ..AliasUpdate::default()
        })
        .expect("alias");
    (registry, id)
}

#[test]
fn readyz_is_503_until_the_default_alias_is_published() {
    // Bind over an EMPTY registry: the socket answers, but nothing can
    // predict yet.
    let registry = Arc::new(Registry::new());
    let (handle, join) = spawn_with(Arc::clone(&registry), ServeConfig::default());
    let addr = handle.addr();

    let (status, body) = oneshot(addr, "GET", "/readyz", "");
    assert_eq!(status, 503, "not ready before any bundle: {body}");
    assert!(body.contains("\"ready\":false"), "{body}");
    let (status, _) = oneshot(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "liveness is independent of readiness");
    let (status, body) = oneshot(addr, "POST", "/predict", "{\"size\": 4096}");
    assert_eq!(status, 503, "predict without a default is 503: {body}");

    // Publish a default through the live server's registry handle; the
    // very next probe must flip to ready.
    let (a, _) = bundles();
    let id = handle.registry().load_bundle(a.clone()).expect("load");
    handle
        .registry()
        .set_alias(AliasUpdate {
            alias: "default".into(),
            id: Some(id),
            create: true,
            ..AliasUpdate::default()
        })
        .expect("alias");
    let (status, body) = oneshot(addr, "GET", "/readyz", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains(&format!("{id:016x}")), "{body}");
    let (status, _) = oneshot(
        addr,
        "POST",
        "/predict",
        "{\"size\": 4096, \"threads\": 64}",
    );
    assert_eq!(status, 200);

    handle.stop();
    join.join().expect("server exits");
}

#[test]
fn hot_reload_under_load_never_fails_or_mixes_models() {
    let (a, b) = bundles();
    let (registry, id_a) = registry_with_default(a);
    let id_b = registry.load_bundle(b.clone()).expect("load b");
    let (handle, join) = spawn_with(
        registry,
        ServeConfig {
            admin: true,
            ..ServeConfig::default()
        },
    );
    let addr = handle.addr();

    // Ground truth: per size, the exact bits each model must answer with.
    let sizes: Vec<f64> = (0..16).map(|i| 2048.0 + (i * 256) as f64).collect();
    let mut expected: HashMap<String, HashMap<u64, u64>> = HashMap::new();
    for (hex, bundle) in [(format!("{id_a:016x}"), a), (format!("{id_b:016x}"), b)] {
        let per_size = sizes
            .iter()
            .map(|s| {
                let chars = bundle.characteristics_for(*s, Some(64.0), None).unwrap();
                (
                    s.to_bits(),
                    bundle.predict(&chars).unwrap().predicted_ms.to_bits(),
                )
            })
            .collect();
        expected.insert(hex, per_size);
    }
    let expected = Arc::new(expected);

    // Sustained keep-alive traffic from several clients while the main
    // thread promotes `default` back and forth over the admin API.
    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let stop = Arc::clone(&stop);
            let expected = Arc::clone(&expected);
            let sizes = sizes.clone();
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut served: HashMap<String, u64> = HashMap::new();
                let mut i = c; // stagger the size sequence per client
                while !stop.load(Ordering::Relaxed) {
                    let size = sizes[i % sizes.len()];
                    i += 1;
                    let body = format!("{{\"size\": {size}, \"threads\": 64}}");
                    stream
                        .write_all(request("POST", "/predict", &body, false).as_bytes())
                        .expect("write");
                    let (status, payload) = read_response(&mut reader);
                    assert_eq!(status, 200, "request failed during hot reload: {payload}");
                    let parsed: PredictBody = serde_json::from_str(&payload).unwrap();
                    let per_size = expected
                        .get(&parsed.model)
                        .unwrap_or_else(|| panic!("answered by unknown model {}", parsed.model));
                    assert_eq!(
                        parsed.predicted_ms.to_bits(),
                        per_size[&size.to_bits()],
                        "size {size} answer is not bit-identical to model {}",
                        parsed.model
                    );
                    *served.entry(parsed.model).or_default() += 1;
                }
                served
            })
        })
        .collect();

    // ~40 live promotions through the routed admin endpoint.
    for swap in 0..40 {
        let id = if swap % 2 == 0 { id_b } else { id_a };
        let body = format!("{{\"alias\": \"default\", \"id\": \"{id:016x}\"}}");
        let (status, payload) = oneshot(addr, "POST", "/v1/models/alias", &body);
        assert_eq!(status, 200, "live promotion failed: {payload}");
        std::thread::sleep(Duration::from_millis(15));
    }
    stop.store(true, Ordering::Relaxed);
    let mut served: HashMap<String, u64> = HashMap::new();
    for client in clients {
        for (model, n) in client.join().expect("client thread") {
            *served.entry(model).or_default() += n;
        }
    }
    assert_eq!(
        served.len(),
        2,
        "both models must have answered: {served:?}"
    );
    assert!(
        served.values().all(|&n| n > 0),
        "swap was never observed: {served:?}"
    );

    // Retire the standby (default currently points at a after 40 swaps):
    // with no load, its references drain to zero.
    let (status, payload) = oneshot(
        addr,
        "POST",
        "/v1/models/unload",
        &format!("{{\"id\": \"{id_b:016x}\"}}"),
    );
    assert_eq!(status, 200, "{payload}");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let report = models_report(addr);
        if report.draining.is_empty() {
            assert!(
                report.models.iter().all(|m| m.id != format!("{id_b:016x}")),
                "unloaded model must leave the inventory"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "drain never completed: {report:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    handle.stop();
    join.join().expect("server exits");
}

#[test]
fn admin_api_is_403_without_the_flag_and_409_on_bad_swaps() {
    let (a, _) = bundles();
    // Admin off: the mutating routes are forbidden, with a pointer to the
    // flag, and nothing changes.
    let (registry, _) = registry_with_default(a);
    let (handle, join) = spawn_with(registry, ServeConfig::default());
    let addr = handle.addr();
    let (status, body) = oneshot(
        addr,
        "POST",
        "/v1/models/alias",
        "{\"alias\": \"default\", \"create\": true}",
    );
    assert_eq!(status, 403, "{body}");
    assert!(body.contains("--admin"), "{body}");
    handle.stop();
    join.join().expect("server exits");

    // Admin on: structured failures map to their statuses.
    let (registry, id_a) = registry_with_default(a);
    // A same-schema model claiming a different training GPU: the
    // fingerprint guard must refuse to swap it in without force.
    let mut foreign = a.clone();
    foreign.gpu_fingerprint ^= 1;
    foreign.gpu_name = "gtx580-altered".into();
    let foreign_id = registry.load_bundle(foreign).expect("load foreign");
    let (handle, join) = spawn_with(
        registry,
        ServeConfig {
            admin: true,
            ..ServeConfig::default()
        },
    );
    let addr = handle.addr();

    // Unknown alias without create: 409 names the alias.
    let (status, body) = oneshot(
        addr,
        "POST",
        "/v1/models/alias",
        &format!("{{\"alias\": \"canary\", \"id\": \"{id_a:016x}\"}}"),
    );
    assert_eq!(status, 409, "{body}");
    assert!(body.contains("canary"), "{body}");

    // Fingerprint mismatch: 409 spells out both fingerprints...
    let (status, body) = oneshot(
        addr,
        "POST",
        "/v1/models/alias",
        &format!("{{\"alias\": \"default\", \"id\": \"{foreign_id:016x}\"}}"),
    );
    assert_eq!(status, 409, "{body}");
    assert!(body.contains("fingerprint"), "{body}");
    // ...and force overrides it.
    let (status, body) = oneshot(
        addr,
        "POST",
        "/v1/models/alias",
        &format!("{{\"alias\": \"default\", \"id\": \"{foreign_id:016x}\", \"force\": true}}"),
    );
    assert_eq!(status, 200, "{body}");

    // Unknown model: 404. Malformed id: 400. Unload while aliased: 409.
    let (status, body) = oneshot(
        addr,
        "POST",
        "/v1/models/alias",
        "{\"alias\": \"default\", \"id\": \"00000000000000aa\"}",
    );
    assert_eq!(status, 404, "{body}");
    let (status, body) = oneshot(addr, "POST", "/v1/models/unload", "{\"id\": \"nonsense\"}");
    assert_eq!(status, 400, "{body}");
    let (status, body) = oneshot(
        addr,
        "POST",
        "/v1/models/unload",
        &format!("{{\"id\": \"{foreign_id:016x}\"}}"),
    );
    assert_eq!(
        status, 409,
        "unloading the live primary must refuse: {body}"
    );
    assert!(body.contains("default"), "{body}");

    handle.stop();
    join.join().expect("server exits");
}

#[test]
fn prediction_cache_is_scoped_per_model_across_swaps() {
    let (a, b) = bundles();
    let (registry, _) = registry_with_default(a);
    let id_b = registry.load_bundle(b.clone()).expect("load b");
    // A tiny cache so evictions are observable per model.
    let (handle, join) = spawn_with(
        Arc::clone(&registry),
        ServeConfig {
            cache_capacity: 2,
            ..ServeConfig::default()
        },
    );
    let addr = handle.addr();

    let body = "{\"size\": 5120, \"threads\": 64}";
    let (_, first) = oneshot(addr, "POST", "/predict", body);
    let first: PredictBody = serde_json::from_str(&first).unwrap();
    assert!(!first.cached);
    let (_, again) = oneshot(addr, "POST", "/predict", body);
    let again: PredictBody = serde_json::from_str(&again).unwrap();
    assert!(again.cached, "same model, same query: cache hit");

    // Swap default to model b: the identical query MUST miss (the key
    // carries the resolved content id) and answer with b's bits.
    registry
        .set_alias(AliasUpdate {
            alias: "default".into(),
            id: Some(id_b),
            ..AliasUpdate::default()
        })
        .expect("promote b");
    let (_, after) = oneshot(addr, "POST", "/predict", body);
    let after: PredictBody = serde_json::from_str(&after).unwrap();
    assert_eq!(after.model, format!("{id_b:016x}"));
    assert!(
        !after.cached,
        "a swap must never surface the old model's cached prediction"
    );
    assert_ne!(
        after.predicted_ms.to_bits(),
        first.predicted_ms.to_bits(),
        "fixture models must disagree on this query"
    );

    // Overflow the 2-entry cache on model b and check the per-model
    // eviction counter shows up on /metrics.
    for size in [6144, 7168, 8192] {
        let q = format!("{{\"size\": {size}, \"threads\": 64}}");
        let (status, _) = oneshot(addr, "POST", "/predict", &q);
        assert_eq!(status, 200);
    }
    let (status, metrics) = oneshot(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let needle = "bf_cache_evictions_total{model=\"";
    assert!(
        metrics.lines().any(|l| l.starts_with(needle)),
        "per-model eviction counter missing:\n{metrics}"
    );

    handle.stop();
    join.join().expect("server exits");
}

#[test]
fn shadow_replay_populates_the_report_and_metrics() {
    let (a, b) = bundles();
    let (registry, _) = registry_with_default(a);
    let id_b = registry.load_bundle(b.clone()).expect("load b");
    registry
        .set_alias(AliasUpdate {
            alias: "default".into(),
            shadow: Some(id_b),
            ..AliasUpdate::default()
        })
        .expect("attach shadow");
    let (handle, join) = spawn_with(registry, ServeConfig::default());
    let addr = handle.addr();

    let n_requests = 12;
    for i in 0..n_requests {
        let q = format!("{{\"size\": {}, \"threads\": 64}}", 2048 + i * 128);
        let (status, _) = oneshot(addr, "POST", "/predict", &q);
        assert_eq!(status, 200);
    }

    // The replay is asynchronous; poll the HTTP report until it catches up.
    let deadline = Instant::now() + Duration::from_secs(10);
    let report: ShadowReport = loop {
        let (status, body) = oneshot(addr, "GET", "/v1/models/shadow/report", "");
        assert_eq!(status, 200, "{body}");
        let report: ShadowReport = serde_json::from_str(&body).expect("report decodes");
        if report.requests + report.dropped >= n_requests {
            break report;
        }
        assert!(Instant::now() < deadline, "shadow never caught up: {body}");
        std::thread::sleep(Duration::from_millis(25));
    };
    assert!(report.requests > 0, "{report:?}");
    assert_eq!(report.errors, 0, "{report:?}");
    let per_workload = report
        .per_workload
        .get("reduce1")
        .expect("per-workload breakdown carries the primary's workload");
    assert!(per_workload.rows > 0);
    assert!(
        report.max_rel_delta > 0.0,
        "distinct fixture models must diverge: {report:?}"
    );
    assert!(
        !report.pairs.is_empty(),
        "primary->shadow pairing missing: {report:?}"
    );

    let (_, metrics) = oneshot(addr, "GET", "/metrics", "");
    let replayed: u64 = metrics
        .lines()
        .find(|l| l.starts_with("bf_shadow_requests_total "))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .expect("bf_shadow_requests_total exported");
    assert!(replayed > 0, "{metrics}");

    handle.stop();
    join.join().expect("server exits");
}
