//! `blackforest` — the command-line front-end of the toolchain.
//!
//! Subcommands (run with no arguments for usage):
//!
//! * `gpus` — list the available GPU presets.
//! * `counters [--gpu NAME]` — list the counter catalogue (Table 1).
//! * `collect --workload W [--gpu NAME] [--out FILE]` — run the profiling
//!   sweep and write the dataset as CSV.
//! * `analyze --workload W [--gpu NAME]` — full pipeline: collect, model,
//!   bottleneck report.
//! * `predict --workload W --size N [--gpu NAME]` — problem-scaling
//!   prediction for an unseen size.
//! * `models [--addr HOST:PORT]` — query a running server's model
//!   registry (`GET /v1/models`).
//! * `lint --workload W [--format json] [--oracle]` — static analysis with
//!   clippy-style diagnostics; no simulation unless `--oracle` is given.

use bf_analyze::Severity;
use bf_serve::{AliasUpdate, ModelBundle, PredictServer, Registry, ServeConfig};
use blackforest::collect::CollectOptions;
use blackforest::model::ModelConfig;
use blackforest::{BlackForest, SplitStrategy, Workload};
use gpu_sim::GpuConfig;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
blackforest - bottleneck analysis and performance prediction for GPU kernels

USAGE:
    blackforest <COMMAND> [OPTIONS]

COMMANDS:
    gpus                         list GPU presets
    counters [--gpu NAME]        list hardware performance counters
    collect  --workload W [--gpu NAME] [--out FILE] [--quick]
    analyze  --workload W [--gpu NAME] [--quick]
    train    --workload W --save BUNDLE.json [--gpu NAME] [--quick]
    serve    --model BUNDLE.json [--shadow BUNDLE.json] [--admin]
             [--addr HOST:PORT] [--threads N] [--cache-size N]
             [--mode event-loop|threads] [--max-queue N] [--batch-window USEC]
    models   [--addr HOST:PORT]  query a running server's model registry
    predict  --size N (--model BUNDLE.json | --workload W) [--gpu NAME] [--quick]
    hwscale  --workload W [--target NAME] [--quick] [--out FILE]
    lint     --workload W [--gpu NAME] [--format text|json] [--oracle]
             [--blocks] [--what-if --model BUNDLE.json]
             [--fail-on SEV] [--out FILE] [--quick]

    Every command also accepts --timing and --trace-out FILE.

WORKLOADS:
    reduce0..reduce6, matmul, nw, stencil

OPTIONS:
    --gpu NAME      gtx580 (default) or any zoo preset: gtx480, gtx680,
                    k20m, gtx750ti, gtx980, gtx1080, p100, titanv, v100
    --target NAME   hwscale prints only this held-out target's rows (the
                    sweep itself always holds out every zoo GPU in turn)
    --out FILE      output path (collect: CSV; train: alias of --save)
    --save FILE     where train writes the model bundle (versioned JSON)
    --size N        problem size to predict (predict)
    --model FILE    a bundle from `train --save`: predict answers offline
                    from it (no re-profiling), serve exposes it over HTTP
    --shadow FILE   serve also loads this bundle as the shadow of the
                    default alias: every /predict is asynchronously
                    replayed against it off the hot path, and the paired
                    predictions feed the divergence report at
                    GET /v1/models/shadow/report (and bf_shadow_* metrics)
    --admin         serve enables the mutating admin API
                    (POST /v1/models/load|unload|alias); off by default
    --addr H:P      serve listen address (default 127.0.0.1:7878);
                    for models: the server to query
    --cache-size N  serve prediction-LRU capacity in entries (default 4096)
    --mode M        serving engine: event-loop (nonblocking epoll with
                    keep-alive, pipelining, and adaptive micro-batching;
                    default on Linux) or threads (legacy blocking pool,
                    default elsewhere)
    --max-queue N   serve admission bound on in-flight predictions; excess
                    concurrent requests get 429 + Retry-After (default 1024)
    --batch-window USEC  how long the event-loop workers wait to coalesce
                    concurrent predictions into one forest batch, in
                    microseconds (default 0: no artificial delay, batches
                    grow naturally with backlog)
    --quick         smaller sweep and forest (faster)
    --format F      lint output format: text (default) or json
    --oracle        lint also diffs static predictions against the dynamic
                    simulator (differential oracle; costs one simulation
                    per launch, divergence is a BF-E002 error)
    --blocks        lint attributes counters to basic blocks: warnings get
                    block-level spans ranked by attributed cost, the report
                    gains a hot-block table and a conservation check
                    (violations are BF-E003 errors), and the JSON schema
                    moves to version 2
    --what-if       lint prices each applicable fix (conflict-free shared
                    offsets, coalesced global addresses, converged
                    branches) through the --model bundle and ranks fixes
                    by predicted time saved; requires --model
    --fail-on SEV   lowest severity that makes lint exit non-zero:
                    info, warning, or error (default). Errors always fail.
    --static-features   collect also appends static_* predictor columns
                    (occupancy, conflict degree, coalescing, intensity)
    --split-strategy S   forest split search: histogram (default) or exact
    --max-bins N    histogram bin ceiling per feature, 2..=65536 (default 256)
    --threads N     worker threads: simulation workers during collection,
                    HTTP workers for serve (default: all cores)
    --no-sim-cache  disable the launch-memoization cache (always re-simulate)
    --sim-cache-dir D   persist simulated launch results in directory D and
                    reuse them across runs (D may be `auto` for
                    ~/.cache/blackforest/simcache); shorthand for the
                    BF_SIM_CACHE_DIR environment variable
    --timing        print a per-phase timing summary (span count/total/
                    mean/max plus counters) after the command finishes
    --trace-out F   write a Chrome-tracing JSON trace of the run to F
                    (open in chrome://tracing or https://ui.perfetto.dev)

SERVING:
    train writes a self-contained model bundle (forest + counter models +
    GPU fingerprint + sweep metadata). serve fronts a hot-reloadable model
    registry with it: POST /predict (the `default` alias), per-model
    POST /v1/models/{id-or-alias}/predict, GET /v1/models, GET /bottleneck,
    GET /healthz, GET /readyz, and GET /metrics; predictions are
    bit-identical to the in-process chain. With --admin, bundles can be
    loaded and aliases swapped at runtime with zero downtime. Example:

        blackforest train --workload reduce1 --quick --save reduce1.json
        blackforest serve --model reduce1.json --addr 127.0.0.1:7878 &
        curl -s -X POST 127.0.0.1:7878/predict -d '{\"size\": 65536}'
        curl -s -X POST 127.0.0.1:7878/predict \\
             -d '[{\"size\": 65536}, {\"size\": 131072}]'
        blackforest models --addr 127.0.0.1:7878

    POST /predict also accepts a JSON array and answers with an array of
    predictions in the same order (one HTTP round-trip, one forest pass).

Launch simulation is deterministic: --threads, --no-sim-cache, and
--sim-cache-dir change wall-clock time only, never a collected value.
During collection the flags are shorthands for the RAYON_NUM_THREADS,
BF_SIM_CACHE=0, and BF_SIM_CACHE_DIR environment variables.
";

struct Args {
    command: String,
    workload: Option<String>,
    gpu: String,
    out: Option<PathBuf>,
    save: Option<PathBuf>,
    model: Option<PathBuf>,
    shadow: Option<PathBuf>,
    admin: bool,
    size: Option<f64>,
    target: Option<String>,
    addr: Option<String>,
    cache_size: Option<usize>,
    serve_mode: Option<String>,
    max_queue: Option<usize>,
    batch_window_us: Option<u64>,
    quick: bool,
    split_strategy: Option<String>,
    max_bins: Option<usize>,
    threads: Option<usize>,
    no_sim_cache: bool,
    sim_cache_dir: Option<String>,
    format: Option<String>,
    oracle: bool,
    blocks: bool,
    what_if: bool,
    fail_on: Option<String>,
    static_features: bool,
    timing: bool,
    trace_out: Option<PathBuf>,
}

impl Args {
    /// Resolves `--split-strategy`/`--max-bins` into a forest strategy.
    fn split_strategy(&self) -> Result<SplitStrategy, String> {
        match self.split_strategy.as_deref() {
            None | Some("histogram") => Ok(SplitStrategy::Histogram {
                max_bins: self.max_bins.unwrap_or(256),
            }),
            Some("exact") => {
                if self.max_bins.is_some() {
                    return Err("--max-bins only applies to --split-strategy histogram".into());
                }
                Ok(SplitStrategy::Exact)
            }
            Some(other) => Err(format!(
                "unknown split strategy {other}; use histogram or exact"
            )),
        }
    }
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        command: argv.first().cloned().ok_or("missing command")?,
        workload: None,
        gpu: "gtx580".into(),
        out: None,
        save: None,
        model: None,
        shadow: None,
        admin: false,
        size: None,
        target: None,
        addr: None,
        cache_size: None,
        serve_mode: None,
        max_queue: None,
        batch_window_us: None,
        quick: false,
        split_strategy: None,
        max_bins: None,
        threads: None,
        no_sim_cache: false,
        sim_cache_dir: None,
        format: None,
        oracle: false,
        blocks: false,
        what_if: false,
        fail_on: None,
        static_features: false,
        timing: false,
        trace_out: None,
    };
    let mut it = argv[1..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--workload" => {
                args.workload = Some(it.next().ok_or("--workload needs a value")?.clone())
            }
            "--gpu" => args.gpu = it.next().ok_or("--gpu needs a value")?.clone(),
            "--out" => args.out = Some(PathBuf::from(it.next().ok_or("--out needs a value")?)),
            "--save" => args.save = Some(PathBuf::from(it.next().ok_or("--save needs a value")?)),
            "--addr" => args.addr = Some(it.next().ok_or("--addr needs a value")?.clone()),
            "--cache-size" => {
                let n: usize = it
                    .next()
                    .ok_or("--cache-size needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --cache-size: {e}"))?;
                if n == 0 {
                    return Err("--cache-size must be at least 1".into());
                }
                args.cache_size = Some(n);
            }
            "--mode" => args.serve_mode = Some(it.next().ok_or("--mode needs a value")?.clone()),
            "--max-queue" => {
                let n: usize = it
                    .next()
                    .ok_or("--max-queue needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --max-queue: {e}"))?;
                if n == 0 {
                    return Err("--max-queue must be at least 1".into());
                }
                args.max_queue = Some(n);
            }
            "--batch-window" => {
                args.batch_window_us = Some(
                    it.next()
                        .ok_or("--batch-window needs a value (microseconds)")?
                        .parse()
                        .map_err(|e| format!("bad --batch-window: {e}"))?,
                )
            }
            "--model" => {
                args.model = Some(PathBuf::from(it.next().ok_or("--model needs a value")?))
            }
            "--shadow" => {
                args.shadow = Some(PathBuf::from(it.next().ok_or("--shadow needs a value")?))
            }
            "--admin" => args.admin = true,
            "--target" => args.target = Some(it.next().ok_or("--target needs a value")?.clone()),
            "--size" => {
                args.size = Some(
                    it.next()
                        .ok_or("--size needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --size: {e}"))?,
                )
            }
            "--quick" => args.quick = true,
            "--split-strategy" => {
                args.split_strategy =
                    Some(it.next().ok_or("--split-strategy needs a value")?.clone())
            }
            "--max-bins" => {
                args.max_bins = Some(
                    it.next()
                        .ok_or("--max-bins needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --max-bins: {e}"))?,
                )
            }
            "--threads" => {
                let n: usize = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                args.threads = Some(n);
            }
            "--no-sim-cache" => args.no_sim_cache = true,
            "--sim-cache-dir" => {
                args.sim_cache_dir = Some(it.next().ok_or("--sim-cache-dir needs a value")?.clone())
            }
            "--format" => args.format = Some(it.next().ok_or("--format needs a value")?.clone()),
            "--oracle" => args.oracle = true,
            "--blocks" => args.blocks = true,
            "--what-if" => args.what_if = true,
            "--fail-on" => args.fail_on = Some(it.next().ok_or("--fail-on needs a value")?.clone()),
            "--static-features" => args.static_features = true,
            "--timing" => args.timing = true,
            "--trace-out" => {
                args.trace_out = Some(PathBuf::from(it.next().ok_or("--trace-out needs a value")?))
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(args)
}

// Every artifact writer (`collect --out`, `analyze --out`, `train --save`,
// `lint --out`, `--trace-out`) routes through the shared helper so a typo'd
// directory fails with a clear message *before* minutes of simulation, not
// with a bare OS error after them. The helper lives in the core crate so
// the benchmark bins and the server share the same behaviour.
use blackforest::artifact::{resolve_out_path, write_artifact};

fn gpu_by_name(name: &str) -> Result<GpuConfig, String> {
    GpuConfig::by_name(name).ok_or_else(|| format!("unknown GPU {name}; try `blackforest gpus`"))
}

fn workload_by_name(name: &str) -> Result<Workload, String> {
    Workload::from_name(name).ok_or_else(|| format!("unknown workload {name}"))
}

/// Loads a bundle, rendering loader failures as CLI errors (missing file,
/// not-a-bundle, version mismatch each get their own message; all exit
/// non-zero).
fn load_bundle(path: &Path) -> Result<ModelBundle, String> {
    ModelBundle::load(path).map_err(|e| format!("--model {}: {e}", path.display()))
}

/// A one-shot HTTP GET against a BlackForest server (`models` subcommand).
/// `Connection: close` keeps the read loop trivial: everything after the
/// header block is the body.
fn http_get(addr: &str, path: &str) -> Result<String, String> {
    use std::io::{Read, Write};
    let sock_addr = bf_serve::parse_addr(addr)?;
    let mut stream =
        std::net::TcpStream::connect_timeout(&sock_addr, std::time::Duration::from_secs(5))
            .map_err(|e| format!("cannot connect to {addr}: {e} (is the server running?)"))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .ok();
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| format!("request to {addr} failed: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("reading answer from {addr}: {e}"))?;
    let text = String::from_utf8_lossy(&raw);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed HTTP answer from {addr}"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed HTTP status line from {addr}"))?;
    if status != 200 {
        return Err(format!("{addr}{path} answered {status}: {}", body.trim()));
    }
    Ok(body.to_string())
}

/// Default sweep of the primary problem characteristic per workload.
fn default_sizes(workload: Workload, quick: bool) -> Vec<usize> {
    match workload {
        Workload::Reduce(_) => {
            let hi = if quick { 18 } else { 21 };
            (14..=hi).map(|e| 1usize << e).collect()
        }
        Workload::MatMul => {
            let hi = if quick { 24 } else { 40 };
            (2..=hi).step_by(2).map(|k| k * 16).collect()
        }
        Workload::Nw => {
            let hi = if quick { 16 } else { 64 };
            (1..=hi).map(|k| k * 64).collect()
        }
        Workload::Stencil => {
            let hi = if quick { 16 } else { 48 };
            (2..=hi).step_by(2).map(|k| k * 16).collect()
        }
    }
}

fn toolchain(args: &Args) -> Result<BlackForest, String> {
    let gpu = gpu_by_name(&args.gpu)?;
    let split_strategy = args.split_strategy()?;
    let mut bf = BlackForest::new(gpu);
    bf.collect = CollectOptions::default().with_repetitions(3, 0.02);
    if args.quick {
        bf = bf.with_config(ModelConfig {
            split_strategy,
            ..ModelConfig::quick(2016)
        });
        bf.collect = CollectOptions::default();
    } else {
        bf = bf.with_config(ModelConfig {
            seed: 2016,
            split_strategy,
            ..ModelConfig::default()
        });
    }
    Ok(bf)
}

/// The static span name a command runs under when tracing is on (span
/// names aggregate by pointer-free `&'static str`, so the dynamic command
/// string maps onto a fixed vocabulary).
fn command_span_name(command: &str) -> &'static str {
    match command {
        "gpus" => "gpus",
        "counters" => "counters",
        "collect" => "collect_cmd",
        "analyze" => "analyze_cmd",
        "train" => "train",
        "serve" => "serve",
        "models" => "models",
        "predict" => "predict_cmd",
        "hwscale" => "hwscale",
        "lint" => "lint",
        _ => "command",
    }
}

fn run() -> Result<ExitCode, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        print!("{USAGE}");
        return Ok(ExitCode::SUCCESS);
    }
    let args = parse_args(&argv)?;
    // The simulator reads these per collection pass, so setting them here
    // (before any profiling starts) covers every subcommand.
    if let Some(n) = args.threads {
        std::env::set_var("RAYON_NUM_THREADS", n.to_string());
    }
    if args.no_sim_cache {
        std::env::set_var("BF_SIM_CACHE", "0");
    }
    if let Some(dir) = &args.sim_cache_dir {
        std::env::set_var("BF_SIM_CACHE_DIR", dir);
    }
    if !args.timing && args.trace_out.is_none() {
        return run_command(&args);
    }
    // Validate the trace destination before the (possibly long) run.
    let trace_out = args
        .trace_out
        .as_deref()
        .map(resolve_out_path)
        .transpose()?;
    bf_trace::enable();
    let result = {
        let _top = bf_trace::Span::enter(command_span_name(&args.command));
        run_command(&args)
    };
    bf_trace::disable();
    let trace = bf_trace::drain();
    if args.timing {
        print!("{}", trace.summary_table());
    }
    if let Some(path) = trace_out {
        std::fs::write(&path, trace.chrome_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!(
            "trace: {} spans written to {} (open in chrome://tracing)",
            trace.spans.len(),
            path.display()
        );
    }
    result
}

fn run_command(args: &Args) -> Result<ExitCode, String> {
    match args.command.as_str() {
        "gpus" => {
            for gpu in GpuConfig::presets() {
                println!(
                    "{:<8} {:?}: {} SMs x {} cores @ {} GHz, {} GB/s",
                    gpu.name,
                    gpu.arch,
                    gpu.num_sms,
                    gpu.cores_per_sm,
                    gpu.clock_ghz,
                    gpu.mem_bandwidth_gbps
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        "counters" => {
            let gpu = gpu_by_name(&args.gpu)?;
            for name in gpu_sim::counters::counters_for(gpu.arch) {
                let info = gpu_sim::counters::counter_info(name).unwrap();
                println!("{:<28} {}", info.name, info.meaning);
            }
            Ok(ExitCode::SUCCESS)
        }
        "collect" => {
            let workload =
                workload_by_name(args.workload.as_deref().ok_or("collect needs --workload")?)?;
            let mut bf = toolchain(args)?;
            bf.collect.include_static_features = args.static_features;
            let sizes = default_sizes(workload, args.quick);
            let ds = bf.collect(workload, &sizes).map_err(|e| e.to_string())?;
            let out = args
                .out
                .clone()
                .unwrap_or_else(|| PathBuf::from(format!("{}_{}.csv", workload.name(), args.gpu)));
            let out = resolve_out_path(&out)?;
            ds.write_csv(&out).map_err(|e| e.to_string())?;
            println!(
                "wrote {} runs x {} predictors to {}",
                ds.len(),
                ds.n_features(),
                out.display()
            );
            Ok(ExitCode::SUCCESS)
        }
        "analyze" => {
            let workload =
                workload_by_name(args.workload.as_deref().ok_or("analyze needs --workload")?)?;
            let bf = toolchain(args)?;
            let sizes = default_sizes(workload, args.quick);
            let report = bf.analyze(workload, &sizes).map_err(|e| e.to_string())?;
            println!("{}", report.render());
            if let Some(out) = &args.out {
                let md = blackforest::markdown::analysis_markdown(&report);
                write_artifact(out, &md)?;
                println!("markdown report written to {}", out.display());
            }
            Ok(ExitCode::SUCCESS)
        }
        "train" => {
            let workload =
                workload_by_name(args.workload.as_deref().ok_or("train needs --workload")?)?;
            let save = args
                .save
                .clone()
                .or_else(|| args.out.clone())
                .ok_or("train needs --save BUNDLE.json")?;
            let save = resolve_out_path(&save)?;
            let gpu = gpu_by_name(&args.gpu)?;
            let bf = toolchain(args)?;
            let sizes = default_sizes(workload, args.quick);
            let report = bf.analyze(workload, &sizes).map_err(|e| e.to_string())?;
            let bundle = ModelBundle::from_report(&report, &gpu, &sizes, args.quick);
            {
                let _span = bf_trace::span!("save_bundle");
                bundle.save(&save).map_err(|e| e.to_string())?;
            }
            println!(
                "trained {} on {} ({} runs, {} features); bundle v{} ({:016x}) written to {}",
                workload.name(),
                args.gpu,
                report.dataset.len(),
                report.dataset.n_features(),
                bundle.schema_version,
                bundle.content_id(),
                save.display()
            );
            Ok(ExitCode::SUCCESS)
        }
        "serve" => {
            let path = args
                .model
                .clone()
                .ok_or("serve needs --model BUNDLE.json")?;
            let addr = args.addr.clone().unwrap_or_else(|| "127.0.0.1:7878".into());
            // Validate eagerly so a bad --addr fails before we advertise.
            bf_serve::parse_addr(&addr)?;
            let mode = match args.serve_mode.as_deref() {
                None => bf_serve::ServeMode::default(),
                Some(name) => bf_serve::ServeMode::from_name(name)
                    .ok_or_else(|| format!("unknown --mode {name}; use event-loop or threads"))?,
            };
            let config = ServeConfig {
                threads: args.threads.unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                }),
                cache_capacity: args.cache_size.unwrap_or(4096),
                mode,
                max_queue: args.max_queue.unwrap_or(1024),
                batch_window: std::time::Duration::from_micros(args.batch_window_us.unwrap_or(0)),
                admin: args.admin,
                ..ServeConfig::default()
            };
            // Load + publish through a registry so --shadow can attach to
            // the default alias before the socket starts answering.
            let registry = std::sync::Arc::new(Registry::new());
            let id = registry
                .load_path(&path)
                .map_err(|e| format!("--model {}: {e}", path.display()))?;
            registry
                .set_alias(AliasUpdate {
                    alias: "default".into(),
                    id: Some(id),
                    create: true,
                    ..AliasUpdate::default()
                })
                .map_err(|e| e.to_string())?;
            let shadow_id = match &args.shadow {
                Some(shadow_path) => {
                    let sid = registry
                        .load_path(shadow_path)
                        .map_err(|e| format!("--shadow {}: {e}", shadow_path.display()))?;
                    registry
                        .set_alias(AliasUpdate {
                            alias: "default".into(),
                            shadow: Some(sid),
                            ..AliasUpdate::default()
                        })
                        .map_err(|e| format!("--shadow {}: {e}", shadow_path.display()))?;
                    Some(sid)
                }
                None => None,
            };
            let resolved = registry.resolve("default").map_err(|e| e.to_string())?;
            let (workload_name, gpu_name) = (
                resolved.model.bundle.workload.clone(),
                resolved.model.bundle.gpu_name.clone(),
            );
            let server = PredictServer::bind_registry(&addr, registry, config.clone())?;
            let local = server.local_addr();
            println!(
                "serving {workload_name} ({gpu_name}) bundle {} ({:016x}) on http://{local}  \
                 [{} engine, {} workers, cache {}, queue {}{}]",
                path.display(),
                id,
                config.mode.name(),
                config.threads,
                config.cache_capacity,
                config.max_queue,
                if config.admin { ", admin" } else { "" }
            );
            if let Some(sid) = shadow_id {
                println!(
                    "shadow: {} ({sid:016x}) replaying every default-alias prediction; \
                     report at GET /v1/models/shadow/report",
                    args.shadow.as_ref().unwrap().display()
                );
            }
            println!(
                "routes: POST /predict, POST /v1/models/{{id-or-alias}}/predict, \
                 GET /v1/models, GET /bottleneck, GET /healthz, GET /readyz, GET /metrics{}",
                if config.admin {
                    ", POST /v1/models/load|unload|alias"
                } else {
                    ""
                }
            );
            // Warm-start the persistent simulation cache (if configured) so
            // the index is loaded before the first request needs it.
            if let Some(disk) = gpu_sim::diskcache::from_env() {
                println!(
                    "sim disk cache: {} entries at {}",
                    disk.len(),
                    disk.path().display()
                );
            }
            server.run();
            Ok(ExitCode::SUCCESS)
        }
        "models" => {
            let addr = args.addr.clone().unwrap_or_else(|| "127.0.0.1:7878".into());
            let body = http_get(&addr, "/v1/models")?;
            let report: bf_serve::ModelsReport = serde_json::from_str(&body)
                .map_err(|e| format!("unexpected /v1/models answer from {addr}: {e}"))?;
            println!("registry at http://{addr} (epoch {})", report.epoch);
            println!("models:");
            for m in &report.models {
                println!(
                    "  {}  {:<8} {:<8} {:>3} trees  {:>8} reqs  {}",
                    m.id,
                    m.workload,
                    m.gpu,
                    m.trees,
                    m.served_requests,
                    m.source.as_deref().unwrap_or("-"),
                );
            }
            println!("aliases:");
            for a in &report.aliases {
                let mut extras = String::new();
                if let Some(split) = &a.split {
                    extras.push_str(&format!(
                        "  split {}% -> {}",
                        split.percent,
                        a.split_secondary.as_deref().unwrap_or("?")
                    ));
                }
                if let Some(shadow) = &a.shadow {
                    extras.push_str(&format!("  shadow {shadow}"));
                }
                println!("  {:<12} -> {}{extras}", a.alias, a.primary);
            }
            if !report.draining.is_empty() {
                println!("draining:");
                for d in &report.draining {
                    println!("  {}  {} live refs", d.id, d.refs);
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "predict" => {
            let size = args.size.ok_or("predict needs --size")?;
            let (predictor, characteristics, label) = match &args.model {
                Some(path) => {
                    let bundle = load_bundle(path)?;
                    if let Some(w) = args.workload.as_deref() {
                        let requested = workload_by_name(w)?;
                        if bundle.workload() != Some(requested) {
                            return Err(format!(
                                "--model {} was trained for workload {}, not {w}",
                                path.display(),
                                bundle.workload
                            ));
                        }
                    }
                    let chars = bundle
                        .characteristics_for(size, None, None)
                        .map_err(|e| e.to_string())?;
                    let label = format!("{} on {}", bundle.workload, bundle.gpu_name);
                    (bundle.predictor, chars, label)
                }
                None => {
                    let workload = workload_by_name(
                        args.workload
                            .as_deref()
                            .ok_or("predict needs --workload (or --model)")?,
                    )?;
                    let bf = toolchain(args)?;
                    let sizes = default_sizes(workload, args.quick);
                    let predictor = bf
                        .analyze(workload, &sizes)
                        .map_err(|e| e.to_string())?
                        .predictor;
                    let chars: Vec<f64> = workload
                        .characteristics()
                        .iter()
                        .enumerate()
                        .map(|(i, name)| {
                            if i == 0 {
                                Ok(size)
                            } else {
                                Workload::default_characteristic(name)
                                    .ok_or_else(|| format!("no default for characteristic {name}"))
                            }
                        })
                        .collect::<Result<_, String>>()?;
                    (
                        predictor,
                        chars,
                        format!("{} on {}", workload.name(), args.gpu),
                    )
                }
            };
            let t = predictor
                .predict(&characteristics)
                .map_err(|e| e.to_string())?;
            println!("{label}, size {size}: predicted execution time {t:.4} ms");
            Ok(ExitCode::SUCCESS)
        }
        "hwscale" => {
            let workload =
                workload_by_name(args.workload.as_deref().ok_or("hwscale needs --workload")?)?;
            if let Some(t) = &args.target {
                gpu_by_name(t)?;
            }
            let zoo = GpuConfig::presets();
            let sizes = default_sizes(workload, args.quick);
            let cfg = if args.quick {
                ModelConfig {
                    split_strategy: args.split_strategy()?,
                    ..ModelConfig::quick(2016)
                }
            } else {
                ModelConfig {
                    seed: 2016,
                    split_strategy: args.split_strategy()?,
                    ..ModelConfig::default()
                }
            };
            let report = blackforest::hwscale::sweep_scopes(
                workload,
                &sizes,
                &zoo,
                &cfg,
                blackforest::predict::HwFeatureStrategy::MixedImportance,
            )
            .map_err(|e| e.to_string())?;
            println!(
                "hardware-scaling scope sweep: {} across {} GPUs, {} architectures",
                report.workload,
                report.zoo.len(),
                report.architectures.len()
            );
            println!();
            print!("{}", blackforest::hwscale::curve_table(&report));
            println!();
            println!(
                "{:<16} {:<10} {:<9} {:>8} {:>8} {:>8}  sources",
                "scope", "target", "arch", "MAPE%", "R2", "overlap"
            );
            for e in report.evaluations.iter().filter(|e| {
                args.target
                    .as_deref()
                    .is_none_or(|t| e.target.eq_ignore_ascii_case(t))
            }) {
                println!(
                    "{:<16} {:<10} {:<9} {:>8.2} {:>8.3} {:>8.2}  {}",
                    e.scope,
                    e.target,
                    e.target_arch,
                    e.mape,
                    e.r_squared,
                    e.similarity,
                    e.sources.join(",")
                );
            }
            if let Some(out) = &args.out {
                let json = serde_json::to_string_pretty(&report)
                    .map_err(|e| format!("serialize hwscale report: {e}"))?;
                write_artifact(out, &json)?;
                println!("\nwrote {}", out.display());
            }
            Ok(ExitCode::SUCCESS)
        }
        "lint" => {
            let workload = args.workload.as_deref().ok_or("lint needs --workload")?;
            let gpu = gpu_by_name(&args.gpu)?;
            let fail_on = match args.fail_on.as_deref() {
                None => Severity::Error,
                Some(s) => Severity::parse(s)
                    .ok_or_else(|| format!("bad --fail-on {s}; use info, warning, or error"))?,
            };
            // What-if pricing needs a trained bundle; load and check it
            // against the linted workload before any analysis runs.
            let bundle = if args.what_if {
                let path = args
                    .model
                    .as_deref()
                    .ok_or("lint --what-if needs --model BUNDLE.json")?;
                let bundle = load_bundle(path)?;
                let requested = workload_by_name(workload)?;
                if bundle.workload() != Some(requested) {
                    return Err(format!(
                        "--model {} was trained for workload {}, not {workload}",
                        path.display(),
                        bundle.workload
                    ));
                }
                Some(bundle)
            } else {
                None
            };
            let cfg = bf_analyze::LintConfig {
                quick: args.quick,
                oracle: args.oracle,
                blocks: args.blocks,
                what_if: bundle.as_ref().map(|b| b as &dyn bf_analyze::WhatIfModel),
            };
            let report = bf_analyze::lint_workload_with(&gpu, workload, &cfg).ok_or_else(|| {
                format!(
                    "unknown lint workload {workload}; one of: {}",
                    bf_analyze::WORKLOADS.join(", ")
                )
            })?;
            let rendered = match args.format.as_deref() {
                None | Some("text") => bf_analyze::render_text(&report),
                Some("json") => report.to_json(),
                Some(other) => return Err(format!("unknown format {other}; use text or json")),
            };
            match &args.out {
                Some(path) => {
                    write_artifact(path, &rendered)?;
                    println!(
                        "lint report written to {} ({} errors, {} warnings, {} notes)",
                        path.display(),
                        report.summary.errors,
                        report.summary.warnings,
                        report.summary.info
                    );
                }
                None => print!("{rendered}"),
            }
            // Exit-code contract (documented in DESIGN.md): 3 for errors,
            // 2 when --fail-on pulls warnings/notes in, 0 otherwise; 1 is
            // reserved for usage/internal failures via main().
            Ok(match report.max_severity() {
                Some(Severity::Error) => ExitCode::from(3),
                Some(sev) if sev >= fail_on => ExitCode::from(2),
                _ => ExitCode::SUCCESS,
            })
        }
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other}\n\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_out_path_accepts_cwd_relative_files() {
        assert_eq!(
            resolve_out_path(Path::new("report.json")).unwrap(),
            PathBuf::from("report.json")
        );
    }

    #[test]
    fn resolve_out_path_accepts_existing_directories() {
        let dir = std::env::temp_dir();
        let path = dir.join("bf_cli_resolve_ok.json");
        assert_eq!(resolve_out_path(&path).unwrap(), path);
    }

    #[test]
    fn resolve_out_path_rejects_missing_parent_with_clear_error() {
        let path = Path::new("/definitely/not/a/real/dir/out.json");
        let err = resolve_out_path(path).unwrap_err();
        assert!(
            err.contains("does not exist") && err.contains("/definitely/not/a/real/dir"),
            "unhelpful error: {err}"
        );
    }

    #[test]
    fn resolve_out_path_rejects_directory_targets() {
        let err = resolve_out_path(&std::env::temp_dir()).unwrap_err();
        assert!(err.contains("is a directory"), "unhelpful error: {err}");
    }

    #[test]
    fn resolve_out_path_rejects_file_as_parent() {
        let file = std::env::temp_dir().join("bf_cli_parent_probe.txt");
        std::fs::write(&file, "x").unwrap();
        let err = resolve_out_path(&file.join("child.json")).unwrap_err();
        assert!(err.contains("not a directory"), "unhelpful error: {err}");
        std::fs::remove_file(&file).ok();
    }

    #[test]
    fn parse_args_reads_tracing_flags() {
        let argv: Vec<String> = ["train", "--timing", "--trace-out", "t.json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let args = parse_args(&argv).unwrap();
        assert!(args.timing);
        assert_eq!(args.trace_out.as_deref(), Some(Path::new("t.json")));
        assert_eq!(command_span_name(&args.command), "train");
    }

    #[test]
    fn trace_out_requires_a_value() {
        let argv: Vec<String> = ["train", "--trace-out"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(parse_args(&argv).is_err());
    }
}
