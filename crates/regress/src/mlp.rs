//! A small multilayer-perceptron regressor — the neural-network baseline.
//!
//! The paper justifies choosing random forests because they "usually
//! outperform the more traditional classification and regression
//! algorithms, such as support vector machine and neural networks,
//! especially for scarce training data" (citing Liaw & Wiener). This module
//! provides the neural side of that comparison: a single-hidden-layer MLP
//! with tanh activations trained by full-batch gradient descent with
//! momentum on standardized inputs/targets. Deliberately plain — the point
//! is a fair, classic baseline, not a deep-learning framework.

use crate::{RegressError, Result};
use serde::{Deserialize, Serialize};

/// MLP hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MlpParams {
    /// Hidden-layer width.
    pub hidden: usize,
    /// Gradient-descent steps.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// L2 weight decay.
    pub weight_decay: f64,
    /// RNG seed for weight initialisation.
    pub seed: u64,
}

impl Default for MlpParams {
    fn default() -> Self {
        MlpParams {
            hidden: 16,
            epochs: 4000,
            learning_rate: 0.02,
            momentum: 0.9,
            weight_decay: 1e-4,
            seed: 42,
        }
    }
}

/// A fitted MLP regressor (one tanh hidden layer, linear output).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MlpRegressor {
    w1: Vec<Vec<f64>>, // hidden x input
    b1: Vec<f64>,
    w2: Vec<f64>, // hidden
    b2: f64,
    x_mean: Vec<f64>,
    x_std: Vec<f64>,
    y_mean: f64,
    y_std: f64,
    /// Training R² after the final epoch.
    pub train_r_squared: f64,
}

/// Tiny deterministic RNG (splitmix64) for weight init, avoiding any
/// dependency surface in this crate.
struct SplitMix(u64);

impl SplitMix {
    fn next_f64(&mut self) -> f64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in [-a, a].
    fn sym(&mut self, a: f64) -> f64 {
        (self.next_f64() * 2.0 - 1.0) * a
    }
}

impl MlpRegressor {
    /// Trains the network on row-major observations.
    pub fn fit(x: &[Vec<f64>], y: &[f64], params: &MlpParams) -> Result<MlpRegressor> {
        if x.is_empty() || y.is_empty() || x.len() != y.len() {
            return Err(RegressError::BadTrainingData(
                "empty or mismatched input".into(),
            ));
        }
        let n = x.len();
        let p = x[0].len();
        if x.iter().any(|r| r.len() != p) {
            return Err(RegressError::BadTrainingData("ragged rows".into()));
        }
        // Standardize inputs and target (essential for tanh units).
        let mut x_mean = vec![0.0; p];
        let mut x_std = vec![0.0; p];
        for j in 0..p {
            let col: Vec<f64> = x.iter().map(|r| r[j]).collect();
            let m = col.iter().sum::<f64>() / n as f64;
            let v = col.iter().map(|&v| (v - m) * (v - m)).sum::<f64>() / n as f64;
            x_mean[j] = m;
            x_std[j] = v.sqrt().max(1e-12);
        }
        let y_mean = y.iter().sum::<f64>() / n as f64;
        let y_var = y.iter().map(|&v| (v - y_mean) * (v - y_mean)).sum::<f64>() / n as f64;
        let y_std = y_var.sqrt().max(1e-12);
        let xs: Vec<Vec<f64>> = x
            .iter()
            .map(|r| (0..p).map(|j| (r[j] - x_mean[j]) / x_std[j]).collect())
            .collect();
        let ys: Vec<f64> = y.iter().map(|&v| (v - y_mean) / y_std).collect();

        let h = params.hidden;
        let mut rng = SplitMix(params.seed ^ 0xD1B5_4A32_D192_ED03);
        let scale1 = (1.0 / p as f64).sqrt();
        let scale2 = (1.0 / h as f64).sqrt();
        let mut w1: Vec<Vec<f64>> = (0..h)
            .map(|_| (0..p).map(|_| rng.sym(scale1)).collect())
            .collect();
        let mut b1 = vec![0.0; h];
        let mut w2: Vec<f64> = (0..h).map(|_| rng.sym(scale2)).collect();
        let mut b2 = 0.0;
        // Momentum buffers.
        let mut vw1 = vec![vec![0.0; p]; h];
        let mut vb1 = vec![0.0; h];
        let mut vw2 = vec![0.0; h];
        let mut vb2 = 0.0;

        let mut hidden = vec![0.0; h];
        for _ in 0..params.epochs {
            // Accumulate full-batch gradients.
            let mut gw1 = vec![vec![0.0; p]; h];
            let mut gb1 = vec![0.0; h];
            let mut gw2 = vec![0.0; h];
            let mut gb2 = 0.0;
            for (row, &t) in xs.iter().zip(ys.iter()) {
                for k in 0..h {
                    let mut a = b1[k];
                    for j in 0..p {
                        a += w1[k][j] * row[j];
                    }
                    hidden[k] = a.tanh();
                }
                let out = b2
                    + w2.iter()
                        .zip(hidden.iter())
                        .map(|(w, h)| w * h)
                        .sum::<f64>();
                let err = out - t;
                gb2 += err;
                for k in 0..h {
                    gw2[k] += err * hidden[k];
                    let dh = err * w2[k] * (1.0 - hidden[k] * hidden[k]);
                    gb1[k] += dh;
                    for j in 0..p {
                        gw1[k][j] += dh * row[j];
                    }
                }
            }
            let lr = params.learning_rate / n as f64;
            let mu = params.momentum;
            let wd = params.weight_decay;
            for k in 0..h {
                for j in 0..p {
                    vw1[k][j] = mu * vw1[k][j] - lr * (gw1[k][j] + wd * w1[k][j]);
                    w1[k][j] += vw1[k][j];
                }
                vb1[k] = mu * vb1[k] - lr * gb1[k];
                b1[k] += vb1[k];
                vw2[k] = mu * vw2[k] - lr * (gw2[k] + wd * w2[k]);
                w2[k] += vw2[k];
            }
            vb2 = mu * vb2 - lr * gb2;
            b2 += vb2;
        }

        let mut model = MlpRegressor {
            w1,
            b1,
            w2,
            b2,
            x_mean,
            x_std,
            y_mean,
            y_std,
            train_r_squared: 0.0,
        };
        let pred: Vec<f64> = x.iter().map(|r| model.predict_row(r)).collect();
        let rss: f64 = pred
            .iter()
            .zip(y.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        let tss = y_var * n as f64;
        model.train_r_squared = if tss == 0.0 { 1.0 } else { 1.0 - rss / tss };
        Ok(model)
    }

    /// Predicts the response for one input row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let p = self.x_mean.len();
        let mut out = self.b2;
        for k in 0..self.w1.len() {
            let mut a = self.b1[k];
            for j in 0..p {
                a += self.w1[k][j] * (row[j] - self.x_mean[j]) / self.x_std[j];
            }
            out += self.w2[k] * a.tanh();
        }
        out * self.y_std + self.y_mean
    }

    /// Predicts a batch of rows.
    pub fn predict(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict_row(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_linear_function() {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| 3.0 * r[0] + 1.0).collect();
        let m = MlpRegressor::fit(&x, &y, &MlpParams::default()).unwrap();
        assert!(m.train_r_squared > 0.99, "r2 {}", m.train_r_squared);
        let p = m.predict_row(&[20.5]);
        assert!((p - 62.5).abs() < 3.0, "pred {p}");
    }

    #[test]
    fn learns_smooth_nonlinearity() {
        let x: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 6.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| (r[0]).sin() * 5.0).collect();
        let m = MlpRegressor::fit(
            &x,
            &y,
            &MlpParams {
                hidden: 24,
                epochs: 8000,
                ..MlpParams::default()
            },
        )
        .unwrap();
        assert!(m.train_r_squared > 0.95, "r2 {}", m.train_r_squared);
    }

    #[test]
    fn deterministic_given_seed() {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] * r[0]).collect();
        let m1 = MlpRegressor::fit(&x, &y, &MlpParams::default()).unwrap();
        let m2 = MlpRegressor::fit(&x, &y, &MlpParams::default()).unwrap();
        assert_eq!(m1.predict_row(&[7.0]), m2.predict_row(&[7.0]));
    }

    #[test]
    fn constant_target_is_learned() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y = vec![5.0; 20];
        let m = MlpRegressor::fit(&x, &y, &MlpParams::default()).unwrap();
        assert!((m.predict_row(&[3.0]) - 5.0).abs() < 0.5);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(MlpRegressor::fit(&[], &[], &MlpParams::default()).is_err());
        let ragged = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(MlpRegressor::fit(&ragged, &[1.0, 2.0], &MlpParams::default()).is_err());
    }

    #[test]
    fn constant_feature_does_not_nan() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 4.0]).collect();
        let y: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let m = MlpRegressor::fit(&x, &y, &MlpParams::default()).unwrap();
        assert!(m.predict_row(&[5.0, 4.0]).is_finite());
    }
}
