//! MARS — Multivariate Adaptive Regression Splines (Friedman 1991).
//!
//! The model (paper Eq. 4) is `f(x) = Σ c_i B_i(x)` where each basis
//! function `B_i` is the intercept, a hinge `max(0, x_j - c)` /
//! `max(0, c - x_j)`, or a product of hinges (interactions). The fit has two
//! phases:
//!
//! 1. **Forward pass** — greedily add the reflected hinge *pair* (parent
//!    basis × new hinge on a candidate knot) that most reduces the residual
//!    sum of squares, until the term budget is exhausted or the improvement
//!    stalls.
//! 2. **Backward pass** — prune terms one at a time, keeping the subset with
//!    the best generalized cross-validation (GCV) score.
//!
//! This mirrors R's `earth`, which the paper uses for the Needleman-Wunsch
//! counter models ("with average R-squared of 0.99").

use crate::{RegressError, Result};
use bf_linalg::{cholesky::solve_spd_ridge, Matrix};
use serde::{Deserialize, Serialize};

/// One hinge factor `max(0, ±(x_j - knot))`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Hinge {
    /// Input feature index.
    pub feature: usize,
    /// Knot location `c`.
    pub knot: f64,
    /// `true` for `max(0, x - c)`, `false` for `max(0, c - x)`.
    pub positive: bool,
}

impl Hinge {
    fn eval(&self, row: &[f64]) -> f64 {
        let d = row[self.feature] - self.knot;
        if self.positive {
            d.max(0.0)
        } else {
            (-d).max(0.0)
        }
    }
}

/// A MARS basis function: a product of hinges (empty product = intercept).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BasisFunction {
    /// The hinge factors; empty means the constant term.
    pub hinges: Vec<Hinge>,
}

impl BasisFunction {
    fn intercept() -> Self {
        BasisFunction { hinges: Vec::new() }
    }

    fn eval(&self, row: &[f64]) -> f64 {
        self.hinges.iter().map(|h| h.eval(row)).product()
    }

    fn degree(&self) -> usize {
        self.hinges.len()
    }

    fn uses_feature(&self, f: usize) -> bool {
        self.hinges.iter().any(|h| h.feature == f)
    }
}

/// MARS hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MarsParams {
    /// Maximum number of basis functions grown in the forward pass
    /// (including the intercept). `earth` default is 21 for small problems.
    pub max_terms: usize,
    /// Maximum interaction degree (1 = additive model, 2 = pairwise).
    pub max_degree: usize,
    /// GCV penalty per knot; Friedman recommends 3 for interactive models,
    /// 2 for additive.
    pub penalty: f64,
    /// Maximum number of candidate knots per feature (evenly spaced
    /// quantiles of the observed values). Caps the forward-pass cost.
    pub max_knots: usize,
    /// Forward pass stops early when RSS improvement falls below this
    /// fraction of the current RSS.
    pub min_improvement: f64,
}

impl Default for MarsParams {
    fn default() -> Self {
        MarsParams {
            max_terms: 21,
            max_degree: 2,
            penalty: 3.0,
            max_knots: 32,
            min_improvement: 1e-4,
        }
    }
}

/// A fitted MARS model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mars {
    /// Retained basis functions (first is always the intercept).
    pub basis: Vec<BasisFunction>,
    /// Coefficients aligned with `basis`.
    pub coefficients: Vec<f64>,
    /// GCV score of the final model.
    pub gcv: f64,
    /// Training R².
    pub train_r_squared: f64,
}

impl Mars {
    /// Fits a MARS model to row-major observations.
    pub fn fit(x: &[Vec<f64>], y: &[f64], params: &MarsParams) -> Result<Mars> {
        if x.is_empty() || y.is_empty() {
            return Err(RegressError::BadTrainingData("empty training set".into()));
        }
        if x.len() != y.len() {
            return Err(RegressError::BadTrainingData(format!(
                "{} rows but {} responses",
                x.len(),
                y.len()
            )));
        }
        let n = x.len();
        let p = x[0].len();
        if x.iter().any(|r| r.len() != p) {
            return Err(RegressError::BadTrainingData("ragged rows".into()));
        }

        // Candidate knots per feature: unique observed values, thinned to
        // max_knots evenly spaced quantiles.
        let knots: Vec<Vec<f64>> = (0..p)
            .map(|f| {
                let mut vals: Vec<f64> = x.iter().map(|r| r[f]).collect();
                vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
                vals.dedup();
                if vals.len() > params.max_knots {
                    let m = vals.len();
                    (0..params.max_knots)
                        .map(|k| vals[k * (m - 1) / (params.max_knots - 1)])
                        .collect()
                } else {
                    vals
                }
            })
            .collect();

        // Forward pass.
        let mut basis = vec![BasisFunction::intercept()];
        // Column cache: evaluated basis columns over the training set.
        let mut columns: Vec<Vec<f64>> = vec![vec![1.0; n]];
        let mut current_rss = fit_rss(&columns, y)?.1;
        let total_ss = current_rss; // intercept-only RSS == TSS

        while basis.len() + 2 <= params.max_terms {
            let mut best: Option<(f64, usize, Hinge, Hinge)> = None;
            for (parent_idx, parent) in basis.iter().enumerate() {
                if parent.degree() >= params.max_degree {
                    continue;
                }
                for f in 0..p {
                    // Standard MARS restriction: a feature appears at most
                    // once per product.
                    if parent.uses_feature(f) {
                        continue;
                    }
                    for &knot in &knots[f] {
                        let pos = Hinge {
                            feature: f,
                            knot,
                            positive: true,
                        };
                        let neg = Hinge {
                            feature: f,
                            knot,
                            positive: false,
                        };
                        // Evaluate the two new columns.
                        let parent_col = &columns[parent_idx];
                        let mut col_pos = Vec::with_capacity(n);
                        let mut col_neg = Vec::with_capacity(n);
                        for (i, row) in x.iter().enumerate() {
                            col_pos.push(parent_col[i] * pos.eval(row));
                            col_neg.push(parent_col[i] * neg.eval(row));
                        }
                        // Skip degenerate (all-zero) additions.
                        let live_pos = col_pos.iter().any(|&v| v != 0.0);
                        let live_neg = col_neg.iter().any(|&v| v != 0.0);
                        if !live_pos && !live_neg {
                            continue;
                        }
                        let mut trial = columns.clone();
                        trial.push(col_pos);
                        trial.push(col_neg);
                        let Ok((_, rss)) = fit_rss(&trial, y) else {
                            continue;
                        };
                        if best.as_ref().is_none_or(|(b_rss, ..)| rss < *b_rss) {
                            best = Some((rss, parent_idx, pos, neg));
                        }
                    }
                }
            }
            let Some((rss, parent_idx, pos, neg)) = best else {
                break;
            };
            let improvement = current_rss - rss;
            if improvement < params.min_improvement * current_rss.max(1e-300) {
                break;
            }
            // Accept the pair.
            let parent = basis[parent_idx].clone();
            for hinge in [pos, neg] {
                let mut b = parent.clone();
                b.hinges.push(hinge);
                let col: Vec<f64> = x.iter().map(|r| b.eval(r)).collect();
                basis.push(b);
                columns.push(col);
            }
            current_rss = rss;
            if current_rss <= 1e-12 * total_ss.max(1e-300) {
                break;
            }
        }

        // Backward pass: prune by GCV.
        let mut active: Vec<usize> = (0..basis.len()).collect();
        let mut best_active = active.clone();
        let mut best_gcv = gcv_score(&subset(&columns, &active), y, params.penalty)?;
        while active.len() > 1 {
            // Drop the term (never the intercept) whose removal yields the
            // best GCV.
            let mut round_best: Option<(f64, usize)> = None;
            for (pos, &term) in active.iter().enumerate() {
                if term == 0 {
                    continue; // keep the intercept
                }
                let mut trial = active.clone();
                trial.remove(pos);
                let g = gcv_score(&subset(&columns, &trial), y, params.penalty)?;
                if round_best.as_ref().is_none_or(|(bg, _)| g < *bg) {
                    round_best = Some((g, pos));
                }
            }
            let Some((g, pos)) = round_best else { break };
            active.remove(pos);
            if g < best_gcv {
                best_gcv = g;
                best_active = active.clone();
            }
        }

        // Final fit on the surviving subset.
        let final_cols = subset(&columns, &best_active);
        let (coefficients, rss) = fit_rss(&final_cols, y)?;
        let final_basis: Vec<BasisFunction> =
            best_active.iter().map(|&i| basis[i].clone()).collect();
        let train_r_squared = if total_ss == 0.0 {
            1.0
        } else {
            1.0 - rss / total_ss
        };
        Ok(Mars {
            basis: final_basis,
            coefficients,
            gcv: best_gcv,
            train_r_squared,
        })
    }

    /// Predicts the response for one input row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        self.basis
            .iter()
            .zip(self.coefficients.iter())
            .map(|(b, &c)| c * b.eval(row))
            .sum()
    }

    /// Predicts a batch of rows.
    pub fn predict(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict_row(r)).collect()
    }

    /// Number of basis functions (including the intercept).
    pub fn n_terms(&self) -> usize {
        self.basis.len()
    }
}

/// Least-squares fit of `y` on the given columns; returns (coefficients, RSS).
fn fit_rss(columns: &[Vec<f64>], y: &[f64]) -> Result<(Vec<f64>, f64)> {
    let k = columns.len();
    let n = y.len();
    // Build the Gram matrix directly from columns (cheaper than materialising
    // the design matrix row-major).
    let mut gram = Matrix::zeros(k, k);
    for a in 0..k {
        for b in a..k {
            let mut s = 0.0;
            for i in 0..n {
                s += columns[a][i] * columns[b][i];
            }
            gram[(a, b)] = s;
            gram[(b, a)] = s;
        }
    }
    let mut rhs = vec![0.0; k];
    for a in 0..k {
        let mut s = 0.0;
        for i in 0..n {
            s += columns[a][i] * y[i];
        }
        rhs[a] = s;
    }
    let coef =
        solve_spd_ridge(&gram, &rhs, 1e-9).map_err(|e| RegressError::Solve(e.to_string()))?;
    let mut rss = 0.0;
    for i in 0..n {
        let mut pred = 0.0;
        for a in 0..k {
            pred += coef[a] * columns[a][i];
        }
        rss += (pred - y[i]) * (pred - y[i]);
    }
    Ok((coef, rss))
}

/// GCV = (RSS / n) / (1 - C(M)/n)² with effective parameters
/// `C(M) = M + penalty * (M - 1) / 2` where `M` is the number of terms.
fn gcv_score(columns: &[Vec<f64>], y: &[f64], penalty: f64) -> Result<f64> {
    let n = y.len() as f64;
    let m = columns.len() as f64;
    let c = m + penalty * (m - 1.0) / 2.0;
    let (_, rss) = fit_rss(columns, y)?;
    let denom = (1.0 - c / n).max(1e-3);
    Ok((rss / n) / (denom * denom))
}

fn subset(columns: &[Vec<f64>], active: &[usize]) -> Vec<Vec<f64>> {
    active.iter().map(|&i| columns[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_small() -> MarsParams {
        MarsParams {
            max_terms: 11,
            ..MarsParams::default()
        }
    }

    #[test]
    fn fits_piecewise_linear_exactly() {
        // A single hinge at x = 5: y = 2x for x < 5, y = 10 for x >= 5.
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 4.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| 2.0 * r[0].min(5.0)).collect();
        let m = Mars::fit(&x, &y, &default_small()).unwrap();
        assert!(m.train_r_squared > 0.999, "r2 = {}", m.train_r_squared);
        assert!((m.predict_row(&[1.0]) - 2.0).abs() < 0.1);
        assert!((m.predict_row(&[8.0]) - 10.0).abs() < 0.1);
    }

    #[test]
    fn fits_linear_function() {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| 3.0 * r[0] + 2.0).collect();
        let m = Mars::fit(&x, &y, &default_small()).unwrap();
        assert!(m.train_r_squared > 0.999);
        assert!((m.predict_row(&[15.5]) - (3.0 * 15.5 + 2.0)).abs() < 0.5);
    }

    #[test]
    fn captures_interaction_when_allowed() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for a in 0..10 {
            for b in 0..10 {
                x.push(vec![a as f64, b as f64]);
                y.push(a as f64 * b as f64);
            }
        }
        let m = Mars::fit(
            &x,
            &y,
            &MarsParams {
                max_degree: 2,
                max_terms: 15,
                ..MarsParams::default()
            },
        )
        .unwrap();
        assert!(m.train_r_squared > 0.95, "r2 = {}", m.train_r_squared);
        // At least one basis function of degree 2 should survive pruning.
        assert!(m.basis.iter().any(|b| b.degree() == 2));
    }

    #[test]
    fn additive_restriction_blocks_interactions() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for a in 0..8 {
            for b in 0..8 {
                x.push(vec![a as f64, b as f64]);
                y.push(a as f64 * b as f64);
            }
        }
        let m = Mars::fit(
            &x,
            &y,
            &MarsParams {
                max_degree: 1,
                ..default_small()
            },
        )
        .unwrap();
        assert!(m.basis.iter().all(|b| b.degree() <= 1));
    }

    #[test]
    fn intercept_always_first_and_retained() {
        let x: Vec<Vec<f64>> = (0..25).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0].powi(2)).collect();
        let m = Mars::fit(&x, &y, &default_small()).unwrap();
        assert!(m.basis[0].hinges.is_empty());
    }

    #[test]
    fn constant_response_yields_intercept_only() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y = vec![7.0; 20];
        let m = Mars::fit(&x, &y, &default_small()).unwrap();
        assert_eq!(m.n_terms(), 1);
        assert!((m.predict_row(&[3.0]) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn respects_max_terms_budget() {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| (r[0] / 10.0).sin() * 10.0).collect();
        let m = Mars::fit(
            &x,
            &y,
            &MarsParams {
                max_terms: 7,
                min_improvement: 0.0,
                ..MarsParams::default()
            },
        )
        .unwrap();
        assert!(m.n_terms() <= 7);
    }

    #[test]
    fn smooth_nonlinearity_well_approximated() {
        let x: Vec<Vec<f64>> = (0..80).map(|i| vec![i as f64 / 8.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] * r[0]).collect();
        let m = Mars::fit(
            &x,
            &y,
            &MarsParams {
                max_terms: 21,
                ..MarsParams::default()
            },
        )
        .unwrap();
        assert!(m.train_r_squared > 0.99);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Mars::fit(&[], &[], &MarsParams::default()).is_err());
        let x = vec![vec![1.0], vec![2.0]];
        assert!(Mars::fit(&x, &[1.0], &MarsParams::default()).is_err());
        let ragged = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(Mars::fit(&ragged, &[1.0, 2.0], &MarsParams::default()).is_err());
    }

    #[test]
    fn prediction_is_finite_outside_training_range() {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| 2.0 * r[0]).collect();
        let m = Mars::fit(&x, &y, &default_small()).unwrap();
        for q in [-100.0, 1000.0] {
            assert!(m.predict_row(&[q]).is_finite());
        }
    }

    #[test]
    fn gcv_positive_for_noisy_data() {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..40)
            .map(|i| i as f64 + ((i * 2654435761usize) % 7) as f64)
            .collect();
        let m = Mars::fit(&x, &y, &default_small()).unwrap();
        assert!(m.gcv > 0.0);
    }
}
