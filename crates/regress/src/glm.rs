//! Gaussian GLMs (ordinary least squares) over explicit bases.
//!
//! BlackForest's counter models for "trivial cases (e.g., single problem
//! characteristics such as matrix size in matrix multiply)" are generalized
//! linear models. With a Gaussian family and identity link — the relevant
//! configuration for counter values — the GLM reduces to OLS, and the
//! *residual deviance* the paper reports is exactly the residual sum of
//! squares.

use crate::{RegressError, Result};
use bf_linalg::{qr::least_squares, stats, Matrix};
use serde::{Deserialize, Serialize};

/// One term of a regression basis over a multivariate input row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Basis {
    /// The constant 1 (intercept).
    Intercept,
    /// `x[feature] ^ power` for integer `power >= 1`.
    Power {
        /// Input feature index.
        feature: usize,
        /// Exponent.
        power: u32,
    },
    /// `ln(max(x[feature], floor))` — log terms are the natural basis for
    /// counters that grow polynomially in the problem size.
    Log {
        /// Input feature index.
        feature: usize,
        /// Values below this floor are clamped before the log.
        floor: f64,
    },
    /// Product of two features (first-order interaction).
    Interaction {
        /// First feature index.
        a: usize,
        /// Second feature index.
        b: usize,
    },
}

impl Basis {
    /// Evaluates the term on one input row.
    pub fn eval(&self, row: &[f64]) -> f64 {
        match *self {
            Basis::Intercept => 1.0,
            Basis::Power { feature, power } => row[feature].powi(power as i32),
            Basis::Log { feature, floor } => row[feature].max(floor).ln(),
            Basis::Interaction { a, b } => row[a] * row[b],
        }
    }

    /// A polynomial basis `1, x, x², …, x^degree` over a single feature.
    pub fn polynomial(feature: usize, degree: u32) -> Vec<Basis> {
        let mut terms = vec![Basis::Intercept];
        for power in 1..=degree {
            terms.push(Basis::Power { feature, power });
        }
        terms
    }
}

/// A fitted linear model over an explicit basis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearModel {
    /// The basis terms, in coefficient order.
    pub basis: Vec<Basis>,
    /// Fitted coefficients.
    pub coefficients: Vec<f64>,
    /// Residual deviance (Gaussian family: residual sum of squares).
    pub residual_deviance: f64,
    /// Null deviance (total sum of squares around the mean).
    pub null_deviance: f64,
    /// Number of training observations.
    pub n_obs: usize,
}

impl LinearModel {
    /// Fits the model by least squares on row-major observations.
    pub fn fit(basis: &[Basis], x: &[Vec<f64>], y: &[f64]) -> Result<LinearModel> {
        if x.is_empty() || y.is_empty() {
            return Err(RegressError::BadTrainingData("empty training set".into()));
        }
        if x.len() != y.len() {
            return Err(RegressError::BadTrainingData(format!(
                "{} rows but {} responses",
                x.len(),
                y.len()
            )));
        }
        if basis.is_empty() {
            return Err(RegressError::BadTrainingData("empty basis".into()));
        }
        let rows: Vec<Vec<f64>> = x
            .iter()
            .map(|row| basis.iter().map(|b| b.eval(row)).collect())
            .collect();
        let design = Matrix::from_rows(&rows).map_err(|e| RegressError::Solve(e.to_string()))?;
        let coefficients =
            least_squares(&design, y).map_err(|e| RegressError::Solve(e.to_string()))?;
        let fitted: Vec<f64> = rows
            .iter()
            .map(|r| r.iter().zip(coefficients.iter()).map(|(a, b)| a * b).sum())
            .collect();
        let residual_deviance: f64 = fitted
            .iter()
            .zip(y.iter())
            .map(|(p, o)| (p - o) * (p - o))
            .sum();
        let mean = stats::mean(y);
        let null_deviance: f64 = y.iter().map(|&v| (v - mean) * (v - mean)).sum();
        Ok(LinearModel {
            basis: basis.to_vec(),
            coefficients,
            residual_deviance,
            null_deviance,
            n_obs: y.len(),
        })
    }

    /// Predicts the response for one input row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        self.basis
            .iter()
            .zip(self.coefficients.iter())
            .map(|(b, &c)| c * b.eval(row))
            .sum()
    }

    /// Predicts a batch of rows.
    pub fn predict(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict_row(r)).collect()
    }

    /// R² on the training data (1 - residual/null deviance).
    pub fn r_squared(&self) -> f64 {
        if self.null_deviance == 0.0 {
            if self.residual_deviance == 0.0 {
                1.0
            } else {
                0.0
            }
        } else {
            1.0 - self.residual_deviance / self.null_deviance
        }
    }

    /// Mean residual deviance per observation — the "average residual
    /// deviance" scale the paper quotes per counter model.
    pub fn mean_residual_deviance(&self) -> f64 {
        self.residual_deviance / self.n_obs as f64
    }
}

/// Convenience wrapper: a univariate polynomial model `y ~ poly(x, degree)`,
/// with automatic degree selection by leave-one-out-style adjusted R².
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolynomialModel {
    inner: LinearModel,
    /// Chosen polynomial degree.
    pub degree: u32,
}

impl PolynomialModel {
    /// Fits `y ~ 1 + x + … + x^degree` on scalar observations.
    pub fn fit(x: &[f64], y: &[f64], degree: u32) -> Result<PolynomialModel> {
        let rows: Vec<Vec<f64>> = x.iter().map(|&v| vec![v]).collect();
        let basis = Basis::polynomial(0, degree);
        Ok(PolynomialModel {
            inner: LinearModel::fit(&basis, &rows, y)?,
            degree,
        })
    }

    /// Fits polynomials of degree 1..=max_degree and keeps the one with the
    /// best adjusted R², preferring lower degrees on ties. This mirrors how a
    /// practitioner picks the simplest adequate `glm` for a counter.
    pub fn fit_auto(x: &[f64], y: &[f64], max_degree: u32) -> Result<PolynomialModel> {
        if x.len() != y.len() || x.is_empty() {
            return Err(RegressError::BadTrainingData(
                "empty or mismatched input".into(),
            ));
        }
        let mut best: Option<(f64, PolynomialModel)> = None;
        // Degrees beyond n-2 have no degrees of freedom left.
        let cap = max_degree.min(x.len().saturating_sub(2).max(1) as u32);
        for degree in 1..=cap {
            let model = PolynomialModel::fit(x, y, degree)?;
            let n = x.len() as f64;
            let k = degree as f64 + 1.0;
            let r2 = model.inner.r_squared();
            let adj = if n - k - 1.0 > 0.0 {
                1.0 - (1.0 - r2) * (n - 1.0) / (n - k - 1.0)
            } else {
                r2
            };
            // Require a meaningful gain to accept a higher degree.
            if best.as_ref().is_none_or(|(b, _)| adj > b + 1e-6) {
                best = Some((adj, model));
            }
        }
        Ok(best.expect("at least degree 1 evaluated").1)
    }

    /// Predicts at one scalar input.
    pub fn predict(&self, x: f64) -> f64 {
        self.inner.predict_row(&[x])
    }

    /// Training R².
    pub fn r_squared(&self) -> f64 {
        self.inner.r_squared()
    }

    /// Residual deviance (RSS).
    pub fn residual_deviance(&self) -> f64 {
        self.inner.residual_deviance
    }

    /// Mean residual deviance per observation.
    pub fn mean_residual_deviance(&self) -> f64 {
        self.inner.mean_residual_deviance()
    }

    /// Borrow the underlying linear model.
    pub fn linear_model(&self) -> &LinearModel {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_linear_coefficients() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| 4.0 + 2.5 * i as f64).collect();
        let m = LinearModel::fit(&Basis::polynomial(0, 1), &x, &y).unwrap();
        assert!((m.coefficients[0] - 4.0).abs() < 1e-8);
        assert!((m.coefficients[1] - 2.5).abs() < 1e-8);
        assert!(m.residual_deviance < 1e-8);
        assert!((m.r_squared() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn recovers_cubic() {
        let x: Vec<f64> = (0..30).map(|i| i as f64 / 3.0).collect();
        let y: Vec<f64> = x.iter().map(|&v| 1.0 - v + 0.5 * v * v * v).collect();
        let m = PolynomialModel::fit(&x, &y, 3).unwrap();
        assert!(m.r_squared() > 0.999999);
        assert!((m.predict(5.0) - (1.0 - 5.0 + 0.5 * 125.0)).abs() < 1e-5);
    }

    #[test]
    fn auto_degree_prefers_simplest_adequate() {
        let x: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| 3.0 * v + 1.0).collect();
        let m = PolynomialModel::fit_auto(&x, &y, 5).unwrap();
        assert_eq!(m.degree, 1);
    }

    #[test]
    fn auto_degree_finds_quadratic() {
        let x: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| v * v).collect();
        let m = PolynomialModel::fit_auto(&x, &y, 5).unwrap();
        assert!(m.degree >= 2);
        assert!(m.r_squared() > 0.99999);
    }

    #[test]
    fn log_basis_fits_logarithmic_growth() {
        let x: Vec<Vec<f64>> = (1..50).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| 2.0 + 7.0 * r[0].ln()).collect();
        let basis = vec![
            Basis::Intercept,
            Basis::Log {
                feature: 0,
                floor: 1e-9,
            },
        ];
        let m = LinearModel::fit(&basis, &x, &y).unwrap();
        assert!((m.coefficients[1] - 7.0).abs() < 1e-8);
    }

    #[test]
    fn interaction_basis_fits_product_term() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for a in 0..8 {
            for b in 0..8 {
                x.push(vec![a as f64, b as f64]);
                y.push(3.0 * a as f64 * b as f64 + 1.0);
            }
        }
        let basis = vec![Basis::Intercept, Basis::Interaction { a: 0, b: 1 }];
        let m = LinearModel::fit(&basis, &x, &y).unwrap();
        assert!((m.coefficients[1] - 3.0).abs() < 1e-8);
    }

    #[test]
    fn residual_deviance_positive_for_noisy_fit() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        // A step function badly approximated by a line.
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { 0.0 } else { 100.0 }).collect();
        let m = LinearModel::fit(&Basis::polynomial(0, 1), &x, &y).unwrap();
        assert!(m.residual_deviance > 1.0);
        assert!(m.mean_residual_deviance() > 0.05);
        assert!(m.r_squared() < 1.0);
    }

    #[test]
    fn rejects_empty_or_mismatched() {
        assert!(LinearModel::fit(&Basis::polynomial(0, 1), &[], &[]).is_err());
        let x = vec![vec![1.0]];
        assert!(LinearModel::fit(&Basis::polynomial(0, 1), &x, &[1.0, 2.0]).is_err());
        assert!(LinearModel::fit(&[], &x, &[1.0]).is_err());
    }

    #[test]
    fn survives_collinear_basis() {
        // x and 2x as separate "features" via powers of the same feature is
        // fine, but literal duplicate terms force the ridge fallback.
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let basis = vec![
            Basis::Intercept,
            Basis::Power {
                feature: 0,
                power: 1,
            },
            Basis::Power {
                feature: 0,
                power: 1,
            },
        ];
        let m = LinearModel::fit(&basis, &x, &y).unwrap();
        assert!(m.coefficients.iter().all(|c| c.is_finite()));
        assert!(m.r_squared() > 0.999);
    }

    #[test]
    fn predict_batch_matches_rowwise() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| 2.0 * i as f64).collect();
        let m = LinearModel::fit(&Basis::polynomial(0, 1), &x, &y).unwrap();
        let batch = m.predict(&x);
        for (i, row) in x.iter().enumerate() {
            assert_eq!(batch[i], m.predict_row(row));
        }
    }
}
