//! Stepwise linear regression — the Stargazer-style baseline.
//!
//! The paper's §2 discusses Stargazer (Jia, Shaw, Martonosi 2012), "an
//! automated GPU performance exploration framework based on stepwise
//! regression modeling", and argues that such "less powerful statistical
//! models ... fundamentally lack the ability to determine performance
//! bottleneck analysis". To make that comparison concrete, this module
//! implements classical forward-backward stepwise selection of linear terms
//! under the AIC criterion; the `ablation_baselines` bench pits it against
//! the random forest on the paper's datasets.

use crate::glm::{Basis, LinearModel};
use crate::{RegressError, Result};
use serde::{Deserialize, Serialize};

/// Options for the stepwise search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepwiseParams {
    /// Maximum number of selected predictors (besides the intercept).
    pub max_terms: usize,
    /// Minimum AIC improvement to accept a forward step.
    pub min_improvement: f64,
}

impl Default for StepwiseParams {
    fn default() -> Self {
        StepwiseParams {
            max_terms: 12,
            min_improvement: 1e-6,
        }
    }
}

/// A fitted stepwise linear model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StepwiseModel {
    /// Indices of the selected features, in selection order.
    pub selected: Vec<usize>,
    /// The final linear model (intercept + selected features).
    pub model: LinearModel,
    /// AIC of the final model.
    pub aic: f64,
}

/// Akaike information criterion for a Gaussian linear model:
/// `n ln(RSS/n) + 2k`.
fn aic(rss: f64, n: usize, k: usize) -> f64 {
    let n = n as f64;
    n * (rss.max(1e-300) / n).ln() + 2.0 * (k as f64 + 1.0)
}

fn fit_subset(x: &[Vec<f64>], y: &[f64], subset: &[usize]) -> Result<(LinearModel, f64)> {
    let mut basis = vec![Basis::Intercept];
    for &f in subset {
        basis.push(Basis::Power {
            feature: f,
            power: 1,
        });
    }
    let m = LinearModel::fit(&basis, x, y)?;
    let a = aic(m.residual_deviance, y.len(), subset.len());
    Ok((m, a))
}

impl StepwiseModel {
    /// Fits by forward selection with backward pruning after each
    /// acceptance, both driven by AIC.
    pub fn fit(x: &[Vec<f64>], y: &[f64], params: &StepwiseParams) -> Result<StepwiseModel> {
        if x.is_empty() || y.is_empty() || x.len() != y.len() {
            return Err(RegressError::BadTrainingData(
                "empty or mismatched input".into(),
            ));
        }
        let p = x[0].len();
        let mut selected: Vec<usize> = Vec::new();
        let (mut best_model, mut best_aic) = fit_subset(x, y, &selected)?;

        loop {
            // Forward step: try adding each unused feature.
            let mut forward: Option<(f64, usize)> = None;
            for f in 0..p {
                if selected.contains(&f) || selected.len() >= params.max_terms {
                    continue;
                }
                let mut trial = selected.clone();
                trial.push(f);
                if let Ok((_, a)) = fit_subset(x, y, &trial) {
                    if forward.is_none_or(|(fa, _)| a < fa) {
                        forward = Some((a, f));
                    }
                }
            }
            let Some((a, f)) = forward else { break };
            if a >= best_aic - params.min_improvement {
                break;
            }
            selected.push(f);
            // Backward step: drop any feature whose removal improves AIC.
            loop {
                let mut drop: Option<(f64, usize)> = None;
                for (pos, _) in selected.iter().enumerate() {
                    let mut trial = selected.clone();
                    trial.remove(pos);
                    if let Ok((_, a)) = fit_subset(x, y, &trial) {
                        if drop.is_none_or(|(da, _)| a < da) {
                            drop = Some((a, pos));
                        }
                    }
                }
                match drop {
                    Some((a, pos)) if a < best_aic - params.min_improvement => {
                        selected.remove(pos);
                        best_aic = a;
                    }
                    _ => break,
                }
            }
            let (m, a) = fit_subset(x, y, &selected)?;
            best_model = m;
            best_aic = a;
        }
        Ok(StepwiseModel {
            selected,
            model: best_model,
            aic: best_aic,
        })
    }

    /// Predicts the response for one input row (full feature width).
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        self.model.predict_row(row)
    }

    /// Predicts a batch of rows.
    pub fn predict(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict_row(r)).collect()
    }

    /// Training R².
    pub fn r_squared(&self) -> f64 {
        self.model.r_squared()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y depends on features 0 and 2 only; 1 and 3 are noise.
    fn data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                vec![
                    i as f64,
                    ((i * 37) % 11) as f64,
                    (i * i % 97) as f64,
                    ((i * 13) % 7) as f64,
                ]
            })
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 2.0 * r[0] - 0.5 * r[2] + 3.0).collect();
        (x, y)
    }

    #[test]
    fn selects_informative_features_only() {
        let (x, y) = data(60);
        let m = StepwiseModel::fit(&x, &y, &StepwiseParams::default()).unwrap();
        assert!(m.selected.contains(&0), "selected {:?}", m.selected);
        assert!(m.selected.contains(&2), "selected {:?}", m.selected);
        assert!(m.r_squared() > 0.999999);
    }

    #[test]
    fn recovers_coefficients() {
        let (x, y) = data(60);
        let m = StepwiseModel::fit(&x, &y, &StepwiseParams::default()).unwrap();
        let pred = m.predict_row(&[10.0, 0.0, 20.0, 0.0]);
        assert!((pred - (2.0 * 10.0 - 0.5 * 20.0 + 3.0)).abs() < 1e-6);
    }

    #[test]
    fn constant_response_selects_nothing() {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, (i % 5) as f64]).collect();
        let y = vec![7.0; 30];
        let m = StepwiseModel::fit(&x, &y, &StepwiseParams::default()).unwrap();
        assert!(m.selected.is_empty());
        assert!((m.predict_row(&[100.0, 3.0]) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn respects_max_terms() {
        let (x, y) = data(60);
        let m = StepwiseModel::fit(
            &x,
            &y,
            &StepwiseParams {
                max_terms: 1,
                ..StepwiseParams::default()
            },
        )
        .unwrap();
        assert!(m.selected.len() <= 1);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(StepwiseModel::fit(&[], &[], &StepwiseParams::default()).is_err());
        let x = vec![vec![1.0]];
        assert!(StepwiseModel::fit(&x, &[1.0, 2.0], &StepwiseParams::default()).is_err());
    }

    #[test]
    fn fails_to_capture_nonlinearity_unlike_forest_would() {
        // A step function: linear stepwise tops out well below RF accuracy —
        // the §2 "less powerful models" point in miniature.
        let x: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..60)
            .map(|i| if i % 20 < 10 { 0.0 } else { 100.0 })
            .collect();
        let m = StepwiseModel::fit(&x, &y, &StepwiseParams::default()).unwrap();
        assert!(m.r_squared() < 0.5, "r2 {}", m.r_squared());
    }
}
