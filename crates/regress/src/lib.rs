//! Regression substrate for BlackForest: GLM and MARS.
//!
//! §4.2 of the paper ("Results interpretation"): after the most influential
//! counters are identified, each is modelled *in terms of the problem and/or
//! machine characteristics* so that predictions can be made from those
//! characteristics alone. For trivial relationships (e.g. counters driven by
//! a single matrix dimension) **generalized linear models** suffice; for
//! nonlinear, interacting relationships (e.g. Needleman-Wunsch) the paper
//! uses **MARS** — multivariate adaptive regression splines (R's `earth`).
//!
//! * [`glm`] — ordinary least squares over arbitrary bases (polynomial and
//!   log terms included), with residual deviance and R² reporting that
//!   matches how the paper judges its counter models ("residual deviance
//!   between 0 and 2.7, except `inst_replay_overhead` … as large as 203").
//! * [`mars`] — Friedman's MARS: forward selection of hinge-function pairs,
//!   then backward pruning on the generalized cross-validation (GCV) score.
//!
//! Two *baseline* learners round out the crate so the paper's comparative
//! claims can be tested empirically (see the `ablation_baselines` bench):
//!
//! * [`stepwise`] — Stargazer-style stepwise linear regression (§2's
//!   "less powerful statistical models"), and
//! * [`mlp`] — a single-hidden-layer neural network (§1 cites RF beating
//!   SVMs and neural networks "especially for scarce training data").

// Index-based loops are the clearer idiom throughout this numeric code
// (parallel arrays, in-place matrix updates), so the pedantic lint is off.
#![allow(clippy::needless_range_loop)]

pub mod glm;
pub mod mars;
pub mod mlp;
pub mod stepwise;

pub use glm::{Basis, LinearModel, PolynomialModel};
pub use mars::{Mars, MarsParams};
pub use mlp::{MlpParams, MlpRegressor};
pub use stepwise::{StepwiseModel, StepwiseParams};

/// Errors produced by the regression fitters.
#[derive(Debug, Clone, PartialEq)]
pub enum RegressError {
    /// Mismatched or empty training data.
    BadTrainingData(String),
    /// The underlying linear solve failed.
    Solve(String),
}

impl std::fmt::Display for RegressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegressError::BadTrainingData(msg) => write!(f, "bad training data: {msg}"),
            RegressError::Solve(msg) => write!(f, "linear solve failed: {msg}"),
        }
    }
}

impl std::error::Error for RegressError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, RegressError>;
