//! Serde round-trip guarantees for every persisted regression model: fit →
//! serialize → deserialize → *bit-identical* predictions on a probe grid.
//! These are the models a saved `ModelBundle` carries, so any drift here
//! silently breaks served-vs-trained prediction parity.

use bf_regress::glm::{Basis, LinearModel};
use bf_regress::mars::{Mars, MarsParams};
use bf_regress::stepwise::{StepwiseModel, StepwiseParams};
use serde::{Deserialize, Serialize};

/// Deterministic two-feature training data with curvature and a kink, so
/// GLM, MARS, and stepwise all produce non-trivial fits.
fn training_data() -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut x = Vec::new();
    let mut y = Vec::new();
    for i in 0..60 {
        let a = i as f64 * 0.5;
        let b = ((i * 7) % 13) as f64;
        let kink = if a > 12.0 { 3.0 * (a - 12.0) } else { 0.0 };
        x.push(vec![a, b]);
        y.push(1.5 + 0.8 * a + 0.05 * a * a - 0.3 * b + kink);
    }
    (x, y)
}

/// The probe grid deliberately includes off-training points, extrapolation
/// beyond the fitted range, zero, and subnormal-scale values.
fn probe_grid() -> Vec<Vec<f64>> {
    let mut grid = Vec::new();
    for i in 0..40 {
        grid.push(vec![i as f64 * 0.83 - 3.0, (i % 9) as f64 * 1.7]);
    }
    grid.push(vec![0.0, 0.0]);
    grid.push(vec![1e-300, 1e-300]);
    grid.push(vec![1e6, -1e6]);
    grid
}

fn assert_bit_identical<M>(label: &str, original: &M, predict: impl Fn(&M, &[f64]) -> f64)
where
    M: Serialize + Deserialize,
{
    let json = serde_json::to_string(original).expect("serialize");
    let restored: M = serde_json::from_str(&json).expect("deserialize");
    for row in probe_grid() {
        let a = predict(original, &row);
        let b = predict(&restored, &row);
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{label}: prediction drifted after round-trip at {row:?}: {a} vs {b}"
        );
    }
}

#[test]
fn linear_model_round_trips_bit_identical() {
    let (x, y) = training_data();
    let basis = vec![
        Basis::Intercept,
        Basis::Power {
            feature: 0,
            power: 1,
        },
        Basis::Power {
            feature: 0,
            power: 2,
        },
        Basis::Power {
            feature: 1,
            power: 1,
        },
        Basis::Interaction { a: 0, b: 1 },
    ];
    let model = LinearModel::fit(&basis, &x, &y).expect("glm fit");
    assert_bit_identical("LinearModel", &model, |m, row| m.predict_row(row));
}

#[test]
fn mars_round_trips_bit_identical() {
    let (x, y) = training_data();
    let model = Mars::fit(&x, &y, &MarsParams::default()).expect("mars fit");
    assert!(model.train_r_squared > 0.9, "r2 {}", model.train_r_squared);
    assert_bit_identical("Mars", &model, |m, row| m.predict_row(row));
}

#[test]
fn stepwise_round_trips_bit_identical() {
    let (x, y) = training_data();
    let model = StepwiseModel::fit(&x, &y, &StepwiseParams::default()).expect("stepwise fit");
    assert_bit_identical("StepwiseModel", &model, |m, row| m.predict_row(row));
}

#[test]
fn params_round_trip_exactly() {
    let mars = MarsParams::default();
    let back: MarsParams = serde_json::from_str(&serde_json::to_string(&mars).unwrap()).unwrap();
    assert_eq!(mars, back);

    let step = StepwiseParams::default();
    let back: StepwiseParams =
        serde_json::from_str(&serde_json::to_string(&step).unwrap()).unwrap();
    assert_eq!(step, back);
}

/// Recursively asserts a serialized value tree carries no `Null` leaf. The
/// serializer maps non-finite floats to `Null`, so any `Null` inside a fitted
/// model means a NaN/inf coefficient would silently reload as garbage. (A
/// textual "null" scan would false-positive on the `null_deviance` field name.)
fn assert_no_null(label: &str, value: &serde::Value) {
    match value {
        serde::Value::Null => panic!("{label}: non-finite value leaked into serialized model"),
        serde::Value::Seq(items) => items.iter().for_each(|v| assert_no_null(label, v)),
        serde::Value::Map(entries) => entries.iter().for_each(|(_, v)| assert_no_null(label, v)),
        _ => {}
    }
}

#[test]
fn serialized_models_stay_finite_valid_json() {
    let (x, y) = training_data();
    let mars = Mars::fit(&x, &y, &MarsParams::default()).unwrap();
    assert_no_null("Mars", &mars.serialize_value());
    let glm = LinearModel::fit(
        &[
            Basis::Intercept,
            Basis::Power {
                feature: 0,
                power: 1,
            },
        ],
        &x,
        &y,
    )
    .unwrap();
    assert_no_null("LinearModel", &glm.serialize_value());
}
