//! Timing-free projections and the human-readable summary sink.
//!
//! The golden-trace suite pins [`Trace::topology`] and the concurrency
//! suite compares [`Trace::multiset`] across thread counts; both must be
//! deterministic under arbitrary scheduling, so everything here sorts by
//! name and never looks at timestamps except in [`Trace::summary_table`].

use crate::{SpanId, SpanRecord, Trace};
use std::collections::BTreeMap;

/// A structural defect found by [`Trace::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceDefect {
    /// A span's `parent` id does not occur anywhere in the trace.
    OrphanParent { span: SpanId, parent: SpanId },
    /// A span ends before it starts (the recorder clamps, so this means
    /// corruption, not clock skew).
    NegativeDuration { span: SpanId },
    /// A span's interval is not contained in its parent's interval on the
    /// same thread (cross-thread children may legitimately outlive the
    /// region where the parent was on-stack, so only same-thread pairs
    /// are checked).
    EscapesParent { span: SpanId, parent: SpanId },
    /// Two spans share an id.
    DuplicateId { span: SpanId },
}

impl std::fmt::Display for TraceDefect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceDefect::OrphanParent { span, parent } => {
                write!(f, "span {span} references missing parent {parent}")
            }
            TraceDefect::NegativeDuration { span } => {
                write!(f, "span {span} ends before it starts")
            }
            TraceDefect::EscapesParent { span, parent } => {
                write!(f, "span {span} escapes the interval of parent {parent}")
            }
            TraceDefect::DuplicateId { span } => write!(f, "duplicate span id {span}"),
        }
    }
}

#[derive(Default)]
struct TopologyNode {
    count: u64,
    children: BTreeMap<&'static str, TopologyNode>,
}

impl TopologyNode {
    fn render(&self, name: &str, depth: usize, out: &mut String) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(name);
        out.push_str(&format!(" x{}\n", self.count));
        for (child_name, child) in &self.children {
            child.render(child_name, depth + 1, out);
        }
    }
}

impl Trace {
    /// The canonical span topology: the parent/child tree with siblings of
    /// the same name merged and counted, sorted by name at every level,
    /// rendered as indented `name xCOUNT` lines. Identical traces modulo
    /// timing, thread assignment, and sibling order produce identical
    /// strings — this is what the golden files pin.
    pub fn topology(&self) -> String {
        let mut by_parent: BTreeMap<Option<SpanId>, Vec<&SpanRecord>> = BTreeMap::new();
        let known: std::collections::BTreeSet<SpanId> = self.spans.iter().map(|s| s.id).collect();
        for span in &self.spans {
            // A parent that was never recorded (still open at drain, or
            // from a dead epoch) degrades the span to a root rather than
            // dropping it silently.
            let parent = span.parent.filter(|p| known.contains(p));
            by_parent.entry(parent).or_default().push(span);
        }
        let mut root = TopologyNode::default();
        fn build(
            node: &mut TopologyNode,
            parent: Option<SpanId>,
            by_parent: &BTreeMap<Option<SpanId>, Vec<&SpanRecord>>,
        ) {
            if let Some(children) = by_parent.get(&parent) {
                for span in children {
                    let child = node.children.entry(span.name).or_default();
                    child.count += 1;
                    build(child, Some(span.id), by_parent);
                }
            }
        }
        build(&mut root, None, &by_parent);
        let mut out = String::new();
        for (name, node) in &root.children {
            node.render(name, 0, &mut out);
        }
        out
    }

    /// Span names with occurrence counts, ignoring structure entirely.
    /// Two runs of the same work under different thread counts must agree
    /// on this exactly.
    pub fn multiset(&self) -> BTreeMap<&'static str, u64> {
        let mut counts = BTreeMap::new();
        for span in &self.spans {
            *counts.entry(span.name).or_insert(0) += 1;
        }
        counts
    }

    /// Checks structural invariants; an empty vec means the trace is
    /// well-formed.
    pub fn validate(&self) -> Vec<TraceDefect> {
        let mut defects = Vec::new();
        let mut by_id: BTreeMap<SpanId, &SpanRecord> = BTreeMap::new();
        for span in &self.spans {
            if by_id.insert(span.id, span).is_some() {
                defects.push(TraceDefect::DuplicateId { span: span.id });
            }
        }
        for span in &self.spans {
            if span.end_ns < span.start_ns {
                defects.push(TraceDefect::NegativeDuration { span: span.id });
            }
            if let Some(parent_id) = span.parent {
                match by_id.get(&parent_id) {
                    None => defects.push(TraceDefect::OrphanParent {
                        span: span.id,
                        parent: parent_id,
                    }),
                    Some(parent) => {
                        if parent.thread == span.thread
                            && (span.start_ns < parent.start_ns || span.end_ns > parent.end_ns)
                        {
                            defects.push(TraceDefect::EscapesParent {
                                span: span.id,
                                parent: parent_id,
                            });
                        }
                    }
                }
            }
        }
        defects
    }

    /// The `--timing` sink: per-name count, total, mean, and max wall
    /// time, widest totals first, as an aligned text table.
    pub fn summary_table(&self) -> String {
        struct Row {
            count: u64,
            total_ns: u64,
            max_ns: u64,
        }
        let mut rows: BTreeMap<&'static str, Row> = BTreeMap::new();
        for span in &self.spans {
            let d = span.duration_ns();
            let row = rows.entry(span.name).or_insert(Row {
                count: 0,
                total_ns: 0,
                max_ns: 0,
            });
            row.count += 1;
            row.total_ns += d;
            row.max_ns = row.max_ns.max(d);
        }
        let mut ordered: Vec<_> = rows.into_iter().collect();
        ordered.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));

        let name_w = ordered
            .iter()
            .map(|(n, _)| n.len())
            .chain(std::iter::once("span".len()))
            .max()
            .unwrap_or(4);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<name_w$}  {:>8}  {:>12}  {:>12}  {:>12}\n",
            "span", "count", "total", "mean", "max"
        ));
        for (name, row) in &ordered {
            let mean_ns = row.total_ns / row.count.max(1);
            out.push_str(&format!(
                "{:<name_w$}  {:>8}  {:>12}  {:>12}  {:>12}\n",
                name,
                row.count,
                fmt_ns(row.total_ns),
                fmt_ns(mean_ns),
                fmt_ns(row.max_ns),
            ));
        }
        if !self.counters.is_empty() {
            out.push('\n');
            let cname_w = self
                .counters
                .keys()
                .map(|k| k.len())
                .chain(std::iter::once("counter".len()))
                .max()
                .unwrap_or(7);
            out.push_str(&format!("{:<cname_w$}  {:>12}\n", "counter", "value"));
            for (name, value) in &self.counters {
                out.push_str(&format!("{name:<cname_w$}  {value:>12}\n"));
            }
        }
        out
    }
}

/// Renders nanoseconds with an adaptive unit (`ns`, `µs`, `ms`, `s`).
fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3}s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttrValue;

    fn span(
        id: SpanId,
        parent: Option<SpanId>,
        name: &'static str,
        thread: u64,
        start_ns: u64,
        end_ns: u64,
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name,
            thread,
            start_ns,
            end_ns,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn topology_merges_siblings_and_sorts_by_name() {
        let trace = Trace {
            spans: vec![
                span(1, None, "train", 0, 0, 100),
                span(3, Some(1), "fit_tree", 1, 10, 20),
                span(2, Some(1), "fit_tree", 2, 5, 15),
                span(4, Some(1), "build_bins", 0, 1, 4),
                span(5, Some(2), "leaf", 2, 6, 7),
            ],
            counters: BTreeMap::new(),
        };
        let expected = "train x1\n  build_bins x1\n  fit_tree x2\n    leaf x1\n";
        assert_eq!(trace.topology(), expected);
    }

    #[test]
    fn topology_is_order_and_thread_invariant() {
        let a = Trace {
            spans: vec![
                span(1, None, "root", 0, 0, 10),
                span(2, Some(1), "kid", 0, 1, 2),
                span(3, Some(1), "kid", 0, 3, 4),
            ],
            counters: BTreeMap::new(),
        };
        let b = Trace {
            spans: vec![
                span(9, Some(7), "kid", 3, 100, 400),
                span(7, None, "root", 1, 50, 900),
                span(8, Some(7), "kid", 2, 60, 80),
            ],
            counters: BTreeMap::new(),
        };
        assert_eq!(a.topology(), b.topology());
        assert_eq!(a.multiset(), b.multiset());
    }

    #[test]
    fn missing_parent_degrades_to_root_not_dropped() {
        let trace = Trace {
            spans: vec![span(2, Some(99), "stray", 0, 0, 1)],
            counters: BTreeMap::new(),
        };
        assert_eq!(trace.topology(), "stray x1\n");
        assert_eq!(
            trace.validate(),
            vec![TraceDefect::OrphanParent {
                span: 2,
                parent: 99
            }]
        );
    }

    #[test]
    fn validate_flags_escaping_and_duplicates() {
        let trace = Trace {
            spans: vec![
                span(1, None, "p", 0, 10, 20),
                span(2, Some(1), "c", 0, 5, 15), // starts before parent, same thread
                span(2, None, "dup", 1, 0, 1),
            ],
            counters: BTreeMap::new(),
        };
        let defects = trace.validate();
        assert!(defects.contains(&TraceDefect::DuplicateId { span: 2 }));
        assert!(defects.contains(&TraceDefect::EscapesParent { span: 2, parent: 1 }));
    }

    #[test]
    fn cross_thread_children_may_outlive_parent_interval() {
        let trace = Trace {
            spans: vec![
                span(1, None, "issue", 0, 0, 5),
                span(2, Some(1), "work", 1, 3, 50),
            ],
            counters: BTreeMap::new(),
        };
        assert!(trace.validate().is_empty());
    }

    #[test]
    fn summary_table_lists_all_names_and_counters() {
        let mut counters = BTreeMap::new();
        counters.insert("sim_cache.hits".to_string(), 7u64);
        let trace = Trace {
            spans: vec![
                span(1, None, "big", 0, 0, 3_000_000),
                span(2, None, "small", 0, 0, 500),
                span(3, None, "small", 0, 0, 700),
            ],
            counters,
        };
        let table = trace.summary_table();
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[0].starts_with("span"));
        assert!(lines[1].starts_with("big"), "biggest total first: {table}");
        assert!(lines[2].contains("small") && lines[2].contains('2'));
        assert!(table.contains("sim_cache.hits") && table.contains('7'));
    }

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000s");
    }

    #[test]
    fn attr_display_is_plain() {
        assert_eq!(AttrValue::UInt(4).to_string(), "4");
        assert_eq!(AttrValue::Str("x".into()).to_string(), "x");
        assert_eq!(AttrValue::Bool(true).to_string(), "true");
    }
}
