//! The `--trace-out` sink: Chrome Trace Event Format, loadable in
//! `chrome://tracing` and Perfetto.
//!
//! Emitted by hand — this crate has no dependencies — as duration events:
//! a `B` (begin) / `E` (end) pair per span, grouped per thread. The format
//! requires strict nesting within a `(pid, tid)` track; recorded spans
//! almost always satisfy that (RAII guards), but guards dropped out of
//! LIFO order or inherited across threads can produce overlapping
//! intervals on one tid, so children are clamped into their enclosing
//! interval before emission. Counter totals become one `C` event.
//!
//! Times: the format wants microseconds; we print `ns/1000.nnn` exactly,
//! keeping full nanosecond resolution without floating point.

use crate::{SpanRecord, Trace};
use std::collections::BTreeMap;

/// Escapes a string for inclusion in a JSON string literal.
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Exact microseconds-with-fraction rendering of a nanosecond count.
fn fmt_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn push_event(
    out: &mut String,
    first: &mut bool,
    phase: char,
    name: &str,
    tid: u64,
    ts_ns: u64,
    args_json: Option<&str>,
) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str("  {\"name\":\"");
    escape_json(name, out);
    out.push_str(&format!(
        "\",\"ph\":\"{phase}\",\"pid\":1,\"tid\":{tid},\"ts\":{}",
        fmt_us(ts_ns)
    ));
    if let Some(args) = args_json {
        out.push_str(",\"args\":");
        out.push_str(args);
    }
    out.push('}');
}

fn attrs_json(span: &SpanRecord) -> Option<String> {
    if span.attrs.is_empty() {
        return None;
    }
    let mut out = String::from("{");
    for (i, (key, value)) in span.attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(key, &mut out);
        out.push_str("\":");
        match value {
            crate::AttrValue::Int(v) => out.push_str(&v.to_string()),
            crate::AttrValue::UInt(v) => out.push_str(&v.to_string()),
            crate::AttrValue::Float(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    // JSON has no NaN/inf; stringify to stay loadable.
                    out.push('"');
                    out.push_str(&v.to_string());
                    out.push('"');
                }
            }
            crate::AttrValue::Bool(v) => out.push_str(&v.to_string()),
            crate::AttrValue::Str(v) => {
                out.push('"');
                escape_json(v, &mut out);
                out.push('"');
            }
        }
    }
    out.push('}');
    Some(out)
}

impl Trace {
    /// Serializes the trace as a Chrome Trace Event Format JSON document.
    pub fn chrome_json(&self) -> String {
        // Group spans by thread; within each tid sort by (start, -end) so
        // enclosing spans come first, then emit with a stack, clamping
        // each span into its enclosing interval. This guarantees the
        // strictly nested B/E structure the viewer requires regardless of
        // how guards were dropped.
        let mut by_tid: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
        for span in &self.spans {
            by_tid.entry(span.thread).or_default().push(span);
        }

        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        for (tid, mut spans) in by_tid {
            spans.sort_by(|a, b| {
                a.start_ns
                    .cmp(&b.start_ns)
                    .then(b.end_ns.cmp(&a.end_ns))
                    .then(a.id.cmp(&b.id))
            });
            // Stack of end times of currently-open emitted spans.
            let mut open_ends: Vec<u64> = Vec::new();
            // Pending E events: (end_ns, name) — emitted when we pass them.
            let mut pending: Vec<(u64, &'static str)> = Vec::new();
            for span in spans {
                let start = span.start_ns;
                let mut end = span.end_ns;
                // Clamp into the innermost open interval.
                while let Some(&enclosing_end) = open_ends.last() {
                    if start >= enclosing_end {
                        let (ts, name) = pending.pop().expect("stacks in sync");
                        push_event(&mut out, &mut first, 'E', name, tid, ts, None);
                        open_ends.pop();
                    } else {
                        if end > enclosing_end {
                            end = enclosing_end;
                        }
                        break;
                    }
                }
                if end < start {
                    end = start;
                }
                push_event(
                    &mut out,
                    &mut first,
                    'B',
                    span.name,
                    tid,
                    start,
                    attrs_json(span).as_deref(),
                );
                open_ends.push(end);
                pending.push((end, span.name));
            }
            while let Some((ts, name)) = pending.pop() {
                push_event(&mut out, &mut first, 'E', name, tid, ts, None);
                open_ends.pop();
            }
        }

        if !self.counters.is_empty() {
            let mut args = String::from("{");
            for (i, (name, value)) in self.counters.iter().enumerate() {
                if i > 0 {
                    args.push(',');
                }
                args.push('"');
                escape_json(name, &mut args);
                args.push_str(&format!("\":{value}"));
            }
            args.push('}');
            push_event(&mut out, &mut first, 'C', "bf_counters", 0, 0, Some(&args));
        }

        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trace;

    fn span(
        id: u64,
        parent: Option<u64>,
        name: &'static str,
        thread: u64,
        start_ns: u64,
        end_ns: u64,
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name,
            thread,
            start_ns,
            end_ns,
            attrs: Vec::new(),
        }
    }

    /// Minimal structural check: B/E events per tid must balance like
    /// parentheses. (The serde_json round-trip lives in the integration
    /// tests; this keeps the unit test dependency-free.)
    fn assert_balanced(json: &str) {
        let mut depth_by_tid: BTreeMap<String, i64> = BTreeMap::new();
        for line in json.lines() {
            let Some(tid_at) = line.find("\"tid\":") else {
                continue;
            };
            let tid: String = line[tid_at + 6..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect();
            let depth = depth_by_tid.entry(tid).or_insert(0);
            if line.contains("\"ph\":\"B\"") {
                *depth += 1;
            } else if line.contains("\"ph\":\"E\"") {
                *depth -= 1;
                assert!(*depth >= 0, "E without matching B: {line}");
            }
        }
        for (tid, depth) in depth_by_tid {
            assert_eq!(depth, 0, "unbalanced events on tid {tid}");
        }
    }

    #[test]
    fn nested_spans_emit_balanced_pairs() {
        let trace = Trace {
            spans: vec![
                span(1, None, "outer", 0, 0, 100),
                span(2, Some(1), "inner", 0, 10, 20),
            ],
            counters: BTreeMap::new(),
        };
        let json = trace.chrome_json();
        assert_balanced(&json);
        assert!(json.starts_with("{\"traceEvents\":["));
        // inner must begin after outer begins and end before outer ends.
        let outer_b = json.find("\"name\":\"outer\",\"ph\":\"B\"").unwrap();
        let inner_b = json.find("\"name\":\"inner\",\"ph\":\"B\"").unwrap();
        let inner_e = json.find("\"name\":\"inner\",\"ph\":\"E\"").unwrap();
        let outer_e = json.find("\"name\":\"outer\",\"ph\":\"E\"").unwrap();
        assert!(outer_b < inner_b && inner_b < inner_e && inner_e < outer_e);
    }

    #[test]
    fn overlapping_spans_on_one_tid_are_clamped() {
        // Guard dropped out of order: a=[0,50], b=[10,80] on the same tid.
        let trace = Trace {
            spans: vec![span(1, None, "a", 0, 0, 50), span(2, None, "b", 0, 10, 80)],
            counters: BTreeMap::new(),
        };
        assert_balanced(&trace.chrome_json());
    }

    #[test]
    fn timestamps_are_exact_microseconds() {
        assert_eq!(fmt_us(0), "0.000");
        assert_eq!(fmt_us(1), "0.001");
        assert_eq!(fmt_us(1_234_567), "1234.567");
    }

    #[test]
    fn attrs_and_names_are_escaped() {
        let mut s = span(1, None, "fit", 0, 0, 10);
        s.attrs
            .push(("label", crate::AttrValue::Str("a\"b\\c\nd".into())));
        s.attrs.push(("rows", crate::AttrValue::UInt(42)));
        let trace = Trace {
            spans: vec![s],
            counters: BTreeMap::new(),
        };
        let json = trace.chrome_json();
        assert!(json.contains(r#""label":"a\"b\\c\nd""#), "{json}");
        assert!(json.contains(r#""rows":42"#));
    }

    #[test]
    fn counters_emit_a_counter_event() {
        let mut counters = BTreeMap::new();
        counters.insert("sim_cache.hits".to_string(), 9u64);
        let trace = Trace {
            spans: Vec::new(),
            counters,
        };
        let json = trace.chrome_json();
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"sim_cache.hits\":9"));
    }

    #[test]
    fn empty_trace_is_still_valid_shape() {
        let trace = Trace::default();
        let json = trace.chrome_json();
        assert!(json.contains("\"traceEvents\""));
        assert_balanced(&json);
    }
}
