//! # bf-trace
//!
//! Structured tracing for the BlackForest toolchain: the observability the
//! paper demands of GPU kernels, applied to our own pipeline. The whole
//! method treats the GPU as a black box read through counters and elapsed
//! times; this crate gives the toolchain the same treatment — every phase
//! of a `train` run (sweep → simulate → fit → select → regress) and every
//! served request becomes a *span* with nanosecond timing, a parent, and
//! key=value attributes, plus process-wide named counters.
//!
//! Design constraints, in order:
//!
//! 1. **Zero dependencies.** This crate is `std` only, so every other crate
//!    can depend on it without dragging anything into their builds.
//! 2. **Disabled means free.** Tracing is off by default; a [`Span::enter`]
//!    with the recorder disabled is one relaxed atomic load and no clock
//!    read, no allocation, no lock. The simulator's per-launch spans must
//!    not show up in `bench_sim` (CI asserts < 1% overhead).
//! 3. **Thread-pool-correct parenting.** Work fanned out across the rayon
//!    pool parents back to the span that issued it via
//!    [`with_parent`], not to whatever happened to run last on the worker.
//! 4. **Topology is deterministic; durations are not.** Tests pin span
//!    *names, nesting and counts* (identical under any thread interleaving
//!    or cache state), never timings.
//!
//! ## Span model
//!
//! A span is recorded once, at close, as a [`SpanRecord`]: id, parent id,
//! static name, thread, start/end nanoseconds (monotonic, one process-wide
//! anchor), and attributes. Parenting comes from a thread-local stack of
//! open spans; when the stack is empty the thread-inherited parent set by
//! [`with_parent`] applies (that is how a launch simulated on a rayon
//! worker becomes a child of `profile_applications` on the main thread).
//!
//! ## Sinks
//!
//! * [`Trace::summary_table`] — per-name count/total/mean/max, the
//!   `--timing` output.
//! * [`Trace::chrome_json`] — a `chrome://tracing` / Perfetto-loadable
//!   event file of `B`/`E` pairs, the `--trace-out` output.
//! * [`Trace::topology`] / [`Trace::multiset`] — canonical, timing-free
//!   projections used by the golden-trace and concurrency test suites.
//!
//! ```
//! let ((), trace) = bf_trace::capture(|| {
//!     let _outer = bf_trace::span!("fit_forest", trees = 2u64);
//!     for _ in 0..2 {
//!         let _t = bf_trace::span!("fit_tree");
//!     }
//!     bf_trace::counter!("sim_cache.hits", 3);
//! });
//! assert_eq!(trace.spans.len(), 3);
//! assert_eq!(trace.counters["sim_cache.hits"], 3);
//! assert!(trace.topology().contains("fit_tree x2"));
//! ```

mod chrome;
mod report;

pub use report::TraceDefect;

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Unique identifier of one span within the process (never 0).
pub type SpanId = u64;

/// An attribute value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// Free-form text.
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::Int(v) => write!(f, "{v}"),
            AttrValue::UInt(v) => write!(f, "{v}"),
            AttrValue::Float(v) => write!(f, "{v}"),
            AttrValue::Str(v) => write!(f, "{v}"),
            AttrValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! impl_attr_from {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {$(
        impl From<$t> for AttrValue {
            fn from(v: $t) -> AttrValue {
                AttrValue::$variant(v as $conv)
            }
        }
    )*};
}
impl_attr_from!(
    i8 => Int as i64, i16 => Int as i64, i32 => Int as i64, i64 => Int as i64,
    u8 => UInt as u64, u16 => UInt as u64, u32 => UInt as u64, u64 => UInt as u64,
    usize => UInt as u64, f32 => Float as f64, f64 => Float as f64,
);

impl From<bool> for AttrValue {
    fn from(v: bool) -> AttrValue {
        AttrValue::Bool(v)
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> AttrValue {
        AttrValue::Str(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> AttrValue {
        AttrValue::Str(v.to_string())
    }
}

/// One closed span, as stored by the recorder.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Process-unique span id.
    pub id: SpanId,
    /// Parent span id, `None` for roots.
    pub parent: Option<SpanId>,
    /// Static span name (aggregation key).
    pub name: &'static str,
    /// Dense per-thread index (chrome `tid`).
    pub thread: u64,
    /// Start, nanoseconds since the process trace anchor.
    pub start_ns: u64,
    /// End, nanoseconds since the process trace anchor.
    pub end_ns: u64,
    /// `key = value` attributes, in insertion order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// A drained trace: every span closed during the session plus the counter
/// totals.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Closed spans, in close order.
    pub spans: Vec<SpanRecord>,
    /// Named counter totals.
    pub counters: BTreeMap<String, u64>,
}

// ---------------------------------------------------------------------------
// The global recorder
// ---------------------------------------------------------------------------

struct Recorder {
    enabled: AtomicBool,
    /// Bumped on every drain; guards from an older epoch discard themselves.
    epoch: AtomicU64,
    next_id: AtomicU64,
    next_thread: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
    counters: Mutex<BTreeMap<String, u64>>,
    /// Held across a [`capture`] so concurrent captures serialize.
    session: Mutex<()>,
}

static RECORDER: Recorder = Recorder {
    enabled: AtomicBool::new(false),
    epoch: AtomicU64::new(0),
    next_id: AtomicU64::new(1),
    next_thread: AtomicU64::new(0),
    spans: Mutex::new(Vec::new()),
    counters: Mutex::new(BTreeMap::new()),
    session: Mutex::new(()),
};

/// The process-wide monotonic clock anchor (first use wins).
fn now_ns() -> u64 {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    ANCHOR.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

fn lock_ignoring_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

thread_local! {
    /// Open spans on this thread: `(span id, epoch)`, innermost last.
    static STACK: RefCell<Vec<(SpanId, u64)>> = const { RefCell::new(Vec::new()) };
    /// Parent inherited from another thread via [`with_parent`].
    static INHERITED: Cell<Option<(SpanId, u64)>> = const { Cell::new(None) };
    /// Dense thread index, assigned on first trace activity.
    static THREAD_INDEX: Cell<u64> = const { Cell::new(u64::MAX) };
}

fn thread_index() -> u64 {
    THREAD_INDEX.with(|c| {
        let v = c.get();
        if v != u64::MAX {
            return v;
        }
        let assigned = RECORDER.next_thread.fetch_add(1, Ordering::Relaxed);
        c.set(assigned);
        assigned
    })
}

/// Whether the recorder is currently collecting.
pub fn enabled() -> bool {
    RECORDER.enabled.load(Ordering::Relaxed)
}

/// Starts collecting spans and counters.
pub fn enable() {
    RECORDER.enabled.store(true, Ordering::SeqCst);
}

/// Stops collecting. Already-open spans still record on drop (they belong
/// to the current epoch) until [`drain`] is called.
pub fn disable() {
    RECORDER.enabled.store(false, Ordering::SeqCst);
}

/// Takes everything recorded so far and starts a fresh epoch. Spans still
/// open when `drain` runs belong to the old epoch and are discarded on
/// drop — close your spans before draining.
pub fn drain() -> Trace {
    RECORDER.epoch.fetch_add(1, Ordering::SeqCst);
    let spans = std::mem::take(&mut *lock_ignoring_poison(&RECORDER.spans));
    let counters = std::mem::take(&mut *lock_ignoring_poison(&RECORDER.counters));
    Trace { spans, counters }
}

/// Runs `f` with tracing enabled and returns its result together with the
/// drained trace. Captures serialize on a process-wide session lock, so
/// concurrent tests cannot contaminate each other; the recorder is disabled
/// again even if `f` panics.
pub fn capture<T>(f: impl FnOnce() -> T) -> (T, Trace) {
    let _session = lock_ignoring_poison(&RECORDER.session);
    let _ = drain(); // discard leftovers from crashed sessions
    struct DisableOnDrop;
    impl Drop for DisableOnDrop {
        fn drop(&mut self) {
            disable();
        }
    }
    let armed = DisableOnDrop;
    enable();
    let out = f();
    drop(armed);
    (out, drain())
}

/// The innermost open span on this thread (or the inherited parent), if
/// tracing is enabled.
pub fn current_span() -> Option<SpanId> {
    if !enabled() {
        return None;
    }
    let epoch = RECORDER.epoch.load(Ordering::Relaxed);
    let stacked = STACK.with(|s| {
        s.borrow()
            .iter()
            .rev()
            .find(|(_, e)| *e == epoch)
            .map(|(id, _)| *id)
    });
    stacked.or_else(|| INHERITED.with(|c| c.get().and_then(|(id, e)| (e == epoch).then_some(id))))
}

/// Runs `f` with `parent` installed as this thread's fallback parent: spans
/// opened while no other span is open on this thread become children of
/// `parent`. This is how work fanned out over a thread pool stays attached
/// to the span that issued it. The previous fallback is restored on exit
/// (nesting works), and the call is a plain passthrough when tracing is
/// disabled or `parent` is `None`.
pub fn with_parent<T>(parent: Option<SpanId>, f: impl FnOnce() -> T) -> T {
    let Some(parent) = parent else { return f() };
    if !enabled() {
        return f();
    }
    let epoch = RECORDER.epoch.load(Ordering::Relaxed);
    let previous = INHERITED.with(|c| c.replace(Some((parent, epoch))));
    struct Restore(Option<(SpanId, u64)>);
    impl Drop for Restore {
        fn drop(&mut self) {
            INHERITED.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(previous);
    f()
}

/// Adds `delta` to the named counter (no-op while disabled).
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    let mut counters = lock_ignoring_poison(&RECORDER.counters);
    match counters.get_mut(name) {
        Some(v) => *v += delta,
        None => {
            counters.insert(name.to_string(), delta);
        }
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

struct ActiveSpan {
    id: SpanId,
    parent: Option<SpanId>,
    name: &'static str,
    epoch: u64,
    start_ns: u64,
    attrs: Vec<(&'static str, AttrValue)>,
}

/// An RAII span guard: created by [`Span::enter`] (usually via the
/// [`span!`] macro), recorded when dropped. While tracing is disabled the
/// guard is inert and costs one atomic load.
pub struct Span {
    inner: Option<ActiveSpan>,
}

impl Span {
    /// Opens a span. Parent is the innermost open span on this thread, or
    /// the [`with_parent`] fallback, or none (a root).
    pub fn enter(name: &'static str) -> Span {
        if !enabled() {
            return Span { inner: None };
        }
        let epoch = RECORDER.epoch.load(Ordering::Relaxed);
        let parent = current_span();
        let id = RECORDER.next_id.fetch_add(1, Ordering::Relaxed);
        STACK.with(|s| s.borrow_mut().push((id, epoch)));
        Span {
            inner: Some(ActiveSpan {
                id,
                parent,
                name,
                epoch,
                start_ns: now_ns(),
                attrs: Vec::new(),
            }),
        }
    }

    /// Whether this guard is actually recording (use to skip attribute
    /// computation entirely when tracing is off).
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// This span's id, when active.
    pub fn id(&self) -> Option<SpanId> {
        self.inner.as_ref().map(|a| a.id)
    }

    /// Attaches a `key = value` attribute (no-op when inert).
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(active) = self.inner.as_mut() {
            active.attrs.push((key, value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.inner.take() else {
            return;
        };
        // Pop this id wherever it sits: guards dropped out of LIFO order
        // (stored in collections, moved across scopes) must not corrupt
        // the parenting of their siblings.
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|(id, _)| *id == active.id) {
                stack.remove(pos);
            }
        });
        // Record only if the session the span belongs to is still current.
        if RECORDER.epoch.load(Ordering::Relaxed) != active.epoch {
            return;
        }
        let record = SpanRecord {
            id: active.id,
            parent: active.parent,
            name: active.name,
            thread: thread_index(),
            start_ns: active.start_ns,
            end_ns: now_ns().max(active.start_ns),
            attrs: active.attrs,
        };
        lock_ignoring_poison(&RECORDER.spans).push(record);
    }
}

/// Opens an RAII span: `span!("name")` or
/// `span!("name", rows = n, cached = true)`. Attribute expressions are only
/// evaluated when tracing is enabled.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($name)
    };
    ($name:expr, $($key:ident = $val:expr),+ $(,)?) => {{
        let mut __bf_span = $crate::Span::enter($name);
        if __bf_span.is_active() {
            $(__bf_span.attr(stringify!($key), $val);)+
        }
        __bf_span
    }};
}

/// Bumps a named counter: `counter!("sim_cache.hits")` or
/// `counter!("rows", n)`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::counter_add($name, 1)
    };
    ($name:expr, $delta:expr) => {
        $crate::counter_add($name, $delta)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_are_inert_and_record_nothing() {
        // Not inside a capture: recorder is disabled.
        let mut sp = span!("ghost", rows = 3u64);
        assert!(!sp.is_active());
        assert!(sp.id().is_none());
        sp.attr("extra", 1u64);
        drop(sp);
        counter!("ghost.count");
        let (_, trace) = capture(|| {});
        assert!(
            trace.spans.is_empty(),
            "ghost span leaked: {:?}",
            trace.spans
        );
        assert!(trace.counters.is_empty());
    }

    #[test]
    fn nesting_parents_spans_on_one_thread() {
        let (_, trace) = capture(|| {
            let outer = span!("outer");
            let outer_id = outer.id().unwrap();
            {
                let inner = span!("inner");
                assert_eq!(
                    trace_parent(&inner),
                    Some(outer_id),
                    "inner should parent to outer"
                );
            }
        });
        assert_eq!(trace.spans.len(), 2);
        let outer = trace.spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = trace.spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.end_ns <= outer.end_ns);
    }

    fn trace_parent(span: &Span) -> Option<SpanId> {
        span.inner.as_ref().and_then(|a| a.parent)
    }

    #[test]
    fn with_parent_attaches_cross_thread_work() {
        let (_, trace) = capture(|| {
            let root = span!("fanout");
            let root_id = root.id();
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    std::thread::spawn(move || {
                        with_parent(root_id, || {
                            let _sp = span!("worker_item");
                        })
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        let root = trace.spans.iter().find(|s| s.name == "fanout").unwrap();
        let items: Vec<_> = trace
            .spans
            .iter()
            .filter(|s| s.name == "worker_item")
            .collect();
        assert_eq!(items.len(), 4);
        for item in items {
            assert_eq!(item.parent, Some(root.id));
        }
    }

    #[test]
    fn with_parent_restores_previous_fallback() {
        let (_, trace) = capture(|| {
            let a = span!("a");
            let b = span!("b");
            let (a_id, b_id) = (a.id(), b.id());
            std::thread::spawn(move || {
                with_parent(a_id, || {
                    with_parent(b_id, || {
                        let _x = span!("under_b");
                    });
                    let _y = span!("under_a");
                });
            })
            .join()
            .unwrap();
        });
        let find = |n: &str| trace.spans.iter().find(|s| s.name == n).unwrap();
        assert_eq!(find("under_b").parent, Some(find("b").id));
        assert_eq!(find("under_a").parent, Some(find("a").id));
    }

    #[test]
    fn counters_accumulate() {
        let (_, trace) = capture(|| {
            counter!("hits");
            counter!("hits", 2);
            counter!("misses", 5);
        });
        assert_eq!(trace.counters["hits"], 3);
        assert_eq!(trace.counters["misses"], 5);
    }

    #[test]
    fn attrs_are_recorded_with_values() {
        let (_, trace) = capture(|| {
            let _sp = span!("fit", rows = 12u64, name = "reduce1", frac = 0.5f64);
        });
        let sp = &trace.spans[0];
        assert_eq!(sp.attrs[0], ("rows", AttrValue::UInt(12)));
        assert_eq!(sp.attrs[1], ("name", AttrValue::Str("reduce1".into())));
        assert_eq!(sp.attrs[2], ("frac", AttrValue::Float(0.5)));
    }

    #[test]
    fn spans_open_across_drain_are_discarded() {
        let _session = lock_ignoring_poison(&RECORDER.session);
        let _ = drain();
        enable();
        let stale = span!("stale");
        disable();
        let trace = drain(); // bumps the epoch while `stale` is open
        assert!(trace.spans.is_empty());
        enable();
        drop(stale); // must not record into the new epoch
        disable();
        let trace = drain();
        assert!(trace.spans.is_empty(), "stale span crossed epochs");
    }

    #[test]
    fn non_lifo_drop_keeps_stack_consistent() {
        let (_, trace) = capture(|| {
            let a = span!("a");
            let b = span!("b");
            drop(a); // out of order
            let c = span!("c"); // must parent to b (still open), not a
            let c_parent = trace_parent(&c);
            assert_eq!(c_parent, b.id());
        });
        assert_eq!(trace.spans.len(), 3);
    }

    #[test]
    fn capture_disables_even_on_panic() {
        let result = std::panic::catch_unwind(|| {
            capture(|| {
                let _sp = span!("doomed");
                panic!("boom");
            })
        });
        assert!(result.is_err());
        assert!(!enabled(), "recorder left enabled after panic");
        // And a later capture starts clean.
        let (_, trace) = capture(|| {});
        assert!(trace.spans.is_empty());
    }
}
