//! Stress test: hammer the recorder from many rayon workers at once and
//! assert zero lost or orphaned spans (ISSUE 5 tentpole harness).
//!
//! A single `#[test]` fn on purpose: it mutates `RAYON_NUM_THREADS`, which
//! is process-global, so it must not race with sibling tests in the same
//! binary. (Each file under `tests/` is its own process.)

use bf_trace::{capture, counter, span, with_parent};
use rayon::prelude::*;

#[test]
fn rayon_hammer_loses_nothing() {
    // SAFETY: this is the only test in this binary; no other thread is
    // reading the environment concurrently.
    unsafe { std::env::set_var("RAYON_NUM_THREADS", "8") };

    const ITEMS: usize = 4_000;
    const ROUNDS: usize = 3;

    for round in 0..ROUNDS {
        let (sum, trace) = capture(|| {
            let root = span!("hammer_root", round = round as u64);
            let parent = root.id();
            let partials: Vec<u64> = (0..ITEMS)
                .into_par_iter()
                .map(|i| {
                    with_parent(parent, || {
                        let _item = span!("item", index = i as u64);
                        {
                            let mut leaf = span!("leaf");
                            leaf.attr("depth", 2u64);
                        }
                        counter!("items_processed");
                        if i % 3 == 0 {
                            counter!("every_third");
                        }
                        i as u64
                    })
                })
                .collect();
            partials.iter().sum::<u64>()
        });

        // The traced computation itself is untouched by tracing.
        assert_eq!(sum, (ITEMS as u64 - 1) * ITEMS as u64 / 2);

        // Zero lost spans: every item and leaf recorded, exactly once.
        let multiset = trace.multiset();
        assert_eq!(multiset.get("hammer_root").copied(), Some(1));
        assert_eq!(multiset.get("item").copied(), Some(ITEMS as u64));
        assert_eq!(multiset.get("leaf").copied(), Some(ITEMS as u64));
        assert_eq!(trace.spans.len(), 1 + 2 * ITEMS);

        // Zero orphaned spans: every parent id resolves, no duplicate ids,
        // timestamps monotone per span.
        let defects = trace.validate();
        assert!(defects.is_empty(), "round {round}: {defects:?}");

        // Every item parents to the root; every leaf parents to an item.
        let root_id = trace
            .spans
            .iter()
            .find(|s| s.name == "hammer_root")
            .expect("root recorded")
            .id;
        let item_ids: std::collections::BTreeSet<u64> = trace
            .spans
            .iter()
            .filter(|s| s.name == "item")
            .map(|s| s.id)
            .collect();
        for s in &trace.spans {
            match s.name {
                "item" => assert_eq!(s.parent, Some(root_id), "orphaned item {:?}", s),
                "leaf" => assert!(
                    s.parent.is_some_and(|p| item_ids.contains(&p)),
                    "orphaned leaf {s:?}"
                ),
                _ => {}
            }
        }

        // Counters accumulated exactly, no torn updates under contention.
        assert_eq!(trace.counters["items_processed"], ITEMS as u64);
        assert_eq!(trace.counters["every_third"], ITEMS.div_ceil(3) as u64);

        // Canonical topology is the same every round, independent of how
        // the work-stealing pool interleaved the items.
        let expected = format!("hammer_root x1\n  item x{ITEMS}\n    leaf x{ITEMS}\n");
        assert_eq!(trace.topology(), expected, "round {round}");
    }

    // And the whole drill under a sequential pool must agree with the
    // parallel runs on everything but timings.
    unsafe { std::env::set_var("RAYON_NUM_THREADS", "1") };
    let (_, sequential) = capture(|| {
        let root = span!("hammer_root", round = 99u64);
        let parent = root.id();
        let _v: Vec<u64> = (0..ITEMS)
            .into_par_iter()
            .map(|i| {
                with_parent(parent, || {
                    let _item = span!("item", index = i as u64);
                    let _leaf = span!("leaf");
                    counter!("items_processed");
                    i as u64
                })
            })
            .collect();
    });
    assert_eq!(sequential.spans.len(), 1 + 2 * ITEMS);
    assert!(sequential.validate().is_empty());
    assert_eq!(
        sequential.topology(),
        format!("hammer_root x1\n  item x{ITEMS}\n    leaf x{ITEMS}\n")
    );

    unsafe { std::env::remove_var("RAYON_NUM_THREADS") };
}
