//! Property-based invariants of the span tree (ISSUE 5, satellite 3).
//!
//! Arbitrary interleaved enter/exit/attribute/counter sequences — including
//! guards dropped out of LIFO order — must never panic, must always yield a
//! balanced tree (every opened span recorded exactly once, unique ids,
//! parents present, monotone timestamps), and the Chrome-JSON export must
//! round-trip through serde_json as strictly balanced `B`/`E` event pairs.

use bf_trace::{capture, counter, span, Span, TraceDefect};
use proptest::prelude::*;
use serde::Value;

/// The vendored serde_json only deserializes into `Deserialize` types;
/// this shim captures the raw value tree so the test can walk it.
struct RawJson(Value);

impl serde::Deserialize for RawJson {
    fn deserialize_value(v: &Value) -> Result<RawJson, serde::Error> {
        Ok(RawJson(v.clone()))
    }
}

/// One step of an interleaved tracing session.
#[derive(Debug, Clone)]
enum Op {
    /// Open a span with the name picked from a fixed pool.
    Open(usize),
    /// Close the open guard at this index (mod the number open) — indices
    /// other than the top exercise non-LIFO drops.
    Close(usize),
    /// Attach an attribute to the open guard at this index.
    Attr(usize),
    /// Bump a counter picked from a fixed pool.
    Count(usize),
}

const NAMES: [&str; 5] = ["alpha", "beta", "gamma", "delta", "epsilon"];
const COUNTERS: [&str; 3] = ["hits", "misses", "rows"];

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..NAMES.len()).prop_map(Op::Open),
        (0usize..16).prop_map(Op::Close),
        (0usize..16).prop_map(Op::Attr),
        (0usize..COUNTERS.len()).prop_map(Op::Count),
    ]
}

/// Replays an op sequence inside a capture; returns how many spans were
/// opened (and therefore closed — leftovers are dropped before drain) and
/// the per-counter expectations.
fn replay(ops: &[Op]) -> (u64, [u64; 3], bf_trace::Trace) {
    let mut opened = 0u64;
    let mut expected_counts = [0u64; 3];
    let ((), trace) = capture(|| {
        let mut open: Vec<Span> = Vec::new();
        for op in ops {
            match *op {
                Op::Open(name) => {
                    open.push(span!(NAMES[name]));
                    opened += 1;
                }
                Op::Close(idx) => {
                    if !open.is_empty() {
                        let idx = idx % open.len();
                        drop(open.remove(idx));
                    }
                }
                Op::Attr(idx) => {
                    if !open.is_empty() {
                        let idx = idx % open.len();
                        open[idx].attr("tag", idx as u64);
                    }
                }
                Op::Count(idx) => {
                    counter!(COUNTERS[idx]);
                    expected_counts[idx] += 1;
                }
            }
        }
        // Close everything still open so the drain sees the full session.
        drop(open);
    });
    (opened, expected_counts, trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every opened span is recorded exactly once with a unique id, a
    /// parent that exists, and end >= start. Non-LIFO drops may produce
    /// child intervals extending past the parent's end — that is the only
    /// defect class `validate` may report for these sequences.
    #[test]
    fn interleaved_sessions_yield_balanced_trees(
        ops in prop::collection::vec(op_strategy(), 0..60),
    ) {
        let (opened, expected_counts, trace) = replay(&ops);
        prop_assert_eq!(trace.spans.len() as u64, opened);
        for defect in trace.validate() {
            match defect {
                TraceDefect::EscapesParent { .. } => {} // legal under non-LIFO drops
                other => prop_assert!(false, "structural defect: {}", other),
            }
        }
        for (i, name) in COUNTERS.iter().enumerate() {
            let got = trace.counters.get(*name).copied().unwrap_or(0);
            prop_assert_eq!(got, expected_counts[i], "counter {}", name);
        }
        // The multiset of names matches what was opened.
        let opened_by_name = ops.iter().fold([0u64; 5], |mut acc, op| {
            if let Op::Open(n) = op {
                acc[*n] += 1;
            }
            acc
        });
        for (i, name) in NAMES.iter().enumerate() {
            let got = trace.multiset().get(name).copied().unwrap_or(0);
            prop_assert_eq!(got, opened_by_name[i], "span {}", name);
        }
    }

    /// LIFO-only sessions (plain RAII nesting) are fully defect-free and
    /// their topology accounts for every span.
    #[test]
    fn lifo_sessions_are_defect_free(
        depths in prop::collection::vec(0usize..NAMES.len(), 1..40),
    ) {
        let ((), trace) = capture(|| {
            fn descend(depths: &[usize]) {
                if let Some((&first, rest)) = depths.split_first() {
                    let _guard = span!(NAMES[first]);
                    descend(rest);
                }
            }
            descend(&depths);
        });
        prop_assert_eq!(trace.spans.len(), depths.len());
        prop_assert!(trace.validate().is_empty(), "{:?}", trace.validate());
        // Strict nesting: topology is a single chain, one name per line.
        let topo = trace.topology();
        prop_assert_eq!(topo.lines().count(), depths.len());
        for line in topo.lines() {
            prop_assert!(line.trim_end().ends_with("x1"), "chain broken: {}", topo);
        }
    }

    /// The Chrome export of any session parses as JSON and its B/E events
    /// balance like parentheses within every tid, with monotone timestamps.
    #[test]
    fn chrome_export_round_trips_as_balanced_event_pairs(
        ops in prop::collection::vec(op_strategy(), 0..60),
    ) {
        let (_, _, trace) = replay(&ops);
        let json = trace.chrome_json();
        let RawJson(value) = serde_json::from_str(&json).expect("chrome export must parse");
        let Value::Seq(events) = value.field("traceEvents") else {
            panic!("traceEvents must be an array");
        };
        let mut depth_by_tid = std::collections::BTreeMap::new();
        let mut last_ts_by_tid: std::collections::BTreeMap<u64, f64> =
            std::collections::BTreeMap::new();
        let mut duration_events = 0usize;
        for event in events {
            let Value::Str(phase) = event.field("ph") else {
                panic!("event missing ph: {event:?}");
            };
            let tid = event.field("tid").as_u64().expect("tid");
            let ts = event.field("ts").as_f64().expect("ts");
            if matches!(phase.as_str(), "B" | "E") {
                // Duration events stream in time order per tid; counter
                // events ("C") carry their own timestamp and are exempt.
                if let Some(&prev) = last_ts_by_tid.get(&tid) {
                    prop_assert!(ts >= prev, "timestamps regress on tid {}", tid);
                }
                last_ts_by_tid.insert(tid, ts);
            }
            match phase.as_str() {
                "B" => {
                    *depth_by_tid.entry(tid).or_insert(0i64) += 1;
                    duration_events += 1;
                }
                "E" => {
                    let depth = depth_by_tid.entry(tid).or_insert(0i64);
                    *depth -= 1;
                    prop_assert!(*depth >= 0, "E without B on tid {}", tid);
                }
                "C" => {}
                other => prop_assert!(false, "unexpected phase {}", other),
            }
        }
        for (tid, depth) in depth_by_tid {
            prop_assert_eq!(depth, 0, "unbalanced events on tid {}", tid);
        }
        prop_assert_eq!(duration_events, trace.spans.len());
    }
}
