/root/repo/target/debug/examples/quickstart-4324be18a6339909.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-4324be18a6339909.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
