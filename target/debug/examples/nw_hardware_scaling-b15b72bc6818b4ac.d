/root/repo/target/debug/examples/nw_hardware_scaling-b15b72bc6818b4ac.d: examples/nw_hardware_scaling.rs

/root/repo/target/debug/examples/nw_hardware_scaling-b15b72bc6818b4ac: examples/nw_hardware_scaling.rs

examples/nw_hardware_scaling.rs:
