/root/repo/target/debug/examples/nw_hardware_scaling-698b768dec2211ce.d: examples/nw_hardware_scaling.rs Cargo.toml

/root/repo/target/debug/examples/libnw_hardware_scaling-698b768dec2211ce.rmeta: examples/nw_hardware_scaling.rs Cargo.toml

examples/nw_hardware_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
