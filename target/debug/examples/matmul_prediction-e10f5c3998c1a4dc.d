/root/repo/target/debug/examples/matmul_prediction-e10f5c3998c1a4dc.d: examples/matmul_prediction.rs Cargo.toml

/root/repo/target/debug/examples/libmatmul_prediction-e10f5c3998c1a4dc.rmeta: examples/matmul_prediction.rs Cargo.toml

examples/matmul_prediction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
