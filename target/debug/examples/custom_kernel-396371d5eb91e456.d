/root/repo/target/debug/examples/custom_kernel-396371d5eb91e456.d: examples/custom_kernel.rs

/root/repo/target/debug/examples/custom_kernel-396371d5eb91e456: examples/custom_kernel.rs

examples/custom_kernel.rs:
