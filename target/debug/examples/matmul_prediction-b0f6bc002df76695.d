/root/repo/target/debug/examples/matmul_prediction-b0f6bc002df76695.d: examples/matmul_prediction.rs Cargo.toml

/root/repo/target/debug/examples/libmatmul_prediction-b0f6bc002df76695.rmeta: examples/matmul_prediction.rs Cargo.toml

examples/matmul_prediction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
