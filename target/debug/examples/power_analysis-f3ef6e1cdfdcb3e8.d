/root/repo/target/debug/examples/power_analysis-f3ef6e1cdfdcb3e8.d: examples/power_analysis.rs

/root/repo/target/debug/examples/power_analysis-f3ef6e1cdfdcb3e8: examples/power_analysis.rs

examples/power_analysis.rs:
