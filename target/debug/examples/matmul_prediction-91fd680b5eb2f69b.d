/root/repo/target/debug/examples/matmul_prediction-91fd680b5eb2f69b.d: examples/matmul_prediction.rs

/root/repo/target/debug/examples/matmul_prediction-91fd680b5eb2f69b: examples/matmul_prediction.rs

examples/matmul_prediction.rs:
