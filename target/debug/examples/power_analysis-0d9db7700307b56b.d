/root/repo/target/debug/examples/power_analysis-0d9db7700307b56b.d: examples/power_analysis.rs Cargo.toml

/root/repo/target/debug/examples/libpower_analysis-0d9db7700307b56b.rmeta: examples/power_analysis.rs Cargo.toml

examples/power_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
