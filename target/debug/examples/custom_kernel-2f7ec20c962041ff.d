/root/repo/target/debug/examples/custom_kernel-2f7ec20c962041ff.d: examples/custom_kernel.rs

/root/repo/target/debug/examples/custom_kernel-2f7ec20c962041ff: examples/custom_kernel.rs

examples/custom_kernel.rs:
