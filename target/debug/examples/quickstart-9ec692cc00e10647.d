/root/repo/target/debug/examples/quickstart-9ec692cc00e10647.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9ec692cc00e10647: examples/quickstart.rs

examples/quickstart.rs:
