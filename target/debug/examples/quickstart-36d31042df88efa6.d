/root/repo/target/debug/examples/quickstart-36d31042df88efa6.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-36d31042df88efa6: examples/quickstart.rs

examples/quickstart.rs:
