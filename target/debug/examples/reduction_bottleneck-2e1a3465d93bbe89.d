/root/repo/target/debug/examples/reduction_bottleneck-2e1a3465d93bbe89.d: examples/reduction_bottleneck.rs

/root/repo/target/debug/examples/reduction_bottleneck-2e1a3465d93bbe89: examples/reduction_bottleneck.rs

examples/reduction_bottleneck.rs:
