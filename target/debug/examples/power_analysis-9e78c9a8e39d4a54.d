/root/repo/target/debug/examples/power_analysis-9e78c9a8e39d4a54.d: examples/power_analysis.rs

/root/repo/target/debug/examples/power_analysis-9e78c9a8e39d4a54: examples/power_analysis.rs

examples/power_analysis.rs:
