/root/repo/target/debug/examples/nw_hardware_scaling-adbbc45d1f7b1da3.d: examples/nw_hardware_scaling.rs

/root/repo/target/debug/examples/nw_hardware_scaling-adbbc45d1f7b1da3: examples/nw_hardware_scaling.rs

examples/nw_hardware_scaling.rs:
