/root/repo/target/debug/examples/reduction_bottleneck-dbdbf140c746fb03.d: examples/reduction_bottleneck.rs Cargo.toml

/root/repo/target/debug/examples/libreduction_bottleneck-dbdbf140c746fb03.rmeta: examples/reduction_bottleneck.rs Cargo.toml

examples/reduction_bottleneck.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
