/root/repo/target/debug/examples/nw_hardware_scaling-f4b8a2b478a69610.d: examples/nw_hardware_scaling.rs Cargo.toml

/root/repo/target/debug/examples/libnw_hardware_scaling-f4b8a2b478a69610.rmeta: examples/nw_hardware_scaling.rs Cargo.toml

examples/nw_hardware_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
