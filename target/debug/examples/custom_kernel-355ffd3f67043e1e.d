/root/repo/target/debug/examples/custom_kernel-355ffd3f67043e1e.d: examples/custom_kernel.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_kernel-355ffd3f67043e1e.rmeta: examples/custom_kernel.rs Cargo.toml

examples/custom_kernel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
