/root/repo/target/debug/examples/reduction_bottleneck-e3ae7a1970fc900d.d: examples/reduction_bottleneck.rs Cargo.toml

/root/repo/target/debug/examples/libreduction_bottleneck-e3ae7a1970fc900d.rmeta: examples/reduction_bottleneck.rs Cargo.toml

examples/reduction_bottleneck.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
