/root/repo/target/debug/examples/matmul_prediction-6f137be79f3bb0f9.d: examples/matmul_prediction.rs

/root/repo/target/debug/examples/matmul_prediction-6f137be79f3bb0f9: examples/matmul_prediction.rs

examples/matmul_prediction.rs:
