/root/repo/target/debug/examples/reduction_bottleneck-bb4b08c026fa82c5.d: examples/reduction_bottleneck.rs

/root/repo/target/debug/examples/reduction_bottleneck-bb4b08c026fa82c5: examples/reduction_bottleneck.rs

examples/reduction_bottleneck.rs:
