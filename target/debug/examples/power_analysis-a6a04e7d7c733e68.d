/root/repo/target/debug/examples/power_analysis-a6a04e7d7c733e68.d: examples/power_analysis.rs Cargo.toml

/root/repo/target/debug/examples/libpower_analysis-a6a04e7d7c733e68.rmeta: examples/power_analysis.rs Cargo.toml

examples/power_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
