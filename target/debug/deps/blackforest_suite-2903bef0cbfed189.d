/root/repo/target/debug/deps/blackforest_suite-2903bef0cbfed189.d: src/lib.rs

/root/repo/target/debug/deps/libblackforest_suite-2903bef0cbfed189.rlib: src/lib.rs

/root/repo/target/debug/deps/libblackforest_suite-2903bef0cbfed189.rmeta: src/lib.rs

src/lib.rs:
