/root/repo/target/debug/deps/ext_power-0c3a4b47648e04df.d: crates/bench/src/bin/ext_power.rs

/root/repo/target/debug/deps/ext_power-0c3a4b47648e04df: crates/bench/src/bin/ext_power.rs

crates/bench/src/bin/ext_power.rs:
