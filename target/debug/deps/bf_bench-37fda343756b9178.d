/root/repo/target/debug/deps/bf_bench-37fda343756b9178.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbf_bench-37fda343756b9178.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbf_bench-37fda343756b9178.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
