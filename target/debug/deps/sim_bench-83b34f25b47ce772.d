/root/repo/target/debug/deps/sim_bench-83b34f25b47ce772.d: crates/bench/benches/sim_bench.rs Cargo.toml

/root/repo/target/debug/deps/libsim_bench-83b34f25b47ce772.rmeta: crates/bench/benches/sim_bench.rs Cargo.toml

crates/bench/benches/sim_bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
