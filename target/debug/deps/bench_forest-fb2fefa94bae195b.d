/root/repo/target/debug/deps/bench_forest-fb2fefa94bae195b.d: crates/bench/src/bin/bench_forest.rs

/root/repo/target/debug/deps/bench_forest-fb2fefa94bae195b: crates/bench/src/bin/bench_forest.rs

crates/bench/src/bin/bench_forest.rs:
