/root/repo/target/debug/deps/stats_bench-897f93a739bffd6a.d: crates/bench/benches/stats_bench.rs Cargo.toml

/root/repo/target/debug/deps/libstats_bench-897f93a739bffd6a.rmeta: crates/bench/benches/stats_bench.rs Cargo.toml

crates/bench/benches/stats_bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
