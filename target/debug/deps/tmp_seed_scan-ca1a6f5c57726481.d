/root/repo/target/debug/deps/tmp_seed_scan-ca1a6f5c57726481.d: crates/core/tests/tmp_seed_scan.rs

/root/repo/target/debug/deps/tmp_seed_scan-ca1a6f5c57726481: crates/core/tests/tmp_seed_scan.rs

crates/core/tests/tmp_seed_scan.rs:
