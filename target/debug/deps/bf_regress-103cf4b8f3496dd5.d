/root/repo/target/debug/deps/bf_regress-103cf4b8f3496dd5.d: crates/regress/src/lib.rs crates/regress/src/glm.rs crates/regress/src/mars.rs crates/regress/src/mlp.rs crates/regress/src/stepwise.rs

/root/repo/target/debug/deps/libbf_regress-103cf4b8f3496dd5.rlib: crates/regress/src/lib.rs crates/regress/src/glm.rs crates/regress/src/mars.rs crates/regress/src/mlp.rs crates/regress/src/stepwise.rs

/root/repo/target/debug/deps/libbf_regress-103cf4b8f3496dd5.rmeta: crates/regress/src/lib.rs crates/regress/src/glm.rs crates/regress/src/mars.rs crates/regress/src/mlp.rs crates/regress/src/stepwise.rs

crates/regress/src/lib.rs:
crates/regress/src/glm.rs:
crates/regress/src/mars.rs:
crates/regress/src/mlp.rs:
crates/regress/src/stepwise.rs:
