/root/repo/target/debug/deps/ext_tiles-b33298818b835577.d: crates/bench/src/bin/ext_tiles.rs Cargo.toml

/root/repo/target/debug/deps/libext_tiles-b33298818b835577.rmeta: crates/bench/src/bin/ext_tiles.rs Cargo.toml

crates/bench/src/bin/ext_tiles.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
