/root/repo/target/debug/deps/fig2_reduce1-ed98c11c2ce9d6fd.d: crates/bench/src/bin/fig2_reduce1.rs

/root/repo/target/debug/deps/fig2_reduce1-ed98c11c2ce9d6fd: crates/bench/src/bin/fig2_reduce1.rs

crates/bench/src/bin/fig2_reduce1.rs:
