/root/repo/target/debug/deps/bench_forest-669e87ac44e14172.d: crates/bench/src/bin/bench_forest.rs

/root/repo/target/debug/deps/bench_forest-669e87ac44e14172: crates/bench/src/bin/bench_forest.rs

crates/bench/src/bin/bench_forest.rs:
