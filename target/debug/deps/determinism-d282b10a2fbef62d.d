/root/repo/target/debug/deps/determinism-d282b10a2fbef62d.d: crates/core/tests/determinism.rs

/root/repo/target/debug/deps/determinism-d282b10a2fbef62d: crates/core/tests/determinism.rs

crates/core/tests/determinism.rs:
