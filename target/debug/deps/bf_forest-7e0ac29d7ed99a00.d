/root/repo/target/debug/deps/bf_forest-7e0ac29d7ed99a00.d: crates/forest/src/lib.rs crates/forest/src/binned.rs crates/forest/src/forest.rs crates/forest/src/importance.rs crates/forest/src/partial.rs crates/forest/src/split.rs crates/forest/src/tree.rs

/root/repo/target/debug/deps/libbf_forest-7e0ac29d7ed99a00.rlib: crates/forest/src/lib.rs crates/forest/src/binned.rs crates/forest/src/forest.rs crates/forest/src/importance.rs crates/forest/src/partial.rs crates/forest/src/split.rs crates/forest/src/tree.rs

/root/repo/target/debug/deps/libbf_forest-7e0ac29d7ed99a00.rmeta: crates/forest/src/lib.rs crates/forest/src/binned.rs crates/forest/src/forest.rs crates/forest/src/importance.rs crates/forest/src/partial.rs crates/forest/src/split.rs crates/forest/src/tree.rs

crates/forest/src/lib.rs:
crates/forest/src/binned.rs:
crates/forest/src/forest.rs:
crates/forest/src/importance.rs:
crates/forest/src/partial.rs:
crates/forest/src/split.rs:
crates/forest/src/tree.rs:
