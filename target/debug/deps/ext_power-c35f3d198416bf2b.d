/root/repo/target/debug/deps/ext_power-c35f3d198416bf2b.d: crates/bench/src/bin/ext_power.rs Cargo.toml

/root/repo/target/debug/deps/libext_power-c35f3d198416bf2b.rmeta: crates/bench/src/bin/ext_power.rs Cargo.toml

crates/bench/src/bin/ext_power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
