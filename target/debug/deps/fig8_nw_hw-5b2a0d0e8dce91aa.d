/root/repo/target/debug/deps/fig8_nw_hw-5b2a0d0e8dce91aa.d: crates/bench/src/bin/fig8_nw_hw.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_nw_hw-5b2a0d0e8dce91aa.rmeta: crates/bench/src/bin/fig8_nw_hw.rs Cargo.toml

crates/bench/src/bin/fig8_nw_hw.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
