/root/repo/target/debug/deps/bf_bench-dd48ee195e82a4da.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bf_bench-dd48ee195e82a4da: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
