/root/repo/target/debug/deps/fig3_reduce2-9a02464a2e445be1.d: crates/bench/src/bin/fig3_reduce2.rs

/root/repo/target/debug/deps/fig3_reduce2-9a02464a2e445be1: crates/bench/src/bin/fig3_reduce2.rs

crates/bench/src/bin/fig3_reduce2.rs:
