/root/repo/target/debug/deps/fig7_mm_hw-a526d95f44a9faf4.d: crates/bench/src/bin/fig7_mm_hw.rs

/root/repo/target/debug/deps/fig7_mm_hw-a526d95f44a9faf4: crates/bench/src/bin/fig7_mm_hw.rs

crates/bench/src/bin/fig7_mm_hw.rs:
