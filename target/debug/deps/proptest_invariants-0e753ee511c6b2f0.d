/root/repo/target/debug/deps/proptest_invariants-0e753ee511c6b2f0.d: tests/proptest_invariants.rs

/root/repo/target/debug/deps/proptest_invariants-0e753ee511c6b2f0: tests/proptest_invariants.rs

tests/proptest_invariants.rs:
