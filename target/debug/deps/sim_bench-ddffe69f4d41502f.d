/root/repo/target/debug/deps/sim_bench-ddffe69f4d41502f.d: crates/bench/benches/sim_bench.rs Cargo.toml

/root/repo/target/debug/deps/libsim_bench-ddffe69f4d41502f.rmeta: crates/bench/benches/sim_bench.rs Cargo.toml

crates/bench/benches/sim_bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
