/root/repo/target/debug/deps/scheduler_fuzz-b535b825a1398570.d: tests/scheduler_fuzz.rs Cargo.toml

/root/repo/target/debug/deps/libscheduler_fuzz-b535b825a1398570.rmeta: tests/scheduler_fuzz.rs Cargo.toml

tests/scheduler_fuzz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
