/root/repo/target/debug/deps/ext_similarity-06faca651530c9f5.d: crates/bench/src/bin/ext_similarity.rs Cargo.toml

/root/repo/target/debug/deps/libext_similarity-06faca651530c9f5.rmeta: crates/bench/src/bin/ext_similarity.rs Cargo.toml

crates/bench/src/bin/ext_similarity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
