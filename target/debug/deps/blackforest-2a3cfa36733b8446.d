/root/repo/target/debug/deps/blackforest-2a3cfa36733b8446.d: crates/core/src/lib.rs crates/core/src/bottleneck.rs crates/core/src/collect.rs crates/core/src/countermodel.rs crates/core/src/cv.rs crates/core/src/dataset.rs crates/core/src/markdown.rs crates/core/src/model.rs crates/core/src/predict.rs crates/core/src/report.rs crates/core/src/toolchain.rs Cargo.toml

/root/repo/target/debug/deps/libblackforest-2a3cfa36733b8446.rmeta: crates/core/src/lib.rs crates/core/src/bottleneck.rs crates/core/src/collect.rs crates/core/src/countermodel.rs crates/core/src/cv.rs crates/core/src/dataset.rs crates/core/src/markdown.rs crates/core/src/model.rs crates/core/src/predict.rs crates/core/src/report.rs crates/core/src/toolchain.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/bottleneck.rs:
crates/core/src/collect.rs:
crates/core/src/countermodel.rs:
crates/core/src/cv.rs:
crates/core/src/dataset.rs:
crates/core/src/markdown.rs:
crates/core/src/model.rs:
crates/core/src/predict.rs:
crates/core/src/report.rs:
crates/core/src/toolchain.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
