/root/repo/target/debug/deps/blackforest-c8fcd2b34c27a6d1.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/blackforest-c8fcd2b34c27a6d1: crates/cli/src/main.rs

crates/cli/src/main.rs:
