/root/repo/target/debug/deps/fig6_nw-c43fa3e6b9e518a9.d: crates/bench/src/bin/fig6_nw.rs

/root/repo/target/debug/deps/fig6_nw-c43fa3e6b9e518a9: crates/bench/src/bin/fig6_nw.rs

crates/bench/src/bin/fig6_nw.rs:
