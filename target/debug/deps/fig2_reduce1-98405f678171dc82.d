/root/repo/target/debug/deps/fig2_reduce1-98405f678171dc82.d: crates/bench/src/bin/fig2_reduce1.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_reduce1-98405f678171dc82.rmeta: crates/bench/src/bin/fig2_reduce1.rs Cargo.toml

crates/bench/src/bin/fig2_reduce1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
