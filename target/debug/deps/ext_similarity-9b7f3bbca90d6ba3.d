/root/repo/target/debug/deps/ext_similarity-9b7f3bbca90d6ba3.d: crates/bench/src/bin/ext_similarity.rs

/root/repo/target/debug/deps/ext_similarity-9b7f3bbca90d6ba3: crates/bench/src/bin/ext_similarity.rs

crates/bench/src/bin/ext_similarity.rs:
