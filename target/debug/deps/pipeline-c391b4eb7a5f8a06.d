/root/repo/target/debug/deps/pipeline-c391b4eb7a5f8a06.d: tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-c391b4eb7a5f8a06.rmeta: tests/pipeline.rs Cargo.toml

tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
