/root/repo/target/debug/deps/ext_ladder-2a9ad1e3d002515d.d: crates/bench/src/bin/ext_ladder.rs Cargo.toml

/root/repo/target/debug/deps/libext_ladder-2a9ad1e3d002515d.rmeta: crates/bench/src/bin/ext_ladder.rs Cargo.toml

crates/bench/src/bin/ext_ladder.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
