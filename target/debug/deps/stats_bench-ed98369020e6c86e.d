/root/repo/target/debug/deps/stats_bench-ed98369020e6c86e.d: crates/bench/benches/stats_bench.rs Cargo.toml

/root/repo/target/debug/deps/libstats_bench-ed98369020e6c86e.rmeta: crates/bench/benches/stats_bench.rs Cargo.toml

crates/bench/benches/stats_bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
