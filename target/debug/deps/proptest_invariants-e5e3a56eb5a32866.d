/root/repo/target/debug/deps/proptest_invariants-e5e3a56eb5a32866.d: tests/proptest_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_invariants-e5e3a56eb5a32866.rmeta: tests/proptest_invariants.rs Cargo.toml

tests/proptest_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
