/root/repo/target/debug/deps/ext_ladder-cc7316e8f0016dba.d: crates/bench/src/bin/ext_ladder.rs

/root/repo/target/debug/deps/ext_ladder-cc7316e8f0016dba: crates/bench/src/bin/ext_ladder.rs

crates/bench/src/bin/ext_ladder.rs:
