/root/repo/target/debug/deps/bf_kernels-a669b2c557120694.d: crates/kernels/src/lib.rs crates/kernels/src/matmul.rs crates/kernels/src/nw.rs crates/kernels/src/reduce.rs crates/kernels/src/stencil.rs

/root/repo/target/debug/deps/libbf_kernels-a669b2c557120694.rlib: crates/kernels/src/lib.rs crates/kernels/src/matmul.rs crates/kernels/src/nw.rs crates/kernels/src/reduce.rs crates/kernels/src/stencil.rs

/root/repo/target/debug/deps/libbf_kernels-a669b2c557120694.rmeta: crates/kernels/src/lib.rs crates/kernels/src/matmul.rs crates/kernels/src/nw.rs crates/kernels/src/reduce.rs crates/kernels/src/stencil.rs

crates/kernels/src/lib.rs:
crates/kernels/src/matmul.rs:
crates/kernels/src/nw.rs:
crates/kernels/src/reduce.rs:
crates/kernels/src/stencil.rs:
