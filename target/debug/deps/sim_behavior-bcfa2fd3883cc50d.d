/root/repo/target/debug/deps/sim_behavior-bcfa2fd3883cc50d.d: tests/sim_behavior.rs

/root/repo/target/debug/deps/sim_behavior-bcfa2fd3883cc50d: tests/sim_behavior.rs

tests/sim_behavior.rs:
