/root/repo/target/debug/deps/fig6_nw-02c51bd309d27b95.d: crates/bench/src/bin/fig6_nw.rs

/root/repo/target/debug/deps/fig6_nw-02c51bd309d27b95: crates/bench/src/bin/fig6_nw.rs

crates/bench/src/bin/fig6_nw.rs:
