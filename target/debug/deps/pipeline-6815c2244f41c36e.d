/root/repo/target/debug/deps/pipeline-6815c2244f41c36e.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-6815c2244f41c36e: tests/pipeline.rs

tests/pipeline.rs:
