/root/repo/target/debug/deps/bf_pca-3a7a937f49ba193a.d: crates/pca/src/lib.rs crates/pca/src/model.rs crates/pca/src/varimax.rs Cargo.toml

/root/repo/target/debug/deps/libbf_pca-3a7a937f49ba193a.rmeta: crates/pca/src/lib.rs crates/pca/src/model.rs crates/pca/src/varimax.rs Cargo.toml

crates/pca/src/lib.rs:
crates/pca/src/model.rs:
crates/pca/src/varimax.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
