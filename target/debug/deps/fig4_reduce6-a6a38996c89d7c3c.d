/root/repo/target/debug/deps/fig4_reduce6-a6a38996c89d7c3c.d: crates/bench/src/bin/fig4_reduce6.rs

/root/repo/target/debug/deps/fig4_reduce6-a6a38996c89d7c3c: crates/bench/src/bin/fig4_reduce6.rs

crates/bench/src/bin/fig4_reduce6.rs:
