/root/repo/target/debug/deps/table2-d8ff8022f54b900c.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-d8ff8022f54b900c.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
