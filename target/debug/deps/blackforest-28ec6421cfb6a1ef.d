/root/repo/target/debug/deps/blackforest-28ec6421cfb6a1ef.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libblackforest-28ec6421cfb6a1ef.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
