/root/repo/target/debug/deps/bf_bench-b23f56ec41149013.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbf_bench-b23f56ec41149013.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbf_bench-b23f56ec41149013.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
