/root/repo/target/debug/deps/profiler_invariants-1070406c61b28403.d: tests/profiler_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libprofiler_invariants-1070406c61b28403.rmeta: tests/profiler_invariants.rs Cargo.toml

tests/profiler_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
