/root/repo/target/debug/deps/bf_pca-4397470f909aa89d.d: crates/pca/src/lib.rs crates/pca/src/model.rs crates/pca/src/varimax.rs Cargo.toml

/root/repo/target/debug/deps/libbf_pca-4397470f909aa89d.rmeta: crates/pca/src/lib.rs crates/pca/src/model.rs crates/pca/src/varimax.rs Cargo.toml

crates/pca/src/lib.rs:
crates/pca/src/model.rs:
crates/pca/src/varimax.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
