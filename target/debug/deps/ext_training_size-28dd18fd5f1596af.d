/root/repo/target/debug/deps/ext_training_size-28dd18fd5f1596af.d: crates/bench/src/bin/ext_training_size.rs

/root/repo/target/debug/deps/ext_training_size-28dd18fd5f1596af: crates/bench/src/bin/ext_training_size.rs

crates/bench/src/bin/ext_training_size.rs:
