/root/repo/target/debug/deps/fig3_reduce2-5654a40b90b63951.d: crates/bench/src/bin/fig3_reduce2.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_reduce2-5654a40b90b63951.rmeta: crates/bench/src/bin/fig3_reduce2.rs Cargo.toml

crates/bench/src/bin/fig3_reduce2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
