/root/repo/target/debug/deps/fig2_reduce1-bf4578f1d79e86b9.d: crates/bench/src/bin/fig2_reduce1.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_reduce1-bf4578f1d79e86b9.rmeta: crates/bench/src/bin/fig2_reduce1.rs Cargo.toml

crates/bench/src/bin/fig2_reduce1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
