/root/repo/target/debug/deps/fig8_nw_hw-3fc2e6734ff5a0dc.d: crates/bench/src/bin/fig8_nw_hw.rs

/root/repo/target/debug/deps/fig8_nw_hw-3fc2e6734ff5a0dc: crates/bench/src/bin/fig8_nw_hw.rs

crates/bench/src/bin/fig8_nw_hw.rs:
