/root/repo/target/debug/deps/fig2_reduce1-3080219829c5fa02.d: crates/bench/src/bin/fig2_reduce1.rs

/root/repo/target/debug/deps/fig2_reduce1-3080219829c5fa02: crates/bench/src/bin/fig2_reduce1.rs

crates/bench/src/bin/fig2_reduce1.rs:
