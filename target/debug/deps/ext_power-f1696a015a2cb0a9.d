/root/repo/target/debug/deps/ext_power-f1696a015a2cb0a9.d: crates/bench/src/bin/ext_power.rs

/root/repo/target/debug/deps/ext_power-f1696a015a2cb0a9: crates/bench/src/bin/ext_power.rs

crates/bench/src/bin/ext_power.rs:
