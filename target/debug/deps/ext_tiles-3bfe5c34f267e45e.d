/root/repo/target/debug/deps/ext_tiles-3bfe5c34f267e45e.d: crates/bench/src/bin/ext_tiles.rs Cargo.toml

/root/repo/target/debug/deps/libext_tiles-3bfe5c34f267e45e.rmeta: crates/bench/src/bin/ext_tiles.rs Cargo.toml

crates/bench/src/bin/ext_tiles.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
