/root/repo/target/debug/deps/fig4_reduce6-589238560fd9d5ec.d: crates/bench/src/bin/fig4_reduce6.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_reduce6-589238560fd9d5ec.rmeta: crates/bench/src/bin/fig4_reduce6.rs Cargo.toml

crates/bench/src/bin/fig4_reduce6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
