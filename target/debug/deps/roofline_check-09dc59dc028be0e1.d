/root/repo/target/debug/deps/roofline_check-09dc59dc028be0e1.d: tests/roofline_check.rs

/root/repo/target/debug/deps/roofline_check-09dc59dc028be0e1: tests/roofline_check.rs

tests/roofline_check.rs:
