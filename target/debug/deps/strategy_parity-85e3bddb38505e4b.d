/root/repo/target/debug/deps/strategy_parity-85e3bddb38505e4b.d: crates/core/tests/strategy_parity.rs Cargo.toml

/root/repo/target/debug/deps/libstrategy_parity-85e3bddb38505e4b.rmeta: crates/core/tests/strategy_parity.rs Cargo.toml

crates/core/tests/strategy_parity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
