/root/repo/target/debug/deps/fig7_mm_hw-77b3896f1c6c9974.d: crates/bench/src/bin/fig7_mm_hw.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_mm_hw-77b3896f1c6c9974.rmeta: crates/bench/src/bin/fig7_mm_hw.rs Cargo.toml

crates/bench/src/bin/fig7_mm_hw.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
