/root/repo/target/debug/deps/ablation_models-b78354493aa7639b.d: crates/bench/benches/ablation_models.rs Cargo.toml

/root/repo/target/debug/deps/libablation_models-b78354493aa7639b.rmeta: crates/bench/benches/ablation_models.rs Cargo.toml

crates/bench/benches/ablation_models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
