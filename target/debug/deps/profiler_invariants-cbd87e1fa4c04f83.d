/root/repo/target/debug/deps/profiler_invariants-cbd87e1fa4c04f83.d: tests/profiler_invariants.rs

/root/repo/target/debug/deps/profiler_invariants-cbd87e1fa4c04f83: tests/profiler_invariants.rs

tests/profiler_invariants.rs:
