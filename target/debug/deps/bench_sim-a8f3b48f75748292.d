/root/repo/target/debug/deps/bench_sim-a8f3b48f75748292.d: crates/bench/src/bin/bench_sim.rs Cargo.toml

/root/repo/target/debug/deps/libbench_sim-a8f3b48f75748292.rmeta: crates/bench/src/bin/bench_sim.rs Cargo.toml

crates/bench/src/bin/bench_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
