/root/repo/target/debug/deps/bf_forest-989f182951df67e8.d: crates/forest/src/lib.rs crates/forest/src/binned.rs crates/forest/src/forest.rs crates/forest/src/importance.rs crates/forest/src/partial.rs crates/forest/src/split.rs crates/forest/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libbf_forest-989f182951df67e8.rmeta: crates/forest/src/lib.rs crates/forest/src/binned.rs crates/forest/src/forest.rs crates/forest/src/importance.rs crates/forest/src/partial.rs crates/forest/src/split.rs crates/forest/src/tree.rs Cargo.toml

crates/forest/src/lib.rs:
crates/forest/src/binned.rs:
crates/forest/src/forest.rs:
crates/forest/src/importance.rs:
crates/forest/src/partial.rs:
crates/forest/src/split.rs:
crates/forest/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
