/root/repo/target/debug/deps/ablation_forest-904ca691adff0009.d: crates/bench/benches/ablation_forest.rs Cargo.toml

/root/repo/target/debug/deps/libablation_forest-904ca691adff0009.rmeta: crates/bench/benches/ablation_forest.rs Cargo.toml

crates/bench/benches/ablation_forest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
