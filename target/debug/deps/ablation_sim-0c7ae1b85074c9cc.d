/root/repo/target/debug/deps/ablation_sim-0c7ae1b85074c9cc.d: crates/bench/benches/ablation_sim.rs Cargo.toml

/root/repo/target/debug/deps/libablation_sim-0c7ae1b85074c9cc.rmeta: crates/bench/benches/ablation_sim.rs Cargo.toml

crates/bench/benches/ablation_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
