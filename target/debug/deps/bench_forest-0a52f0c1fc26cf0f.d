/root/repo/target/debug/deps/bench_forest-0a52f0c1fc26cf0f.d: crates/bench/src/bin/bench_forest.rs Cargo.toml

/root/repo/target/debug/deps/libbench_forest-0a52f0c1fc26cf0f.rmeta: crates/bench/src/bin/bench_forest.rs Cargo.toml

crates/bench/src/bin/bench_forest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
