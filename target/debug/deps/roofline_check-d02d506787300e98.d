/root/repo/target/debug/deps/roofline_check-d02d506787300e98.d: tests/roofline_check.rs

/root/repo/target/debug/deps/roofline_check-d02d506787300e98: tests/roofline_check.rs

tests/roofline_check.rs:
