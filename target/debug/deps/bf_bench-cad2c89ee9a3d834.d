/root/repo/target/debug/deps/bf_bench-cad2c89ee9a3d834.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbf_bench-cad2c89ee9a3d834.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
