/root/repo/target/debug/deps/ext_training_size-dcd9962b064a50d3.d: crates/bench/src/bin/ext_training_size.rs Cargo.toml

/root/repo/target/debug/deps/libext_training_size-dcd9962b064a50d3.rmeta: crates/bench/src/bin/ext_training_size.rs Cargo.toml

crates/bench/src/bin/ext_training_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
