/root/repo/target/debug/deps/ablation_sim-6403647ba75ac283.d: crates/bench/benches/ablation_sim.rs Cargo.toml

/root/repo/target/debug/deps/libablation_sim-6403647ba75ac283.rmeta: crates/bench/benches/ablation_sim.rs Cargo.toml

crates/bench/benches/ablation_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
