/root/repo/target/debug/deps/ext_tiles-fd33487a381091e7.d: crates/bench/src/bin/ext_tiles.rs

/root/repo/target/debug/deps/ext_tiles-fd33487a381091e7: crates/bench/src/bin/ext_tiles.rs

crates/bench/src/bin/ext_tiles.rs:
