/root/repo/target/debug/deps/roofline_check-b04503729e75cfb2.d: tests/roofline_check.rs Cargo.toml

/root/repo/target/debug/deps/libroofline_check-b04503729e75cfb2.rmeta: tests/roofline_check.rs Cargo.toml

tests/roofline_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
