/root/repo/target/debug/deps/bf_kernels-46f5e882f4cc609a.d: crates/kernels/src/lib.rs crates/kernels/src/matmul.rs crates/kernels/src/nw.rs crates/kernels/src/reduce.rs crates/kernels/src/stencil.rs

/root/repo/target/debug/deps/libbf_kernels-46f5e882f4cc609a.rlib: crates/kernels/src/lib.rs crates/kernels/src/matmul.rs crates/kernels/src/nw.rs crates/kernels/src/reduce.rs crates/kernels/src/stencil.rs

/root/repo/target/debug/deps/libbf_kernels-46f5e882f4cc609a.rmeta: crates/kernels/src/lib.rs crates/kernels/src/matmul.rs crates/kernels/src/nw.rs crates/kernels/src/reduce.rs crates/kernels/src/stencil.rs

crates/kernels/src/lib.rs:
crates/kernels/src/matmul.rs:
crates/kernels/src/nw.rs:
crates/kernels/src/reduce.rs:
crates/kernels/src/stencil.rs:
