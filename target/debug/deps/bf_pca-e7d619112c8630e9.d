/root/repo/target/debug/deps/bf_pca-e7d619112c8630e9.d: crates/pca/src/lib.rs crates/pca/src/model.rs crates/pca/src/varimax.rs

/root/repo/target/debug/deps/bf_pca-e7d619112c8630e9: crates/pca/src/lib.rs crates/pca/src/model.rs crates/pca/src/varimax.rs

crates/pca/src/lib.rs:
crates/pca/src/model.rs:
crates/pca/src/varimax.rs:
