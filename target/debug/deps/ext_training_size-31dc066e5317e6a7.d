/root/repo/target/debug/deps/ext_training_size-31dc066e5317e6a7.d: crates/bench/src/bin/ext_training_size.rs

/root/repo/target/debug/deps/ext_training_size-31dc066e5317e6a7: crates/bench/src/bin/ext_training_size.rs

crates/bench/src/bin/ext_training_size.rs:
