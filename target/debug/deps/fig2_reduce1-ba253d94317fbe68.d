/root/repo/target/debug/deps/fig2_reduce1-ba253d94317fbe68.d: crates/bench/src/bin/fig2_reduce1.rs

/root/repo/target/debug/deps/fig2_reduce1-ba253d94317fbe68: crates/bench/src/bin/fig2_reduce1.rs

crates/bench/src/bin/fig2_reduce1.rs:
