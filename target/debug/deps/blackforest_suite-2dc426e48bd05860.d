/root/repo/target/debug/deps/blackforest_suite-2dc426e48bd05860.d: src/lib.rs

/root/repo/target/debug/deps/libblackforest_suite-2dc426e48bd05860.rlib: src/lib.rs

/root/repo/target/debug/deps/libblackforest_suite-2dc426e48bd05860.rmeta: src/lib.rs

src/lib.rs:
