/root/repo/target/debug/deps/fig6_nw-d3a34f761372f434.d: crates/bench/src/bin/fig6_nw.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_nw-d3a34f761372f434.rmeta: crates/bench/src/bin/fig6_nw.rs Cargo.toml

crates/bench/src/bin/fig6_nw.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
