/root/repo/target/debug/deps/ext_training_size-cfc99a67077ffb3b.d: crates/bench/src/bin/ext_training_size.rs Cargo.toml

/root/repo/target/debug/deps/libext_training_size-cfc99a67077ffb3b.rmeta: crates/bench/src/bin/ext_training_size.rs Cargo.toml

crates/bench/src/bin/ext_training_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
