/root/repo/target/debug/deps/blackforest_suite-46be86da624553e8.d: src/lib.rs

/root/repo/target/debug/deps/blackforest_suite-46be86da624553e8: src/lib.rs

src/lib.rs:
