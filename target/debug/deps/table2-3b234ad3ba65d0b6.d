/root/repo/target/debug/deps/table2-3b234ad3ba65d0b6.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-3b234ad3ba65d0b6: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
