/root/repo/target/debug/deps/blackforest_suite-087da4db503fc5c3.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libblackforest_suite-087da4db503fc5c3.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
