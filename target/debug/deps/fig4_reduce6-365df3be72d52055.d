/root/repo/target/debug/deps/fig4_reduce6-365df3be72d52055.d: crates/bench/src/bin/fig4_reduce6.rs

/root/repo/target/debug/deps/fig4_reduce6-365df3be72d52055: crates/bench/src/bin/fig4_reduce6.rs

crates/bench/src/bin/fig4_reduce6.rs:
