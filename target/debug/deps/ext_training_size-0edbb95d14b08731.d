/root/repo/target/debug/deps/ext_training_size-0edbb95d14b08731.d: crates/bench/src/bin/ext_training_size.rs Cargo.toml

/root/repo/target/debug/deps/libext_training_size-0edbb95d14b08731.rmeta: crates/bench/src/bin/ext_training_size.rs Cargo.toml

crates/bench/src/bin/ext_training_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
