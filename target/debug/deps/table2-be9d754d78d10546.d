/root/repo/target/debug/deps/table2-be9d754d78d10546.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-be9d754d78d10546: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
