/root/repo/target/debug/deps/sim_behavior-2634505583f7dc7c.d: tests/sim_behavior.rs Cargo.toml

/root/repo/target/debug/deps/libsim_behavior-2634505583f7dc7c.rmeta: tests/sim_behavior.rs Cargo.toml

tests/sim_behavior.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
