/root/repo/target/debug/deps/blackforest-5f1d58e154d48ccd.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/blackforest-5f1d58e154d48ccd: crates/cli/src/main.rs

crates/cli/src/main.rs:
