/root/repo/target/debug/deps/blackforest_suite-c48921d7f1b302d4.d: src/lib.rs

/root/repo/target/debug/deps/blackforest_suite-c48921d7f1b302d4: src/lib.rs

src/lib.rs:
