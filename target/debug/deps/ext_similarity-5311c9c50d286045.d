/root/repo/target/debug/deps/ext_similarity-5311c9c50d286045.d: crates/bench/src/bin/ext_similarity.rs

/root/repo/target/debug/deps/ext_similarity-5311c9c50d286045: crates/bench/src/bin/ext_similarity.rs

crates/bench/src/bin/ext_similarity.rs:
