/root/repo/target/debug/deps/bf_kernels-5f43b9129da1be4e.d: crates/kernels/src/lib.rs crates/kernels/src/matmul.rs crates/kernels/src/nw.rs crates/kernels/src/reduce.rs crates/kernels/src/stencil.rs

/root/repo/target/debug/deps/bf_kernels-5f43b9129da1be4e: crates/kernels/src/lib.rs crates/kernels/src/matmul.rs crates/kernels/src/nw.rs crates/kernels/src/reduce.rs crates/kernels/src/stencil.rs

crates/kernels/src/lib.rs:
crates/kernels/src/matmul.rs:
crates/kernels/src/nw.rs:
crates/kernels/src/reduce.rs:
crates/kernels/src/stencil.rs:
