/root/repo/target/debug/deps/ablation_regress-cca96bf1dfe44eae.d: crates/bench/benches/ablation_regress.rs Cargo.toml

/root/repo/target/debug/deps/libablation_regress-cca96bf1dfe44eae.rmeta: crates/bench/benches/ablation_regress.rs Cargo.toml

crates/bench/benches/ablation_regress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
