/root/repo/target/debug/deps/fig8_nw_hw-97c8b9549f483401.d: crates/bench/src/bin/fig8_nw_hw.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_nw_hw-97c8b9549f483401.rmeta: crates/bench/src/bin/fig8_nw_hw.rs Cargo.toml

crates/bench/src/bin/fig8_nw_hw.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
