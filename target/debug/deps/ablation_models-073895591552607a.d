/root/repo/target/debug/deps/ablation_models-073895591552607a.d: crates/bench/benches/ablation_models.rs Cargo.toml

/root/repo/target/debug/deps/libablation_models-073895591552607a.rmeta: crates/bench/benches/ablation_models.rs Cargo.toml

crates/bench/benches/ablation_models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
