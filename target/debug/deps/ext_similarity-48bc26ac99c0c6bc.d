/root/repo/target/debug/deps/ext_similarity-48bc26ac99c0c6bc.d: crates/bench/src/bin/ext_similarity.rs

/root/repo/target/debug/deps/ext_similarity-48bc26ac99c0c6bc: crates/bench/src/bin/ext_similarity.rs

crates/bench/src/bin/ext_similarity.rs:
