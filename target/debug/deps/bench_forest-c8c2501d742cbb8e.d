/root/repo/target/debug/deps/bench_forest-c8c2501d742cbb8e.d: crates/bench/src/bin/bench_forest.rs Cargo.toml

/root/repo/target/debug/deps/libbench_forest-c8c2501d742cbb8e.rmeta: crates/bench/src/bin/bench_forest.rs Cargo.toml

crates/bench/src/bin/bench_forest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
