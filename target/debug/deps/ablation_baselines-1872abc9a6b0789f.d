/root/repo/target/debug/deps/ablation_baselines-1872abc9a6b0789f.d: crates/bench/benches/ablation_baselines.rs Cargo.toml

/root/repo/target/debug/deps/libablation_baselines-1872abc9a6b0789f.rmeta: crates/bench/benches/ablation_baselines.rs Cargo.toml

crates/bench/benches/ablation_baselines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
