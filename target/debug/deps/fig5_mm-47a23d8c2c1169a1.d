/root/repo/target/debug/deps/fig5_mm-47a23d8c2c1169a1.d: crates/bench/src/bin/fig5_mm.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_mm-47a23d8c2c1169a1.rmeta: crates/bench/src/bin/fig5_mm.rs Cargo.toml

crates/bench/src/bin/fig5_mm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
