/root/repo/target/debug/deps/bf_kernels-4a0222c80364e8e2.d: crates/kernels/src/lib.rs crates/kernels/src/matmul.rs crates/kernels/src/nw.rs crates/kernels/src/reduce.rs crates/kernels/src/stencil.rs Cargo.toml

/root/repo/target/debug/deps/libbf_kernels-4a0222c80364e8e2.rmeta: crates/kernels/src/lib.rs crates/kernels/src/matmul.rs crates/kernels/src/nw.rs crates/kernels/src/reduce.rs crates/kernels/src/stencil.rs Cargo.toml

crates/kernels/src/lib.rs:
crates/kernels/src/matmul.rs:
crates/kernels/src/nw.rs:
crates/kernels/src/reduce.rs:
crates/kernels/src/stencil.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
