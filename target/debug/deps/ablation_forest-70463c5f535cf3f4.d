/root/repo/target/debug/deps/ablation_forest-70463c5f535cf3f4.d: crates/bench/benches/ablation_forest.rs Cargo.toml

/root/repo/target/debug/deps/libablation_forest-70463c5f535cf3f4.rmeta: crates/bench/benches/ablation_forest.rs Cargo.toml

crates/bench/benches/ablation_forest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
