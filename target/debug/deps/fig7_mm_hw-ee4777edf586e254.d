/root/repo/target/debug/deps/fig7_mm_hw-ee4777edf586e254.d: crates/bench/src/bin/fig7_mm_hw.rs

/root/repo/target/debug/deps/fig7_mm_hw-ee4777edf586e254: crates/bench/src/bin/fig7_mm_hw.rs

crates/bench/src/bin/fig7_mm_hw.rs:
