/root/repo/target/debug/deps/fig7_mm_hw-3457d3992808b0fe.d: crates/bench/src/bin/fig7_mm_hw.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_mm_hw-3457d3992808b0fe.rmeta: crates/bench/src/bin/fig7_mm_hw.rs Cargo.toml

crates/bench/src/bin/fig7_mm_hw.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
