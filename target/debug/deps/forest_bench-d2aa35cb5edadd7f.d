/root/repo/target/debug/deps/forest_bench-d2aa35cb5edadd7f.d: crates/bench/benches/forest_bench.rs Cargo.toml

/root/repo/target/debug/deps/libforest_bench-d2aa35cb5edadd7f.rmeta: crates/bench/benches/forest_bench.rs Cargo.toml

crates/bench/benches/forest_bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
