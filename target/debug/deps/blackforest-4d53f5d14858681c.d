/root/repo/target/debug/deps/blackforest-4d53f5d14858681c.d: crates/core/src/lib.rs crates/core/src/bottleneck.rs crates/core/src/collect.rs crates/core/src/countermodel.rs crates/core/src/cv.rs crates/core/src/dataset.rs crates/core/src/markdown.rs crates/core/src/model.rs crates/core/src/predict.rs crates/core/src/report.rs crates/core/src/toolchain.rs

/root/repo/target/debug/deps/libblackforest-4d53f5d14858681c.rlib: crates/core/src/lib.rs crates/core/src/bottleneck.rs crates/core/src/collect.rs crates/core/src/countermodel.rs crates/core/src/cv.rs crates/core/src/dataset.rs crates/core/src/markdown.rs crates/core/src/model.rs crates/core/src/predict.rs crates/core/src/report.rs crates/core/src/toolchain.rs

/root/repo/target/debug/deps/libblackforest-4d53f5d14858681c.rmeta: crates/core/src/lib.rs crates/core/src/bottleneck.rs crates/core/src/collect.rs crates/core/src/countermodel.rs crates/core/src/cv.rs crates/core/src/dataset.rs crates/core/src/markdown.rs crates/core/src/model.rs crates/core/src/predict.rs crates/core/src/report.rs crates/core/src/toolchain.rs

crates/core/src/lib.rs:
crates/core/src/bottleneck.rs:
crates/core/src/collect.rs:
crates/core/src/countermodel.rs:
crates/core/src/cv.rs:
crates/core/src/dataset.rs:
crates/core/src/markdown.rs:
crates/core/src/model.rs:
crates/core/src/predict.rs:
crates/core/src/report.rs:
crates/core/src/toolchain.rs:
