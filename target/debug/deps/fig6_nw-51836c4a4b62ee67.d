/root/repo/target/debug/deps/fig6_nw-51836c4a4b62ee67.d: crates/bench/src/bin/fig6_nw.rs

/root/repo/target/debug/deps/fig6_nw-51836c4a4b62ee67: crates/bench/src/bin/fig6_nw.rs

crates/bench/src/bin/fig6_nw.rs:
