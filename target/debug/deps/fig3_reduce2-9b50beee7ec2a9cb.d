/root/repo/target/debug/deps/fig3_reduce2-9b50beee7ec2a9cb.d: crates/bench/src/bin/fig3_reduce2.rs

/root/repo/target/debug/deps/fig3_reduce2-9b50beee7ec2a9cb: crates/bench/src/bin/fig3_reduce2.rs

crates/bench/src/bin/fig3_reduce2.rs:
