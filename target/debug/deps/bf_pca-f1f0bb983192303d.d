/root/repo/target/debug/deps/bf_pca-f1f0bb983192303d.d: crates/pca/src/lib.rs crates/pca/src/model.rs crates/pca/src/varimax.rs

/root/repo/target/debug/deps/libbf_pca-f1f0bb983192303d.rlib: crates/pca/src/lib.rs crates/pca/src/model.rs crates/pca/src/varimax.rs

/root/repo/target/debug/deps/libbf_pca-f1f0bb983192303d.rmeta: crates/pca/src/lib.rs crates/pca/src/model.rs crates/pca/src/varimax.rs

crates/pca/src/lib.rs:
crates/pca/src/model.rs:
crates/pca/src/varimax.rs:
