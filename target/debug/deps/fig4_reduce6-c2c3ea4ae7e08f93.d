/root/repo/target/debug/deps/fig4_reduce6-c2c3ea4ae7e08f93.d: crates/bench/src/bin/fig4_reduce6.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_reduce6-c2c3ea4ae7e08f93.rmeta: crates/bench/src/bin/fig4_reduce6.rs Cargo.toml

crates/bench/src/bin/fig4_reduce6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
