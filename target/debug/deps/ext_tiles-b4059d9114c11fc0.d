/root/repo/target/debug/deps/ext_tiles-b4059d9114c11fc0.d: crates/bench/src/bin/ext_tiles.rs

/root/repo/target/debug/deps/ext_tiles-b4059d9114c11fc0: crates/bench/src/bin/ext_tiles.rs

crates/bench/src/bin/ext_tiles.rs:
