/root/repo/target/debug/deps/bench_forest-e87b25ddfcb9ee15.d: crates/bench/src/bin/bench_forest.rs Cargo.toml

/root/repo/target/debug/deps/libbench_forest-e87b25ddfcb9ee15.rmeta: crates/bench/src/bin/bench_forest.rs Cargo.toml

crates/bench/src/bin/bench_forest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
