/root/repo/target/debug/deps/histogram_parity-97a800061ab98c9d.d: crates/forest/tests/histogram_parity.rs

/root/repo/target/debug/deps/histogram_parity-97a800061ab98c9d: crates/forest/tests/histogram_parity.rs

crates/forest/tests/histogram_parity.rs:
