/root/repo/target/debug/deps/scheduler_fuzz-1616566bd92a5d94.d: tests/scheduler_fuzz.rs

/root/repo/target/debug/deps/scheduler_fuzz-1616566bd92a5d94: tests/scheduler_fuzz.rs

tests/scheduler_fuzz.rs:
