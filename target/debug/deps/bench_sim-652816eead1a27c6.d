/root/repo/target/debug/deps/bench_sim-652816eead1a27c6.d: crates/bench/src/bin/bench_sim.rs

/root/repo/target/debug/deps/bench_sim-652816eead1a27c6: crates/bench/src/bin/bench_sim.rs

crates/bench/src/bin/bench_sim.rs:
