/root/repo/target/debug/deps/bf_linalg-20353e2b44a67284.d: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/eigen.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/stats.rs

/root/repo/target/debug/deps/bf_linalg-20353e2b44a67284: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/eigen.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/stats.rs

crates/linalg/src/lib.rs:
crates/linalg/src/cholesky.rs:
crates/linalg/src/eigen.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/qr.rs:
crates/linalg/src/stats.rs:
