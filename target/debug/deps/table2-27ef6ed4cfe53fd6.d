/root/repo/target/debug/deps/table2-27ef6ed4cfe53fd6.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-27ef6ed4cfe53fd6: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
