/root/repo/target/debug/deps/histogram_parity-95ffe8ecd049aebf.d: crates/forest/tests/histogram_parity.rs Cargo.toml

/root/repo/target/debug/deps/libhistogram_parity-95ffe8ecd049aebf.rmeta: crates/forest/tests/histogram_parity.rs Cargo.toml

crates/forest/tests/histogram_parity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
