/root/repo/target/debug/deps/bf_forest-daf761e07931d9f9.d: crates/forest/src/lib.rs crates/forest/src/binned.rs crates/forest/src/forest.rs crates/forest/src/importance.rs crates/forest/src/partial.rs crates/forest/src/split.rs crates/forest/src/tree.rs

/root/repo/target/debug/deps/bf_forest-daf761e07931d9f9: crates/forest/src/lib.rs crates/forest/src/binned.rs crates/forest/src/forest.rs crates/forest/src/importance.rs crates/forest/src/partial.rs crates/forest/src/split.rs crates/forest/src/tree.rs

crates/forest/src/lib.rs:
crates/forest/src/binned.rs:
crates/forest/src/forest.rs:
crates/forest/src/importance.rs:
crates/forest/src/partial.rs:
crates/forest/src/split.rs:
crates/forest/src/tree.rs:
