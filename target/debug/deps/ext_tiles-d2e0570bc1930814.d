/root/repo/target/debug/deps/ext_tiles-d2e0570bc1930814.d: crates/bench/src/bin/ext_tiles.rs Cargo.toml

/root/repo/target/debug/deps/libext_tiles-d2e0570bc1930814.rmeta: crates/bench/src/bin/ext_tiles.rs Cargo.toml

crates/bench/src/bin/ext_tiles.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
