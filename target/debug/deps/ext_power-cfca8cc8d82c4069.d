/root/repo/target/debug/deps/ext_power-cfca8cc8d82c4069.d: crates/bench/src/bin/ext_power.rs Cargo.toml

/root/repo/target/debug/deps/libext_power-cfca8cc8d82c4069.rmeta: crates/bench/src/bin/ext_power.rs Cargo.toml

crates/bench/src/bin/ext_power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
