/root/repo/target/debug/deps/ext_training_size-772573bc621203d2.d: crates/bench/src/bin/ext_training_size.rs Cargo.toml

/root/repo/target/debug/deps/libext_training_size-772573bc621203d2.rmeta: crates/bench/src/bin/ext_training_size.rs Cargo.toml

crates/bench/src/bin/ext_training_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
