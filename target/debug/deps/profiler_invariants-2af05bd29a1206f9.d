/root/repo/target/debug/deps/profiler_invariants-2af05bd29a1206f9.d: tests/profiler_invariants.rs

/root/repo/target/debug/deps/profiler_invariants-2af05bd29a1206f9: tests/profiler_invariants.rs

tests/profiler_invariants.rs:
