/root/repo/target/debug/deps/bf_regress-0517719881ba7921.d: crates/regress/src/lib.rs crates/regress/src/glm.rs crates/regress/src/mars.rs crates/regress/src/mlp.rs crates/regress/src/stepwise.rs Cargo.toml

/root/repo/target/debug/deps/libbf_regress-0517719881ba7921.rmeta: crates/regress/src/lib.rs crates/regress/src/glm.rs crates/regress/src/mars.rs crates/regress/src/mlp.rs crates/regress/src/stepwise.rs Cargo.toml

crates/regress/src/lib.rs:
crates/regress/src/glm.rs:
crates/regress/src/mars.rs:
crates/regress/src/mlp.rs:
crates/regress/src/stepwise.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
