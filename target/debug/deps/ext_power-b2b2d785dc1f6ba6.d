/root/repo/target/debug/deps/ext_power-b2b2d785dc1f6ba6.d: crates/bench/src/bin/ext_power.rs Cargo.toml

/root/repo/target/debug/deps/libext_power-b2b2d785dc1f6ba6.rmeta: crates/bench/src/bin/ext_power.rs Cargo.toml

crates/bench/src/bin/ext_power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
