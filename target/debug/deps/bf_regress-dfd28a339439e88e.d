/root/repo/target/debug/deps/bf_regress-dfd28a339439e88e.d: crates/regress/src/lib.rs crates/regress/src/glm.rs crates/regress/src/mars.rs crates/regress/src/mlp.rs crates/regress/src/stepwise.rs

/root/repo/target/debug/deps/bf_regress-dfd28a339439e88e: crates/regress/src/lib.rs crates/regress/src/glm.rs crates/regress/src/mars.rs crates/regress/src/mlp.rs crates/regress/src/stepwise.rs

crates/regress/src/lib.rs:
crates/regress/src/glm.rs:
crates/regress/src/mars.rs:
crates/regress/src/mlp.rs:
crates/regress/src/stepwise.rs:
