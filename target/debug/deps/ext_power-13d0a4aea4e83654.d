/root/repo/target/debug/deps/ext_power-13d0a4aea4e83654.d: crates/bench/src/bin/ext_power.rs Cargo.toml

/root/repo/target/debug/deps/libext_power-13d0a4aea4e83654.rmeta: crates/bench/src/bin/ext_power.rs Cargo.toml

crates/bench/src/bin/ext_power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
