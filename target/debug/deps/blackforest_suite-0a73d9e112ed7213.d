/root/repo/target/debug/deps/blackforest_suite-0a73d9e112ed7213.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libblackforest_suite-0a73d9e112ed7213.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
