/root/repo/target/debug/deps/ext_ladder-ba2ef81d4ca27907.d: crates/bench/src/bin/ext_ladder.rs

/root/repo/target/debug/deps/ext_ladder-ba2ef81d4ca27907: crates/bench/src/bin/ext_ladder.rs

crates/bench/src/bin/ext_ladder.rs:
