/root/repo/target/debug/deps/fig5_mm-350acdb02a3646a3.d: crates/bench/src/bin/fig5_mm.rs

/root/repo/target/debug/deps/fig5_mm-350acdb02a3646a3: crates/bench/src/bin/fig5_mm.rs

crates/bench/src/bin/fig5_mm.rs:
