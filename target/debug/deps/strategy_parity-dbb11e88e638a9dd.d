/root/repo/target/debug/deps/strategy_parity-dbb11e88e638a9dd.d: crates/core/tests/strategy_parity.rs

/root/repo/target/debug/deps/strategy_parity-dbb11e88e638a9dd: crates/core/tests/strategy_parity.rs

crates/core/tests/strategy_parity.rs:
