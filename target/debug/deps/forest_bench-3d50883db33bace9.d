/root/repo/target/debug/deps/forest_bench-3d50883db33bace9.d: crates/bench/benches/forest_bench.rs Cargo.toml

/root/repo/target/debug/deps/libforest_bench-3d50883db33bace9.rmeta: crates/bench/benches/forest_bench.rs Cargo.toml

crates/bench/benches/forest_bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
