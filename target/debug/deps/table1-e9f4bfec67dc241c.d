/root/repo/target/debug/deps/table1-e9f4bfec67dc241c.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-e9f4bfec67dc241c: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
