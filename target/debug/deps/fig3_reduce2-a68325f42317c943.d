/root/repo/target/debug/deps/fig3_reduce2-a68325f42317c943.d: crates/bench/src/bin/fig3_reduce2.rs

/root/repo/target/debug/deps/fig3_reduce2-a68325f42317c943: crates/bench/src/bin/fig3_reduce2.rs

crates/bench/src/bin/fig3_reduce2.rs:
