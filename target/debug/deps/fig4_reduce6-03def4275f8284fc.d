/root/repo/target/debug/deps/fig4_reduce6-03def4275f8284fc.d: crates/bench/src/bin/fig4_reduce6.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_reduce6-03def4275f8284fc.rmeta: crates/bench/src/bin/fig4_reduce6.rs Cargo.toml

crates/bench/src/bin/fig4_reduce6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
