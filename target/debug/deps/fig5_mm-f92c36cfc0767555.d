/root/repo/target/debug/deps/fig5_mm-f92c36cfc0767555.d: crates/bench/src/bin/fig5_mm.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_mm-f92c36cfc0767555.rmeta: crates/bench/src/bin/fig5_mm.rs Cargo.toml

crates/bench/src/bin/fig5_mm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
