/root/repo/target/debug/deps/blackforest-0d51f249f4af59b4.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libblackforest-0d51f249f4af59b4.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
