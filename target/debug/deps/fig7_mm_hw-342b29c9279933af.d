/root/repo/target/debug/deps/fig7_mm_hw-342b29c9279933af.d: crates/bench/src/bin/fig7_mm_hw.rs

/root/repo/target/debug/deps/fig7_mm_hw-342b29c9279933af: crates/bench/src/bin/fig7_mm_hw.rs

crates/bench/src/bin/fig7_mm_hw.rs:
