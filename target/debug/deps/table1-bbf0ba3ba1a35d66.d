/root/repo/target/debug/deps/table1-bbf0ba3ba1a35d66.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-bbf0ba3ba1a35d66: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
