/root/repo/target/debug/deps/ablation_regress-4efbb99b637c5d60.d: crates/bench/benches/ablation_regress.rs Cargo.toml

/root/repo/target/debug/deps/libablation_regress-4efbb99b637c5d60.rmeta: crates/bench/benches/ablation_regress.rs Cargo.toml

crates/bench/benches/ablation_regress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
