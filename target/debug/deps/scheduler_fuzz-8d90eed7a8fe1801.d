/root/repo/target/debug/deps/scheduler_fuzz-8d90eed7a8fe1801.d: tests/scheduler_fuzz.rs

/root/repo/target/debug/deps/scheduler_fuzz-8d90eed7a8fe1801: tests/scheduler_fuzz.rs

tests/scheduler_fuzz.rs:
