/root/repo/target/debug/deps/ablation_baselines-63aedfd901e0f05a.d: crates/bench/benches/ablation_baselines.rs Cargo.toml

/root/repo/target/debug/deps/libablation_baselines-63aedfd901e0f05a.rmeta: crates/bench/benches/ablation_baselines.rs Cargo.toml

crates/bench/benches/ablation_baselines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
