/root/repo/target/debug/deps/bf_forest-ec33998069eedf4e.d: crates/forest/src/lib.rs crates/forest/src/binned.rs crates/forest/src/forest.rs crates/forest/src/importance.rs crates/forest/src/partial.rs crates/forest/src/split.rs crates/forest/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libbf_forest-ec33998069eedf4e.rmeta: crates/forest/src/lib.rs crates/forest/src/binned.rs crates/forest/src/forest.rs crates/forest/src/importance.rs crates/forest/src/partial.rs crates/forest/src/split.rs crates/forest/src/tree.rs Cargo.toml

crates/forest/src/lib.rs:
crates/forest/src/binned.rs:
crates/forest/src/forest.rs:
crates/forest/src/importance.rs:
crates/forest/src/partial.rs:
crates/forest/src/split.rs:
crates/forest/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
