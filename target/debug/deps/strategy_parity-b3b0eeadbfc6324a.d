/root/repo/target/debug/deps/strategy_parity-b3b0eeadbfc6324a.d: crates/core/tests/strategy_parity.rs Cargo.toml

/root/repo/target/debug/deps/libstrategy_parity-b3b0eeadbfc6324a.rmeta: crates/core/tests/strategy_parity.rs Cargo.toml

crates/core/tests/strategy_parity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
