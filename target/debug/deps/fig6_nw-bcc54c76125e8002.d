/root/repo/target/debug/deps/fig6_nw-bcc54c76125e8002.d: crates/bench/src/bin/fig6_nw.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_nw-bcc54c76125e8002.rmeta: crates/bench/src/bin/fig6_nw.rs Cargo.toml

crates/bench/src/bin/fig6_nw.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
