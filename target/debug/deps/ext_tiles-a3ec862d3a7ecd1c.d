/root/repo/target/debug/deps/ext_tiles-a3ec862d3a7ecd1c.d: crates/bench/src/bin/ext_tiles.rs Cargo.toml

/root/repo/target/debug/deps/libext_tiles-a3ec862d3a7ecd1c.rmeta: crates/bench/src/bin/ext_tiles.rs Cargo.toml

crates/bench/src/bin/ext_tiles.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
