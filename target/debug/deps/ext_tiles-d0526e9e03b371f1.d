/root/repo/target/debug/deps/ext_tiles-d0526e9e03b371f1.d: crates/bench/src/bin/ext_tiles.rs

/root/repo/target/debug/deps/ext_tiles-d0526e9e03b371f1: crates/bench/src/bin/ext_tiles.rs

crates/bench/src/bin/ext_tiles.rs:
