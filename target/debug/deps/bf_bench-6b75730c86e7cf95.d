/root/repo/target/debug/deps/bf_bench-6b75730c86e7cf95.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbf_bench-6b75730c86e7cf95.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
