/root/repo/target/debug/deps/bf_kernels-9e74d2350577da7d.d: crates/kernels/src/lib.rs crates/kernels/src/matmul.rs crates/kernels/src/nw.rs crates/kernels/src/reduce.rs crates/kernels/src/stencil.rs

/root/repo/target/debug/deps/bf_kernels-9e74d2350577da7d: crates/kernels/src/lib.rs crates/kernels/src/matmul.rs crates/kernels/src/nw.rs crates/kernels/src/reduce.rs crates/kernels/src/stencil.rs

crates/kernels/src/lib.rs:
crates/kernels/src/matmul.rs:
crates/kernels/src/nw.rs:
crates/kernels/src/reduce.rs:
crates/kernels/src/stencil.rs:
