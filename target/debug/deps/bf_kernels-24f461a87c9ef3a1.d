/root/repo/target/debug/deps/bf_kernels-24f461a87c9ef3a1.d: crates/kernels/src/lib.rs crates/kernels/src/matmul.rs crates/kernels/src/nw.rs crates/kernels/src/reduce.rs crates/kernels/src/stencil.rs Cargo.toml

/root/repo/target/debug/deps/libbf_kernels-24f461a87c9ef3a1.rmeta: crates/kernels/src/lib.rs crates/kernels/src/matmul.rs crates/kernels/src/nw.rs crates/kernels/src/reduce.rs crates/kernels/src/stencil.rs Cargo.toml

crates/kernels/src/lib.rs:
crates/kernels/src/matmul.rs:
crates/kernels/src/nw.rs:
crates/kernels/src/reduce.rs:
crates/kernels/src/stencil.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
