/root/repo/target/debug/deps/fig5_mm-39c99e1c9e6d6e8c.d: crates/bench/src/bin/fig5_mm.rs

/root/repo/target/debug/deps/fig5_mm-39c99e1c9e6d6e8c: crates/bench/src/bin/fig5_mm.rs

crates/bench/src/bin/fig5_mm.rs:
