/root/repo/target/debug/deps/bf_kernels-b21bb7fc90b8e9c6.d: crates/kernels/src/lib.rs crates/kernels/src/matmul.rs crates/kernels/src/nw.rs crates/kernels/src/reduce.rs crates/kernels/src/stencil.rs Cargo.toml

/root/repo/target/debug/deps/libbf_kernels-b21bb7fc90b8e9c6.rmeta: crates/kernels/src/lib.rs crates/kernels/src/matmul.rs crates/kernels/src/nw.rs crates/kernels/src/reduce.rs crates/kernels/src/stencil.rs Cargo.toml

crates/kernels/src/lib.rs:
crates/kernels/src/matmul.rs:
crates/kernels/src/nw.rs:
crates/kernels/src/reduce.rs:
crates/kernels/src/stencil.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
