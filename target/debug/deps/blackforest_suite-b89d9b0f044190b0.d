/root/repo/target/debug/deps/blackforest_suite-b89d9b0f044190b0.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libblackforest_suite-b89d9b0f044190b0.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
