/root/repo/target/debug/deps/fig5_mm-8a0ab7ebb43f48ae.d: crates/bench/src/bin/fig5_mm.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_mm-8a0ab7ebb43f48ae.rmeta: crates/bench/src/bin/fig5_mm.rs Cargo.toml

crates/bench/src/bin/fig5_mm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
