/root/repo/target/debug/deps/fig2_reduce1-5b1804efc932c697.d: crates/bench/src/bin/fig2_reduce1.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_reduce1-5b1804efc932c697.rmeta: crates/bench/src/bin/fig2_reduce1.rs Cargo.toml

crates/bench/src/bin/fig2_reduce1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
