/root/repo/target/debug/deps/proptest_invariants-3f0b39a28326da26.d: tests/proptest_invariants.rs

/root/repo/target/debug/deps/proptest_invariants-3f0b39a28326da26: tests/proptest_invariants.rs

tests/proptest_invariants.rs:
