/root/repo/target/debug/deps/fig3_reduce2-27aa8bb831fc55ed.d: crates/bench/src/bin/fig3_reduce2.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_reduce2-27aa8bb831fc55ed.rmeta: crates/bench/src/bin/fig3_reduce2.rs Cargo.toml

crates/bench/src/bin/fig3_reduce2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
