/root/repo/target/debug/deps/table2-85b5da68ca8716c5.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-85b5da68ca8716c5.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
