/root/repo/target/debug/deps/bf_bench-749a0b67ab4fca5f.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbf_bench-749a0b67ab4fca5f.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
