/root/repo/target/debug/deps/bf_linalg-15c60ca34c691883.d: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/eigen.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/stats.rs

/root/repo/target/debug/deps/libbf_linalg-15c60ca34c691883.rlib: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/eigen.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/stats.rs

/root/repo/target/debug/deps/libbf_linalg-15c60ca34c691883.rmeta: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/eigen.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/stats.rs

crates/linalg/src/lib.rs:
crates/linalg/src/cholesky.rs:
crates/linalg/src/eigen.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/qr.rs:
crates/linalg/src/stats.rs:
