/root/repo/target/debug/deps/ext_similarity-33767faf4ff241cb.d: crates/bench/src/bin/ext_similarity.rs Cargo.toml

/root/repo/target/debug/deps/libext_similarity-33767faf4ff241cb.rmeta: crates/bench/src/bin/ext_similarity.rs Cargo.toml

crates/bench/src/bin/ext_similarity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
