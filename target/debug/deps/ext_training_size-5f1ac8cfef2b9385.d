/root/repo/target/debug/deps/ext_training_size-5f1ac8cfef2b9385.d: crates/bench/src/bin/ext_training_size.rs

/root/repo/target/debug/deps/ext_training_size-5f1ac8cfef2b9385: crates/bench/src/bin/ext_training_size.rs

crates/bench/src/bin/ext_training_size.rs:
