/root/repo/target/debug/deps/roofline_check-2f5416da6fa975cc.d: tests/roofline_check.rs Cargo.toml

/root/repo/target/debug/deps/libroofline_check-2f5416da6fa975cc.rmeta: tests/roofline_check.rs Cargo.toml

tests/roofline_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
