/root/repo/target/debug/deps/bench_forest-ecb330b37207e248.d: crates/bench/src/bin/bench_forest.rs Cargo.toml

/root/repo/target/debug/deps/libbench_forest-ecb330b37207e248.rmeta: crates/bench/src/bin/bench_forest.rs Cargo.toml

crates/bench/src/bin/bench_forest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
