/root/repo/target/debug/deps/sim_behavior-d1c0bd2bbec18818.d: tests/sim_behavior.rs

/root/repo/target/debug/deps/sim_behavior-d1c0bd2bbec18818: tests/sim_behavior.rs

tests/sim_behavior.rs:
