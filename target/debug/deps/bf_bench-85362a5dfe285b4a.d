/root/repo/target/debug/deps/bf_bench-85362a5dfe285b4a.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbf_bench-85362a5dfe285b4a.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbf_bench-85362a5dfe285b4a.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
