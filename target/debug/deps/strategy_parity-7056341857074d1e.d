/root/repo/target/debug/deps/strategy_parity-7056341857074d1e.d: crates/core/tests/strategy_parity.rs

/root/repo/target/debug/deps/strategy_parity-7056341857074d1e: crates/core/tests/strategy_parity.rs

crates/core/tests/strategy_parity.rs:
