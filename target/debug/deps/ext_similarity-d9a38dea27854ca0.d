/root/repo/target/debug/deps/ext_similarity-d9a38dea27854ca0.d: crates/bench/src/bin/ext_similarity.rs Cargo.toml

/root/repo/target/debug/deps/libext_similarity-d9a38dea27854ca0.rmeta: crates/bench/src/bin/ext_similarity.rs Cargo.toml

crates/bench/src/bin/ext_similarity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
