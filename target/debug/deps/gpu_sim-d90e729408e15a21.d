/root/repo/target/debug/deps/gpu_sim-d90e729408e15a21.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/arch.rs crates/gpu-sim/src/banks.rs crates/gpu-sim/src/builder.rs crates/gpu-sim/src/cache.rs crates/gpu-sim/src/coalesce.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/engine.rs crates/gpu-sim/src/memo.rs crates/gpu-sim/src/occupancy.rs crates/gpu-sim/src/power.rs crates/gpu-sim/src/profiler.rs crates/gpu-sim/src/sm.rs crates/gpu-sim/src/trace.rs

/root/repo/target/debug/deps/libgpu_sim-d90e729408e15a21.rlib: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/arch.rs crates/gpu-sim/src/banks.rs crates/gpu-sim/src/builder.rs crates/gpu-sim/src/cache.rs crates/gpu-sim/src/coalesce.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/engine.rs crates/gpu-sim/src/memo.rs crates/gpu-sim/src/occupancy.rs crates/gpu-sim/src/power.rs crates/gpu-sim/src/profiler.rs crates/gpu-sim/src/sm.rs crates/gpu-sim/src/trace.rs

/root/repo/target/debug/deps/libgpu_sim-d90e729408e15a21.rmeta: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/arch.rs crates/gpu-sim/src/banks.rs crates/gpu-sim/src/builder.rs crates/gpu-sim/src/cache.rs crates/gpu-sim/src/coalesce.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/engine.rs crates/gpu-sim/src/memo.rs crates/gpu-sim/src/occupancy.rs crates/gpu-sim/src/power.rs crates/gpu-sim/src/profiler.rs crates/gpu-sim/src/sm.rs crates/gpu-sim/src/trace.rs

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/arch.rs:
crates/gpu-sim/src/banks.rs:
crates/gpu-sim/src/builder.rs:
crates/gpu-sim/src/cache.rs:
crates/gpu-sim/src/coalesce.rs:
crates/gpu-sim/src/counters.rs:
crates/gpu-sim/src/engine.rs:
crates/gpu-sim/src/memo.rs:
crates/gpu-sim/src/occupancy.rs:
crates/gpu-sim/src/power.rs:
crates/gpu-sim/src/profiler.rs:
crates/gpu-sim/src/sm.rs:
crates/gpu-sim/src/trace.rs:
