/root/repo/target/debug/deps/bf_linalg-fc3dba580b98ceed.d: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/eigen.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libbf_linalg-fc3dba580b98ceed.rmeta: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/eigen.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/stats.rs Cargo.toml

crates/linalg/src/lib.rs:
crates/linalg/src/cholesky.rs:
crates/linalg/src/eigen.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/qr.rs:
crates/linalg/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
