/root/repo/target/debug/deps/fig7_mm_hw-f69d412fb5e6411e.d: crates/bench/src/bin/fig7_mm_hw.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_mm_hw-f69d412fb5e6411e.rmeta: crates/bench/src/bin/fig7_mm_hw.rs Cargo.toml

crates/bench/src/bin/fig7_mm_hw.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
