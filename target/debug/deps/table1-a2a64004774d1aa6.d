/root/repo/target/debug/deps/table1-a2a64004774d1aa6.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-a2a64004774d1aa6: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
