/root/repo/target/debug/deps/bf_bench-ca61ccd73f7dd4e4.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bf_bench-ca61ccd73f7dd4e4: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
