/root/repo/target/debug/deps/ext_ladder-781ed7884061f513.d: crates/bench/src/bin/ext_ladder.rs Cargo.toml

/root/repo/target/debug/deps/libext_ladder-781ed7884061f513.rmeta: crates/bench/src/bin/ext_ladder.rs Cargo.toml

crates/bench/src/bin/ext_ladder.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
