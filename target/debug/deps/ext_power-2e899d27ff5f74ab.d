/root/repo/target/debug/deps/ext_power-2e899d27ff5f74ab.d: crates/bench/src/bin/ext_power.rs

/root/repo/target/debug/deps/ext_power-2e899d27ff5f74ab: crates/bench/src/bin/ext_power.rs

crates/bench/src/bin/ext_power.rs:
