/root/repo/target/debug/deps/bf_bench-fac02b713cf11cfe.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbf_bench-fac02b713cf11cfe.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
