/root/repo/target/debug/deps/fig5_mm-a5ce3e9ca536e29e.d: crates/bench/src/bin/fig5_mm.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_mm-a5ce3e9ca536e29e.rmeta: crates/bench/src/bin/fig5_mm.rs Cargo.toml

crates/bench/src/bin/fig5_mm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
