/root/repo/target/debug/deps/fig4_reduce6-712ec3dda1b722ef.d: crates/bench/src/bin/fig4_reduce6.rs

/root/repo/target/debug/deps/fig4_reduce6-712ec3dda1b722ef: crates/bench/src/bin/fig4_reduce6.rs

crates/bench/src/bin/fig4_reduce6.rs:
