/root/repo/target/debug/deps/profiler_invariants-d5fccc56e66c6864.d: tests/profiler_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libprofiler_invariants-d5fccc56e66c6864.rmeta: tests/profiler_invariants.rs Cargo.toml

tests/profiler_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
