/root/repo/target/debug/deps/blackforest-2a53851eca73aae3.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libblackforest-2a53851eca73aae3.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
