/root/repo/target/debug/deps/scheduler_fuzz-b992790ea910b455.d: tests/scheduler_fuzz.rs Cargo.toml

/root/repo/target/debug/deps/libscheduler_fuzz-b992790ea910b455.rmeta: tests/scheduler_fuzz.rs Cargo.toml

tests/scheduler_fuzz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
