/root/repo/target/debug/deps/table2-386037fcf9e2bee7.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-386037fcf9e2bee7.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
