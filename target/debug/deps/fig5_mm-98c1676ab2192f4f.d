/root/repo/target/debug/deps/fig5_mm-98c1676ab2192f4f.d: crates/bench/src/bin/fig5_mm.rs

/root/repo/target/debug/deps/fig5_mm-98c1676ab2192f4f: crates/bench/src/bin/fig5_mm.rs

crates/bench/src/bin/fig5_mm.rs:
