/root/repo/target/debug/deps/pipeline-cac90b5b87993ef0.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-cac90b5b87993ef0: tests/pipeline.rs

tests/pipeline.rs:
