/root/repo/target/debug/deps/blackforest-97e0d687c84df64b.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libblackforest-97e0d687c84df64b.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
