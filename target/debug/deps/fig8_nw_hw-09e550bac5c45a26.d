/root/repo/target/debug/deps/fig8_nw_hw-09e550bac5c45a26.d: crates/bench/src/bin/fig8_nw_hw.rs

/root/repo/target/debug/deps/fig8_nw_hw-09e550bac5c45a26: crates/bench/src/bin/fig8_nw_hw.rs

crates/bench/src/bin/fig8_nw_hw.rs:
