/root/repo/target/debug/deps/sim_behavior-a0b3d67c6e664996.d: tests/sim_behavior.rs Cargo.toml

/root/repo/target/debug/deps/libsim_behavior-a0b3d67c6e664996.rmeta: tests/sim_behavior.rs Cargo.toml

tests/sim_behavior.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
