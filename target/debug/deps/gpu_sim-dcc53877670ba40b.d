/root/repo/target/debug/deps/gpu_sim-dcc53877670ba40b.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/arch.rs crates/gpu-sim/src/banks.rs crates/gpu-sim/src/builder.rs crates/gpu-sim/src/cache.rs crates/gpu-sim/src/coalesce.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/engine.rs crates/gpu-sim/src/memo.rs crates/gpu-sim/src/occupancy.rs crates/gpu-sim/src/power.rs crates/gpu-sim/src/profiler.rs crates/gpu-sim/src/sm.rs crates/gpu-sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libgpu_sim-dcc53877670ba40b.rmeta: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/arch.rs crates/gpu-sim/src/banks.rs crates/gpu-sim/src/builder.rs crates/gpu-sim/src/cache.rs crates/gpu-sim/src/coalesce.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/engine.rs crates/gpu-sim/src/memo.rs crates/gpu-sim/src/occupancy.rs crates/gpu-sim/src/power.rs crates/gpu-sim/src/profiler.rs crates/gpu-sim/src/sm.rs crates/gpu-sim/src/trace.rs Cargo.toml

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/arch.rs:
crates/gpu-sim/src/banks.rs:
crates/gpu-sim/src/builder.rs:
crates/gpu-sim/src/cache.rs:
crates/gpu-sim/src/coalesce.rs:
crates/gpu-sim/src/counters.rs:
crates/gpu-sim/src/engine.rs:
crates/gpu-sim/src/memo.rs:
crates/gpu-sim/src/occupancy.rs:
crates/gpu-sim/src/power.rs:
crates/gpu-sim/src/profiler.rs:
crates/gpu-sim/src/sm.rs:
crates/gpu-sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
