/root/repo/target/debug/deps/fig8_nw_hw-12a8b5e12a15a40c.d: crates/bench/src/bin/fig8_nw_hw.rs

/root/repo/target/debug/deps/fig8_nw_hw-12a8b5e12a15a40c: crates/bench/src/bin/fig8_nw_hw.rs

crates/bench/src/bin/fig8_nw_hw.rs:
