/root/repo/target/debug/deps/bf_bench-561e77d5f134ab91.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bf_bench-561e77d5f134ab91: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
