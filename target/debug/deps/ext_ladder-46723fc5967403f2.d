/root/repo/target/debug/deps/ext_ladder-46723fc5967403f2.d: crates/bench/src/bin/ext_ladder.rs

/root/repo/target/debug/deps/ext_ladder-46723fc5967403f2: crates/bench/src/bin/ext_ladder.rs

crates/bench/src/bin/ext_ladder.rs:
