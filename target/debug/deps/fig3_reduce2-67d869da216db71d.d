/root/repo/target/debug/deps/fig3_reduce2-67d869da216db71d.d: crates/bench/src/bin/fig3_reduce2.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_reduce2-67d869da216db71d.rmeta: crates/bench/src/bin/fig3_reduce2.rs Cargo.toml

crates/bench/src/bin/fig3_reduce2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
