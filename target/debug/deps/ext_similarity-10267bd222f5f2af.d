/root/repo/target/debug/deps/ext_similarity-10267bd222f5f2af.d: crates/bench/src/bin/ext_similarity.rs Cargo.toml

/root/repo/target/debug/deps/libext_similarity-10267bd222f5f2af.rmeta: crates/bench/src/bin/ext_similarity.rs Cargo.toml

crates/bench/src/bin/ext_similarity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
