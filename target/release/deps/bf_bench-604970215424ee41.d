/root/repo/target/release/deps/bf_bench-604970215424ee41.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbf_bench-604970215424ee41.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbf_bench-604970215424ee41.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
