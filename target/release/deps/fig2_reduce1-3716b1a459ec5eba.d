/root/repo/target/release/deps/fig2_reduce1-3716b1a459ec5eba.d: crates/bench/src/bin/fig2_reduce1.rs

/root/repo/target/release/deps/fig2_reduce1-3716b1a459ec5eba: crates/bench/src/bin/fig2_reduce1.rs

crates/bench/src/bin/fig2_reduce1.rs:
