/root/repo/target/release/deps/table2-3548cf873edbd167.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-3548cf873edbd167: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
