/root/repo/target/release/deps/ablation_sim-c78330e0f9774472.d: crates/bench/benches/ablation_sim.rs

/root/repo/target/release/deps/ablation_sim-c78330e0f9774472: crates/bench/benches/ablation_sim.rs

crates/bench/benches/ablation_sim.rs:
