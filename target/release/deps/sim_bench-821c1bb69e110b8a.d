/root/repo/target/release/deps/sim_bench-821c1bb69e110b8a.d: crates/bench/benches/sim_bench.rs

/root/repo/target/release/deps/sim_bench-821c1bb69e110b8a: crates/bench/benches/sim_bench.rs

crates/bench/benches/sim_bench.rs:
