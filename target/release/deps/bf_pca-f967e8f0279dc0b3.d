/root/repo/target/release/deps/bf_pca-f967e8f0279dc0b3.d: crates/pca/src/lib.rs crates/pca/src/model.rs crates/pca/src/varimax.rs

/root/repo/target/release/deps/libbf_pca-f967e8f0279dc0b3.rlib: crates/pca/src/lib.rs crates/pca/src/model.rs crates/pca/src/varimax.rs

/root/repo/target/release/deps/libbf_pca-f967e8f0279dc0b3.rmeta: crates/pca/src/lib.rs crates/pca/src/model.rs crates/pca/src/varimax.rs

crates/pca/src/lib.rs:
crates/pca/src/model.rs:
crates/pca/src/varimax.rs:
