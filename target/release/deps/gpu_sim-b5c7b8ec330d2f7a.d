/root/repo/target/release/deps/gpu_sim-b5c7b8ec330d2f7a.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/arch.rs crates/gpu-sim/src/banks.rs crates/gpu-sim/src/builder.rs crates/gpu-sim/src/cache.rs crates/gpu-sim/src/coalesce.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/engine.rs crates/gpu-sim/src/memo.rs crates/gpu-sim/src/occupancy.rs crates/gpu-sim/src/power.rs crates/gpu-sim/src/profiler.rs crates/gpu-sim/src/sm.rs crates/gpu-sim/src/trace.rs

/root/repo/target/release/deps/libgpu_sim-b5c7b8ec330d2f7a.rlib: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/arch.rs crates/gpu-sim/src/banks.rs crates/gpu-sim/src/builder.rs crates/gpu-sim/src/cache.rs crates/gpu-sim/src/coalesce.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/engine.rs crates/gpu-sim/src/memo.rs crates/gpu-sim/src/occupancy.rs crates/gpu-sim/src/power.rs crates/gpu-sim/src/profiler.rs crates/gpu-sim/src/sm.rs crates/gpu-sim/src/trace.rs

/root/repo/target/release/deps/libgpu_sim-b5c7b8ec330d2f7a.rmeta: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/arch.rs crates/gpu-sim/src/banks.rs crates/gpu-sim/src/builder.rs crates/gpu-sim/src/cache.rs crates/gpu-sim/src/coalesce.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/engine.rs crates/gpu-sim/src/memo.rs crates/gpu-sim/src/occupancy.rs crates/gpu-sim/src/power.rs crates/gpu-sim/src/profiler.rs crates/gpu-sim/src/sm.rs crates/gpu-sim/src/trace.rs

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/arch.rs:
crates/gpu-sim/src/banks.rs:
crates/gpu-sim/src/builder.rs:
crates/gpu-sim/src/cache.rs:
crates/gpu-sim/src/coalesce.rs:
crates/gpu-sim/src/counters.rs:
crates/gpu-sim/src/engine.rs:
crates/gpu-sim/src/memo.rs:
crates/gpu-sim/src/occupancy.rs:
crates/gpu-sim/src/power.rs:
crates/gpu-sim/src/profiler.rs:
crates/gpu-sim/src/sm.rs:
crates/gpu-sim/src/trace.rs:
