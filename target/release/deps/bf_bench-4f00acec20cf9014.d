/root/repo/target/release/deps/bf_bench-4f00acec20cf9014.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbf_bench-4f00acec20cf9014.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbf_bench-4f00acec20cf9014.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
