/root/repo/target/release/deps/fig7_mm_hw-d84e010d6a390b66.d: crates/bench/src/bin/fig7_mm_hw.rs

/root/repo/target/release/deps/fig7_mm_hw-d84e010d6a390b66: crates/bench/src/bin/fig7_mm_hw.rs

crates/bench/src/bin/fig7_mm_hw.rs:
