/root/repo/target/release/deps/fig4_reduce6-80111976e2cc7694.d: crates/bench/src/bin/fig4_reduce6.rs

/root/repo/target/release/deps/fig4_reduce6-80111976e2cc7694: crates/bench/src/bin/fig4_reduce6.rs

crates/bench/src/bin/fig4_reduce6.rs:
