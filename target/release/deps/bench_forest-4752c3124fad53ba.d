/root/repo/target/release/deps/bench_forest-4752c3124fad53ba.d: crates/bench/src/bin/bench_forest.rs

/root/repo/target/release/deps/bench_forest-4752c3124fad53ba: crates/bench/src/bin/bench_forest.rs

crates/bench/src/bin/bench_forest.rs:
