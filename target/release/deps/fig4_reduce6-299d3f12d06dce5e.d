/root/repo/target/release/deps/fig4_reduce6-299d3f12d06dce5e.d: crates/bench/src/bin/fig4_reduce6.rs

/root/repo/target/release/deps/fig4_reduce6-299d3f12d06dce5e: crates/bench/src/bin/fig4_reduce6.rs

crates/bench/src/bin/fig4_reduce6.rs:
