/root/repo/target/release/deps/ext_tiles-3fc9b7216774860e.d: crates/bench/src/bin/ext_tiles.rs

/root/repo/target/release/deps/ext_tiles-3fc9b7216774860e: crates/bench/src/bin/ext_tiles.rs

crates/bench/src/bin/ext_tiles.rs:
