/root/repo/target/release/deps/ext_similarity-4737f22e5a0b4efd.d: crates/bench/src/bin/ext_similarity.rs

/root/repo/target/release/deps/ext_similarity-4737f22e5a0b4efd: crates/bench/src/bin/ext_similarity.rs

crates/bench/src/bin/ext_similarity.rs:
