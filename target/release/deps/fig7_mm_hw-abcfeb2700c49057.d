/root/repo/target/release/deps/fig7_mm_hw-abcfeb2700c49057.d: crates/bench/src/bin/fig7_mm_hw.rs

/root/repo/target/release/deps/fig7_mm_hw-abcfeb2700c49057: crates/bench/src/bin/fig7_mm_hw.rs

crates/bench/src/bin/fig7_mm_hw.rs:
