/root/repo/target/release/deps/table1-498482ba99a30645.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-498482ba99a30645: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
