/root/repo/target/release/deps/blackforest-d379086714a43876.d: crates/core/src/lib.rs crates/core/src/bottleneck.rs crates/core/src/collect.rs crates/core/src/countermodel.rs crates/core/src/cv.rs crates/core/src/dataset.rs crates/core/src/markdown.rs crates/core/src/model.rs crates/core/src/predict.rs crates/core/src/report.rs crates/core/src/toolchain.rs

/root/repo/target/release/deps/libblackforest-d379086714a43876.rlib: crates/core/src/lib.rs crates/core/src/bottleneck.rs crates/core/src/collect.rs crates/core/src/countermodel.rs crates/core/src/cv.rs crates/core/src/dataset.rs crates/core/src/markdown.rs crates/core/src/model.rs crates/core/src/predict.rs crates/core/src/report.rs crates/core/src/toolchain.rs

/root/repo/target/release/deps/libblackforest-d379086714a43876.rmeta: crates/core/src/lib.rs crates/core/src/bottleneck.rs crates/core/src/collect.rs crates/core/src/countermodel.rs crates/core/src/cv.rs crates/core/src/dataset.rs crates/core/src/markdown.rs crates/core/src/model.rs crates/core/src/predict.rs crates/core/src/report.rs crates/core/src/toolchain.rs

crates/core/src/lib.rs:
crates/core/src/bottleneck.rs:
crates/core/src/collect.rs:
crates/core/src/countermodel.rs:
crates/core/src/cv.rs:
crates/core/src/dataset.rs:
crates/core/src/markdown.rs:
crates/core/src/model.rs:
crates/core/src/predict.rs:
crates/core/src/report.rs:
crates/core/src/toolchain.rs:
