/root/repo/target/release/deps/blackforest_suite-ed007aa97762890c.d: src/lib.rs

/root/repo/target/release/deps/libblackforest_suite-ed007aa97762890c.rlib: src/lib.rs

/root/repo/target/release/deps/libblackforest_suite-ed007aa97762890c.rmeta: src/lib.rs

src/lib.rs:
