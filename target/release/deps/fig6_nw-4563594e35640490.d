/root/repo/target/release/deps/fig6_nw-4563594e35640490.d: crates/bench/src/bin/fig6_nw.rs

/root/repo/target/release/deps/fig6_nw-4563594e35640490: crates/bench/src/bin/fig6_nw.rs

crates/bench/src/bin/fig6_nw.rs:
