/root/repo/target/release/deps/ext_ladder-47b46e2868399604.d: crates/bench/src/bin/ext_ladder.rs

/root/repo/target/release/deps/ext_ladder-47b46e2868399604: crates/bench/src/bin/ext_ladder.rs

crates/bench/src/bin/ext_ladder.rs:
