/root/repo/target/release/deps/ext_ladder-e6e8881426865806.d: crates/bench/src/bin/ext_ladder.rs

/root/repo/target/release/deps/ext_ladder-e6e8881426865806: crates/bench/src/bin/ext_ladder.rs

crates/bench/src/bin/ext_ladder.rs:
