/root/repo/target/release/deps/bf_kernels-283bcf26403667dd.d: crates/kernels/src/lib.rs crates/kernels/src/matmul.rs crates/kernels/src/nw.rs crates/kernels/src/reduce.rs crates/kernels/src/stencil.rs

/root/repo/target/release/deps/libbf_kernels-283bcf26403667dd.rlib: crates/kernels/src/lib.rs crates/kernels/src/matmul.rs crates/kernels/src/nw.rs crates/kernels/src/reduce.rs crates/kernels/src/stencil.rs

/root/repo/target/release/deps/libbf_kernels-283bcf26403667dd.rmeta: crates/kernels/src/lib.rs crates/kernels/src/matmul.rs crates/kernels/src/nw.rs crates/kernels/src/reduce.rs crates/kernels/src/stencil.rs

crates/kernels/src/lib.rs:
crates/kernels/src/matmul.rs:
crates/kernels/src/nw.rs:
crates/kernels/src/reduce.rs:
crates/kernels/src/stencil.rs:
