/root/repo/target/release/deps/fig2_reduce1-481d0fbb846789b5.d: crates/bench/src/bin/fig2_reduce1.rs

/root/repo/target/release/deps/fig2_reduce1-481d0fbb846789b5: crates/bench/src/bin/fig2_reduce1.rs

crates/bench/src/bin/fig2_reduce1.rs:
