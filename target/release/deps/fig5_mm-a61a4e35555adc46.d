/root/repo/target/release/deps/fig5_mm-a61a4e35555adc46.d: crates/bench/src/bin/fig5_mm.rs

/root/repo/target/release/deps/fig5_mm-a61a4e35555adc46: crates/bench/src/bin/fig5_mm.rs

crates/bench/src/bin/fig5_mm.rs:
