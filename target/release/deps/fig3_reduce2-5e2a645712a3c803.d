/root/repo/target/release/deps/fig3_reduce2-5e2a645712a3c803.d: crates/bench/src/bin/fig3_reduce2.rs

/root/repo/target/release/deps/fig3_reduce2-5e2a645712a3c803: crates/bench/src/bin/fig3_reduce2.rs

crates/bench/src/bin/fig3_reduce2.rs:
