/root/repo/target/release/deps/fig8_nw_hw-186c558290edc588.d: crates/bench/src/bin/fig8_nw_hw.rs

/root/repo/target/release/deps/fig8_nw_hw-186c558290edc588: crates/bench/src/bin/fig8_nw_hw.rs

crates/bench/src/bin/fig8_nw_hw.rs:
