/root/repo/target/release/deps/ext_training_size-251b7fe97c5329eb.d: crates/bench/src/bin/ext_training_size.rs

/root/repo/target/release/deps/ext_training_size-251b7fe97c5329eb: crates/bench/src/bin/ext_training_size.rs

crates/bench/src/bin/ext_training_size.rs:
