/root/repo/target/release/deps/rayon-9cf4121018aebcd0.d: vendor/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-9cf4121018aebcd0.rlib: vendor/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-9cf4121018aebcd0.rmeta: vendor/rayon/src/lib.rs

vendor/rayon/src/lib.rs:
