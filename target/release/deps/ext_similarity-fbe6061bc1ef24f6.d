/root/repo/target/release/deps/ext_similarity-fbe6061bc1ef24f6.d: crates/bench/src/bin/ext_similarity.rs

/root/repo/target/release/deps/ext_similarity-fbe6061bc1ef24f6: crates/bench/src/bin/ext_similarity.rs

crates/bench/src/bin/ext_similarity.rs:
