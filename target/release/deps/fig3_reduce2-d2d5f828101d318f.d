/root/repo/target/release/deps/fig3_reduce2-d2d5f828101d318f.d: crates/bench/src/bin/fig3_reduce2.rs

/root/repo/target/release/deps/fig3_reduce2-d2d5f828101d318f: crates/bench/src/bin/fig3_reduce2.rs

crates/bench/src/bin/fig3_reduce2.rs:
