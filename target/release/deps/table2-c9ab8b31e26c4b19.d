/root/repo/target/release/deps/table2-c9ab8b31e26c4b19.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-c9ab8b31e26c4b19: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
