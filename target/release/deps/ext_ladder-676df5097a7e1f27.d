/root/repo/target/release/deps/ext_ladder-676df5097a7e1f27.d: crates/bench/src/bin/ext_ladder.rs

/root/repo/target/release/deps/ext_ladder-676df5097a7e1f27: crates/bench/src/bin/ext_ladder.rs

crates/bench/src/bin/ext_ladder.rs:
