/root/repo/target/release/deps/ablation_baselines-ab58063931b16815.d: crates/bench/benches/ablation_baselines.rs

/root/repo/target/release/deps/ablation_baselines-ab58063931b16815: crates/bench/benches/ablation_baselines.rs

crates/bench/benches/ablation_baselines.rs:
