/root/repo/target/release/deps/fig5_mm-18173afe850ba65f.d: crates/bench/src/bin/fig5_mm.rs

/root/repo/target/release/deps/fig5_mm-18173afe850ba65f: crates/bench/src/bin/fig5_mm.rs

crates/bench/src/bin/fig5_mm.rs:
