/root/repo/target/release/deps/fig6_nw-8b07421774d80c3a.d: crates/bench/src/bin/fig6_nw.rs

/root/repo/target/release/deps/fig6_nw-8b07421774d80c3a: crates/bench/src/bin/fig6_nw.rs

crates/bench/src/bin/fig6_nw.rs:
