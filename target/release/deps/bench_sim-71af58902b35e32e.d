/root/repo/target/release/deps/bench_sim-71af58902b35e32e.d: crates/bench/src/bin/bench_sim.rs

/root/repo/target/release/deps/bench_sim-71af58902b35e32e: crates/bench/src/bin/bench_sim.rs

crates/bench/src/bin/bench_sim.rs:
