/root/repo/target/release/deps/fig6_nw-5bc3c75d72dc4208.d: crates/bench/src/bin/fig6_nw.rs

/root/repo/target/release/deps/fig6_nw-5bc3c75d72dc4208: crates/bench/src/bin/fig6_nw.rs

crates/bench/src/bin/fig6_nw.rs:
