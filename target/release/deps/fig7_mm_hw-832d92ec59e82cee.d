/root/repo/target/release/deps/fig7_mm_hw-832d92ec59e82cee.d: crates/bench/src/bin/fig7_mm_hw.rs

/root/repo/target/release/deps/fig7_mm_hw-832d92ec59e82cee: crates/bench/src/bin/fig7_mm_hw.rs

crates/bench/src/bin/fig7_mm_hw.rs:
