/root/repo/target/release/deps/blackforest-ccd344587625dd4e.d: crates/cli/src/main.rs

/root/repo/target/release/deps/blackforest-ccd344587625dd4e: crates/cli/src/main.rs

crates/cli/src/main.rs:
