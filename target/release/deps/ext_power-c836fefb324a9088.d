/root/repo/target/release/deps/ext_power-c836fefb324a9088.d: crates/bench/src/bin/ext_power.rs

/root/repo/target/release/deps/ext_power-c836fefb324a9088: crates/bench/src/bin/ext_power.rs

crates/bench/src/bin/ext_power.rs:
