/root/repo/target/release/deps/ext_training_size-2ab160d359674515.d: crates/bench/src/bin/ext_training_size.rs

/root/repo/target/release/deps/ext_training_size-2ab160d359674515: crates/bench/src/bin/ext_training_size.rs

crates/bench/src/bin/ext_training_size.rs:
