/root/repo/target/release/deps/fig4_reduce6-ee8542b43a1773cc.d: crates/bench/src/bin/fig4_reduce6.rs

/root/repo/target/release/deps/fig4_reduce6-ee8542b43a1773cc: crates/bench/src/bin/fig4_reduce6.rs

crates/bench/src/bin/fig4_reduce6.rs:
