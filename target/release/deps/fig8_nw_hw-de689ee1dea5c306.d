/root/repo/target/release/deps/fig8_nw_hw-de689ee1dea5c306.d: crates/bench/src/bin/fig8_nw_hw.rs

/root/repo/target/release/deps/fig8_nw_hw-de689ee1dea5c306: crates/bench/src/bin/fig8_nw_hw.rs

crates/bench/src/bin/fig8_nw_hw.rs:
