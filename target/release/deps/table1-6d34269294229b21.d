/root/repo/target/release/deps/table1-6d34269294229b21.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-6d34269294229b21: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
