/root/repo/target/release/deps/fig8_nw_hw-4d382e11af25edcc.d: crates/bench/src/bin/fig8_nw_hw.rs

/root/repo/target/release/deps/fig8_nw_hw-4d382e11af25edcc: crates/bench/src/bin/fig8_nw_hw.rs

crates/bench/src/bin/fig8_nw_hw.rs:
