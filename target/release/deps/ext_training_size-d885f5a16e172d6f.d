/root/repo/target/release/deps/ext_training_size-d885f5a16e172d6f.d: crates/bench/src/bin/ext_training_size.rs

/root/repo/target/release/deps/ext_training_size-d885f5a16e172d6f: crates/bench/src/bin/ext_training_size.rs

crates/bench/src/bin/ext_training_size.rs:
