/root/repo/target/release/deps/fig5_mm-363e7b574c29ea7d.d: crates/bench/src/bin/fig5_mm.rs

/root/repo/target/release/deps/fig5_mm-363e7b574c29ea7d: crates/bench/src/bin/fig5_mm.rs

crates/bench/src/bin/fig5_mm.rs:
