/root/repo/target/release/deps/bf_linalg-c4ea301fd172e1ca.d: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/eigen.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/stats.rs

/root/repo/target/release/deps/libbf_linalg-c4ea301fd172e1ca.rlib: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/eigen.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/stats.rs

/root/repo/target/release/deps/libbf_linalg-c4ea301fd172e1ca.rmeta: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/eigen.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/stats.rs

crates/linalg/src/lib.rs:
crates/linalg/src/cholesky.rs:
crates/linalg/src/eigen.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/qr.rs:
crates/linalg/src/stats.rs:
