/root/repo/target/release/deps/fig3_reduce2-c50ae5cc7b3feea6.d: crates/bench/src/bin/fig3_reduce2.rs

/root/repo/target/release/deps/fig3_reduce2-c50ae5cc7b3feea6: crates/bench/src/bin/fig3_reduce2.rs

crates/bench/src/bin/fig3_reduce2.rs:
