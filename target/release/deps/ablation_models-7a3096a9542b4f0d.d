/root/repo/target/release/deps/ablation_models-7a3096a9542b4f0d.d: crates/bench/benches/ablation_models.rs

/root/repo/target/release/deps/ablation_models-7a3096a9542b4f0d: crates/bench/benches/ablation_models.rs

crates/bench/benches/ablation_models.rs:
