/root/repo/target/release/deps/fig2_reduce1-47ab9a3e4c25214b.d: crates/bench/src/bin/fig2_reduce1.rs

/root/repo/target/release/deps/fig2_reduce1-47ab9a3e4c25214b: crates/bench/src/bin/fig2_reduce1.rs

crates/bench/src/bin/fig2_reduce1.rs:
