/root/repo/target/release/deps/ext_similarity-258fb55033359a19.d: crates/bench/src/bin/ext_similarity.rs

/root/repo/target/release/deps/ext_similarity-258fb55033359a19: crates/bench/src/bin/ext_similarity.rs

crates/bench/src/bin/ext_similarity.rs:
