/root/repo/target/release/deps/forest_bench-b1a16d6ecd43aa96.d: crates/bench/benches/forest_bench.rs

/root/repo/target/release/deps/forest_bench-b1a16d6ecd43aa96: crates/bench/benches/forest_bench.rs

crates/bench/benches/forest_bench.rs:
