/root/repo/target/release/deps/bf_bench-f4f407e0c047dde4.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbf_bench-f4f407e0c047dde4.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbf_bench-f4f407e0c047dde4.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
