/root/repo/target/release/deps/ablation_regress-716440f13bbc2278.d: crates/bench/benches/ablation_regress.rs

/root/repo/target/release/deps/ablation_regress-716440f13bbc2278: crates/bench/benches/ablation_regress.rs

crates/bench/benches/ablation_regress.rs:
