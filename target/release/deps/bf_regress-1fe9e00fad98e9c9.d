/root/repo/target/release/deps/bf_regress-1fe9e00fad98e9c9.d: crates/regress/src/lib.rs crates/regress/src/glm.rs crates/regress/src/mars.rs crates/regress/src/mlp.rs crates/regress/src/stepwise.rs

/root/repo/target/release/deps/libbf_regress-1fe9e00fad98e9c9.rlib: crates/regress/src/lib.rs crates/regress/src/glm.rs crates/regress/src/mars.rs crates/regress/src/mlp.rs crates/regress/src/stepwise.rs

/root/repo/target/release/deps/libbf_regress-1fe9e00fad98e9c9.rmeta: crates/regress/src/lib.rs crates/regress/src/glm.rs crates/regress/src/mars.rs crates/regress/src/mlp.rs crates/regress/src/stepwise.rs

crates/regress/src/lib.rs:
crates/regress/src/glm.rs:
crates/regress/src/mars.rs:
crates/regress/src/mlp.rs:
crates/regress/src/stepwise.rs:
