/root/repo/target/release/deps/table1-eb7de3cdfbbee7c8.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-eb7de3cdfbbee7c8: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
