/root/repo/target/release/deps/ext_power-aa056e6cc6b46586.d: crates/bench/src/bin/ext_power.rs

/root/repo/target/release/deps/ext_power-aa056e6cc6b46586: crates/bench/src/bin/ext_power.rs

crates/bench/src/bin/ext_power.rs:
