/root/repo/target/release/deps/table2-c91dec33eca1e402.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-c91dec33eca1e402: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
