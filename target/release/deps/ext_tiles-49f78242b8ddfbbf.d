/root/repo/target/release/deps/ext_tiles-49f78242b8ddfbbf.d: crates/bench/src/bin/ext_tiles.rs

/root/repo/target/release/deps/ext_tiles-49f78242b8ddfbbf: crates/bench/src/bin/ext_tiles.rs

crates/bench/src/bin/ext_tiles.rs:
