/root/repo/target/release/deps/ext_power-7eaa391d443c2c72.d: crates/bench/src/bin/ext_power.rs

/root/repo/target/release/deps/ext_power-7eaa391d443c2c72: crates/bench/src/bin/ext_power.rs

crates/bench/src/bin/ext_power.rs:
