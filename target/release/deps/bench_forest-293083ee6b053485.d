/root/repo/target/release/deps/bench_forest-293083ee6b053485.d: crates/bench/src/bin/bench_forest.rs

/root/repo/target/release/deps/bench_forest-293083ee6b053485: crates/bench/src/bin/bench_forest.rs

crates/bench/src/bin/bench_forest.rs:
