/root/repo/target/release/deps/blackforest-5206f6021001da04.d: crates/cli/src/main.rs

/root/repo/target/release/deps/blackforest-5206f6021001da04: crates/cli/src/main.rs

crates/cli/src/main.rs:
