/root/repo/target/release/deps/bf_forest-ab39fc9266c605c9.d: crates/forest/src/lib.rs crates/forest/src/forest.rs crates/forest/src/importance.rs crates/forest/src/partial.rs crates/forest/src/split.rs crates/forest/src/tree.rs

/root/repo/target/release/deps/bf_forest-ab39fc9266c605c9: crates/forest/src/lib.rs crates/forest/src/forest.rs crates/forest/src/importance.rs crates/forest/src/partial.rs crates/forest/src/split.rs crates/forest/src/tree.rs

crates/forest/src/lib.rs:
crates/forest/src/forest.rs:
crates/forest/src/importance.rs:
crates/forest/src/partial.rs:
crates/forest/src/split.rs:
crates/forest/src/tree.rs:
