/root/repo/target/release/deps/ablation_forest-7e06ce20f985b345.d: crates/bench/benches/ablation_forest.rs

/root/repo/target/release/deps/ablation_forest-7e06ce20f985b345: crates/bench/benches/ablation_forest.rs

crates/bench/benches/ablation_forest.rs:
