/root/repo/target/release/deps/bf_forest-10c0fb3db75f7e41.d: crates/forest/src/lib.rs crates/forest/src/binned.rs crates/forest/src/forest.rs crates/forest/src/importance.rs crates/forest/src/partial.rs crates/forest/src/split.rs crates/forest/src/tree.rs

/root/repo/target/release/deps/libbf_forest-10c0fb3db75f7e41.rlib: crates/forest/src/lib.rs crates/forest/src/binned.rs crates/forest/src/forest.rs crates/forest/src/importance.rs crates/forest/src/partial.rs crates/forest/src/split.rs crates/forest/src/tree.rs

/root/repo/target/release/deps/libbf_forest-10c0fb3db75f7e41.rmeta: crates/forest/src/lib.rs crates/forest/src/binned.rs crates/forest/src/forest.rs crates/forest/src/importance.rs crates/forest/src/partial.rs crates/forest/src/split.rs crates/forest/src/tree.rs

crates/forest/src/lib.rs:
crates/forest/src/binned.rs:
crates/forest/src/forest.rs:
crates/forest/src/importance.rs:
crates/forest/src/partial.rs:
crates/forest/src/split.rs:
crates/forest/src/tree.rs:
