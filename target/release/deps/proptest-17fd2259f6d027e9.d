/root/repo/target/release/deps/proptest-17fd2259f6d027e9.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-17fd2259f6d027e9.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-17fd2259f6d027e9.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
