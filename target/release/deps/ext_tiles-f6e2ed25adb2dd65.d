/root/repo/target/release/deps/ext_tiles-f6e2ed25adb2dd65.d: crates/bench/src/bin/ext_tiles.rs

/root/repo/target/release/deps/ext_tiles-f6e2ed25adb2dd65: crates/bench/src/bin/ext_tiles.rs

crates/bench/src/bin/ext_tiles.rs:
