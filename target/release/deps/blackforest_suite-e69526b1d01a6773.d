/root/repo/target/release/deps/blackforest_suite-e69526b1d01a6773.d: src/lib.rs

/root/repo/target/release/deps/libblackforest_suite-e69526b1d01a6773.rlib: src/lib.rs

/root/repo/target/release/deps/libblackforest_suite-e69526b1d01a6773.rmeta: src/lib.rs

src/lib.rs:
