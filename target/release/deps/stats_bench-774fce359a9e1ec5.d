/root/repo/target/release/deps/stats_bench-774fce359a9e1ec5.d: crates/bench/benches/stats_bench.rs

/root/repo/target/release/deps/stats_bench-774fce359a9e1ec5: crates/bench/benches/stats_bench.rs

crates/bench/benches/stats_bench.rs:
