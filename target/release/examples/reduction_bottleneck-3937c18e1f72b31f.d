/root/repo/target/release/examples/reduction_bottleneck-3937c18e1f72b31f.d: examples/reduction_bottleneck.rs

/root/repo/target/release/examples/reduction_bottleneck-3937c18e1f72b31f: examples/reduction_bottleneck.rs

examples/reduction_bottleneck.rs:
