/root/repo/target/release/examples/matmul_prediction-84230fb37662b043.d: examples/matmul_prediction.rs

/root/repo/target/release/examples/matmul_prediction-84230fb37662b043: examples/matmul_prediction.rs

examples/matmul_prediction.rs:
