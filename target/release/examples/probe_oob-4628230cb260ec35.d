/root/repo/target/release/examples/probe_oob-4628230cb260ec35.d: examples/probe_oob.rs

/root/repo/target/release/examples/probe_oob-4628230cb260ec35: examples/probe_oob.rs

examples/probe_oob.rs:
