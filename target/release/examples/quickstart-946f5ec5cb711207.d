/root/repo/target/release/examples/quickstart-946f5ec5cb711207.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-946f5ec5cb711207: examples/quickstart.rs

examples/quickstart.rs:
