/root/repo/target/release/examples/power_analysis-80e029f83406cace.d: examples/power_analysis.rs

/root/repo/target/release/examples/power_analysis-80e029f83406cace: examples/power_analysis.rs

examples/power_analysis.rs:
