/root/repo/target/release/examples/custom_kernel-d503fc966b2c8493.d: examples/custom_kernel.rs

/root/repo/target/release/examples/custom_kernel-d503fc966b2c8493: examples/custom_kernel.rs

examples/custom_kernel.rs:
