/root/repo/target/release/examples/nw_hardware_scaling-1146439ccb54705c.d: examples/nw_hardware_scaling.rs

/root/repo/target/release/examples/nw_hardware_scaling-1146439ccb54705c: examples/nw_hardware_scaling.rs

examples/nw_hardware_scaling.rs:
