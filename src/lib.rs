//! Umbrella crate for the BlackForest suite.
//!
//! Re-exports every crate in the workspace under one roof so the runnable
//! examples and cross-crate integration tests in this package can exercise
//! the whole stack with a single dependency:
//!
//! * [`blackforest`] — the toolchain itself (data collection, random-forest
//!   modeling, bottleneck analysis, problem/hardware-scaling prediction).
//! * [`gpu_sim`] — the GPU microarchitecture simulator substrate.
//! * [`kernels`] — CUDA-SDK/Rodinia workloads (reduce0..6, matmul, NW).
//! * [`analyze`] — the static analyzer (`bf lint`): occupancy/coalescing/
//!   bank-conflict metrics and diagnostics without running the cycle engine.
//! * [`forest`], [`pca`], [`regress`], [`linalg`] — the statistical substrates.

pub use bf_analyze as analyze;
pub use bf_forest as forest;
pub use bf_kernels as kernels;
pub use bf_linalg as linalg;
pub use bf_pca as pca;
pub use bf_regress as regress;
pub use blackforest;
pub use gpu_sim;
