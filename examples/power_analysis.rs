//! The paper's §7 idea in action: use *power draw* rather than execution
//! time as the response variable. The simulator's event-energy model stands
//! in for the Kepler system-management-interface power readout the paper
//! mentions, and BlackForest then answers two questions:
//!
//! 1. which functional-unit activities drive the card's power draw, and
//! 2. what will the power be for an unseen problem size?
//!
//! ```sh
//! cargo run --release --example power_analysis
//! ```

use blackforest_suite::blackforest::collect::{collect_matmul, CollectOptions, ResponseMetric};
use blackforest_suite::blackforest::countermodel::ModelStrategy;
use blackforest_suite::blackforest::model::ModelConfig;
use blackforest_suite::blackforest::predict::ProblemScalingPredictor;
use blackforest_suite::blackforest::report;
use blackforest_suite::gpu_sim::{estimate_power, GpuConfig, PowerModel};
use blackforest_suite::kernels::matmul::matmul_application;

fn main() {
    let gpu = GpuConfig::k20m();

    // A single profiled run also carries its power sample.
    let run = matmul_application(512).profile(&gpu).expect("profile");
    println!(
        "{} on {}: {:.3} ms at {:.1} W average draw",
        run.kernel, run.gpu, run.time_ms, run.avg_power_w
    );

    // Collect a sweep with power as the response and model it.
    let sizes: Vec<usize> = (2..=24).step_by(2).map(|k| k * 16).collect();
    let opts = CollectOptions {
        response: ResponseMetric::AvgPowerW,
        ..CollectOptions::default().with_repetitions(2, 0.02)
    };
    let data = collect_matmul(&gpu, &sizes, &opts).expect("collect");
    let p = ProblemScalingPredictor::fit(
        &data,
        &ModelConfig::quick(73),
        &["size"],
        ModelStrategy::Auto,
    )
    .expect("fit");
    println!(
        "\npower model over {} runs (range {:.1}..{:.1} W):",
        data.len(),
        data.response.iter().cloned().fold(f64::INFINITY, f64::min),
        data.response
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max),
    );
    println!("{}", report::importance_chart(&p.model, 8));

    for &n in &[208usize, 304, 432] {
        let w = p.predict(&[n as f64]).expect("predict");
        println!("predicted average power at n={n}: {w:.1} W");
    }

    // The energy breakdown behind one run, from the raw event model.
    let launch = blackforest_suite::gpu_sim::simulate_launch(
        &gpu,
        &blackforest_suite::kernels::matmul::MatmulTiled::new(512),
    )
    .expect("simulate");
    let est = estimate_power(&gpu, &launch.events, &PowerModel::for_arch(gpu.arch));
    println!(
        "\nenergy breakdown of one n=512 launch: {:.3} J dynamic + {:.3} J static; {:.0} warp-instructions/J",
        est.dynamic_j, est.static_j, est.inst_per_joule
    );
}
