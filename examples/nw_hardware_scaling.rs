//! The paper's §6.2 hardware-scaling study on Needleman-Wunsch: train on
//! the (simulated) GTX580, predict on the K20m. The importance rankings
//! diverge across the architectures (Kepler's caches change which counters
//! matter), so the straightforward transfer degrades and the
//! mixed-importance workaround is needed — exactly Figure 8's story.
//!
//! ```sh
//! cargo run --release --example nw_hardware_scaling
//! ```

use blackforest_suite::blackforest::collect::{collect_nw, CollectOptions};
use blackforest_suite::blackforest::model::ModelConfig;
use blackforest_suite::blackforest::predict::{
    summarize, HardwareScalingPredictor, HwFeatureStrategy,
};
use blackforest_suite::gpu_sim::GpuConfig;

fn main() {
    let src_gpu = GpuConfig::gtx580();
    let tgt_gpu = GpuConfig::k20m();
    let lengths: Vec<usize> = (1..=32).map(|k| k * 64).collect();
    let opts = CollectOptions {
        include_machine_metrics: true,
        drop_constant: false,
        ..CollectOptions::default().with_repetitions(2, 0.02)
    };
    println!(
        "collecting NW sweeps on {} and {}...",
        src_gpu.name, tgt_gpu.name
    );
    let src = collect_nw(&src_gpu, &lengths, &opts).expect("source");
    let tgt = collect_nw(&tgt_gpu, &lengths, &opts).expect("target");
    let (tgt_train, tgt_test) = tgt.split(0.8, 2016);

    let cfg = ModelConfig::quick(62);
    for strategy in [
        HwFeatureStrategy::SourceImportance,
        HwFeatureStrategy::MixedImportance,
    ] {
        let hw = HardwareScalingPredictor::fit(&src, &tgt_train, &cfg, strategy).expect("fit");
        let s = summarize(&hw.evaluate(&tgt_test, "size").expect("evaluate"));
        println!(
            "\n{strategy:?}: features {:?}\n  top-5 ranking similarity {:.0}%  ->  MSE {:.4}, R^2 {:.3}, MAPE {:.1}%",
            hw.features,
            hw.similarity * 100.0,
            s.mse,
            s.r_squared,
            s.mape
        );
    }

    println!(
        "\nnote: Fermi-only counters like l1_global_load_miss never reach the\n\
         transfer model — they do not exist on Kepler, the §7 portability issue."
    );
}
