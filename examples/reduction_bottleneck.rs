//! The paper's §5 walk-through: bottleneck analysis of three reduction
//! kernels. `reduce1` suffers shared-memory bank conflicts, `reduce2` fixes
//! them (sequential addressing) and becomes memory-subsystem bound, and
//! `reduce6` applies every optimisation and saturates bandwidth.
//!
//! ```sh
//! cargo run --release --example reduction_bottleneck
//! ```

use blackforest_suite::blackforest::model::ModelConfig;
use blackforest_suite::blackforest::{BlackForest, Workload};
use blackforest_suite::gpu_sim::GpuConfig;
use blackforest_suite::kernels::reduce::ReduceVariant;

fn main() {
    let bf = BlackForest::new(GpuConfig::gtx580()).with_config(ModelConfig::quick(2016));
    let sizes: Vec<usize> = (14..=19).map(|e| 1usize << e).collect();

    for variant in [
        ReduceVariant::Reduce1,
        ReduceVariant::Reduce2,
        ReduceVariant::Reduce6,
    ] {
        let report = bf
            .analyze(Workload::Reduce(variant), &sizes)
            .expect("analysis");
        println!("{}", report.render());

        // The §5 storyline in one line per kernel.
        let conflict_present = report
            .dataset
            .feature_index("l1_shared_bank_conflict")
            .is_some();
        println!(
            ">>> {}: bank-conflict counter {} the dataset; primary bottleneck: {}\n",
            variant.name(),
            if conflict_present {
                "present in"
            } else {
                "vanished from"
            },
            report
                .bottlenecks
                .primary()
                .map(|f| f.category.label())
                .unwrap_or("none"),
        );
    }

    // Cross-kernel speedup check: reduce6 should clearly beat reduce1.
    let gpu = GpuConfig::gtx580();
    let n = 1 << 22;
    let t1 = blackforest_suite::kernels::reduce::reduce_application(ReduceVariant::Reduce1, n, 256)
        .profile(&gpu)
        .unwrap()
        .time_ms;
    let t6 = blackforest_suite::kernels::reduce::reduce_application(ReduceVariant::Reduce6, n, 256)
        .profile(&gpu)
        .unwrap()
        .time_ms;
    println!(
        "reduce1 vs reduce6 at {n} elements: {t1:.3} ms vs {t6:.3} ms ({:.1}x)",
        t1 / t6
    );
}
