//! Quickstart: profile one kernel on the simulated GTX580 like `nvprof`
//! would, then run a miniature BlackForest analysis on a small sweep.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use blackforest_suite::blackforest::model::ModelConfig;
use blackforest_suite::blackforest::{BlackForest, Workload};
use blackforest_suite::gpu_sim::GpuConfig;
use blackforest_suite::kernels::reduce::{reduce_application, ReduceVariant};

fn main() {
    // --- Step 1: one profiled run (what `nvprof ./reduce` would print) ---
    let gpu = GpuConfig::gtx580();
    let app = reduce_application(ReduceVariant::Reduce1, 1 << 20, 256);
    let run = app.profile(&gpu).expect("simulation");
    println!(
        "profile of {} on {} ({} launches):",
        run.kernel,
        run.gpu,
        app.launches.len()
    );
    println!("  elapsed: {:.4} ms", run.time_ms);
    for name in [
        "achieved_occupancy",
        "ipc",
        "gld_request",
        "shared_replay_overhead",
        "l1_shared_bank_conflict",
        "l2_read_throughput",
    ] {
        if let Some(v) = run.counters.get(name) {
            println!("  {name:<26} {v:.4}");
        }
    }

    // --- Step 2: a miniature end-to-end analysis ---
    let bf = BlackForest::new(gpu).with_config(ModelConfig::quick(7));
    let sizes: Vec<usize> = (14..=18).map(|e| 1usize << e).collect();
    let report = bf
        .analyze(Workload::Reduce(ReduceVariant::Reduce1), &sizes)
        .expect("analysis");
    println!("\n{}", report.render());

    // --- Step 3: predict an unseen problem size ---
    let unseen = (1usize << 17) + (1 << 16); // between training points
    let t = report
        .predictor
        .predict(&[unseen as f64, 256.0])
        .expect("prediction");
    println!("predicted time for {unseen} elements at 256 threads/block: {t:.4} ms");
}
