//! The paper's §6.1.1 case study: problem-scaling prediction for tiled
//! matrix multiply. Collect a sweep of matrix sizes, model the important
//! counters as GLMs of the size, and chain them through the forest to
//! predict execution times for sizes the model never saw.
//!
//! ```sh
//! cargo run --release --example matmul_prediction
//! ```

use blackforest_suite::blackforest::collect::{collect_matmul, CollectOptions};
use blackforest_suite::blackforest::countermodel::ModelStrategy;
use blackforest_suite::blackforest::model::ModelConfig;
use blackforest_suite::blackforest::predict::{summarize, ProblemScalingPredictor};
use blackforest_suite::blackforest::report;
use blackforest_suite::gpu_sim::GpuConfig;
use blackforest_suite::kernels::matmul::matmul_application;

fn main() {
    let gpu = GpuConfig::gtx580();
    let sizes: Vec<usize> = (2..=24).step_by(2).map(|k| k * 16).collect();
    println!("collecting {} matrix sizes on {}...", sizes.len(), gpu.name);
    let opts = CollectOptions::default().with_repetitions(2, 0.02);
    let data = collect_matmul(&gpu, &sizes, &opts).expect("collection");

    let predictor = ProblemScalingPredictor::fit(
        &data,
        &ModelConfig::quick(61),
        &["size"],
        ModelStrategy::Glm,
    )
    .expect("fit");
    println!(
        "retained variables: {:?}\ncounter-model mean R^2: {:.4}",
        predictor.model.selected,
        predictor.counters.mean_r_squared()
    );

    // Held-out evaluation (the paper's Figure 5b).
    let points = predictor.evaluate_holdout().expect("holdout");
    println!(
        "\nheld-out sizes:\n{}",
        report::prediction_table(&points, "size")
    );

    // True out-of-sweep check: sizes never collected at all.
    println!("fresh sizes never profiled during training:");
    for &n in &[176usize, 272, 368] {
        let predicted = predictor.predict(&[n as f64]).expect("predict");
        let measured = matmul_application(n)
            .profile(&gpu)
            .expect("profile")
            .time_ms;
        println!(
            "  n={n:4}  measured {measured:8.4} ms  predicted {predicted:8.4} ms  ({:+.1}%)",
            100.0 * (predicted - measured) / measured
        );
    }
    let s = summarize(&points);
    println!(
        "\nholdout summary: MSE {:.4}, R^2 {:.4}, MAPE {:.1}%",
        s.mse, s.r_squared, s.mape
    );
}
