//! Modelling *your own* kernel: the downstream-user workflow.
//!
//! Suppose you have a CUDA kernel BlackForest has never seen — here, a toy
//! "gather" kernel whose threads read through an index table (data-dependent
//! addresses, poor coalescing) and accumulate into shared memory. This
//! example shows the three steps a user takes:
//!
//! 1. describe the kernel's address patterns with [`gpu_sim::TraceBuilder`],
//! 2. implement [`gpu_sim::KernelTrace`] for it, and
//! 3. hand it to the BlackForest pipeline for profiling, modeling, and
//!    bottleneck analysis.
//!
//! ```sh
//! cargo run --release --example custom_kernel
//! ```

use blackforest_suite::blackforest::collect::{
    dataset_from_observations, CollectOptions, Observation,
};
use blackforest_suite::blackforest::model::{BlackForestModel, ModelConfig};
use blackforest_suite::blackforest::{bottleneck, report};
use blackforest_suite::gpu_sim::trace::{BlockTrace, KernelTrace, LaunchConfig};
use blackforest_suite::gpu_sim::{profile_kernel, GpuConfig, TraceBuilder};

/// A gather kernel: `out[i] = sum_k table[idx[i*K + k]]` with a
/// pseudo-random index table — the classic memory-access-pattern bottleneck.
struct GatherKernel {
    /// Elements gathered.
    n: usize,
    /// Gathers per thread.
    k: usize,
    /// Spread of the random indices in elements (locality knob).
    spread: usize,
}

impl GatherKernel {
    fn index(&self, i: usize, k: usize) -> u64 {
        // Deterministic pseudo-random index within `spread`.
        let h = (i as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((k as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
        (h >> 17) % self.spread as u64
    }
}

impl KernelTrace for GatherKernel {
    fn name(&self) -> String {
        "gather".into()
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig {
            grid_blocks: self.n.div_ceil(256),
            threads_per_block: 256,
            regs_per_thread: 16,
            shared_mem_per_block: 1024,
        }
    }

    fn block_trace(&self, block_id: usize, gpu: &GpuConfig) -> BlockTrace {
        let warps = 256 / gpu.warp_size;
        let mut b = TraceBuilder::new(warps);
        const TABLE: u64 = 0x2000_0000;
        for w in 0..warps {
            let mut s = b.warp(w).alu(2);
            for k in 0..self.k {
                // Data-dependent per-lane addresses: poor coalescing.
                let addrs: Vec<u64> = (0..32)
                    .map(|lane| {
                        let i = block_id * 256 + w * 32 + lane;
                        TABLE + self.index(i, k) * 4
                    })
                    .collect();
                s = s.load_global(addrs, 4).alu(1);
            }
            // Accumulate into shared memory, conflict-free.
            s.store_shared_seq((w * 128) as u32, 4);
        }
        b.barrier();
        for w in 0..warps {
            b.warp(w)
                .load_shared_seq((w * 128) as u32, 4)
                .store_global_seq(0x6000_0000 + (block_id * 1024 + w * 128) as u64, 4);
        }
        b.build().expect("builder keeps barriers matched")
    }
}

fn main() {
    let gpu = GpuConfig::gtx580();

    // One-off profile, like nvprof.
    let run = profile_kernel(
        &gpu,
        &GatherKernel {
            n: 1 << 20,
            k: 4,
            spread: 1 << 22,
        },
    )
    .expect("profile");
    println!("one run of {}: {:.3} ms", run.kernel, run.time_ms);
    for c in [
        "gld_request",
        "global_load_transaction",
        "l1_global_load_miss",
    ] {
        println!("  {c:<26} {:.0}", run.counters.get(c).unwrap());
    }
    let req = run.counters.get("gld_request").unwrap();
    let trans = run.counters.get("global_load_transaction").unwrap();
    println!(
        "  transactions per request: {:.1} (1.0 would be perfectly coalesced)",
        trans / req
    );

    // A sweep over problem size and locality, then the full pipeline.
    let mut observations = Vec::new();
    for e in 16..=20 {
        for spread_shift in [14usize, 18, 22] {
            let n = 1usize << e;
            let k = GatherKernel {
                n,
                k: 4,
                spread: 1 << spread_shift,
            };
            let run = profile_kernel(&gpu, &k).expect("profile");
            observations.push(Observation {
                run,
                characteristics: vec![
                    ("size".to_string(), n as f64),
                    ("spread".to_string(), (1u64 << spread_shift) as f64),
                ],
            });
        }
    }
    let opts = CollectOptions::default();
    let data = dataset_from_observations(&gpu, observations, &opts).expect("dataset");
    let model = BlackForestModel::fit(&data, &ModelConfig::quick(99)).expect("fit");
    println!(
        "\nBlackForest on the gather kernel ({} runs, OOB explained variance {:.1}%):",
        data.len(),
        model.validation.oob_r_squared * 100.0
    );
    println!("{}", report::importance_chart(&model, 8));
    let bn = bottleneck::BottleneckReport::analyze(&model, 8);
    println!("{}", report::bottleneck_text(&bn));
}
